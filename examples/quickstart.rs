//! Quickstart: train RPM on the Cylinder-Bell-Funnel dataset and classify.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rpm::prelude::*;

fn main() {
    // Honor RPM_LOG (e.g. RPM_LOG=spans,json=rpm-report.jsonl).
    rpm::obs::init_env();

    // CBF (the paper's Fig. 2 dataset): 3 classes, 30 train / 150 test.
    let train = rpm::data::cbf::generate(10, 128, 1);
    let test = rpm::data::cbf::generate(50, 128, 2);
    println!("train: {train}");
    println!("test : {test}");

    // Default configuration: γ = 0.2, τ at the 30th percentile, SAX
    // parameters selected by DIRECT on validation splits.
    let config = RpmConfig::default();
    let model = RpmClassifier::train(&train, &config).expect("training failed");

    println!(
        "\nlearned {} representative patterns:",
        model.patterns().len()
    );
    for p in model.patterns() {
        println!(
            "  class {} len {} freq {} coverage {}",
            p.class,
            p.values.len(),
            p.frequency,
            p.coverage
        );
    }

    let predictions = model.predict_batch(&test.series);
    let err = error_rate(&test.labels, &predictions);
    println!("\ntest error rate: {err:.3}");
    println!("training cache: {}", model.cache_stats());

    // Stage tree to stderr + optional JSONL report when RPM_LOG is set.
    rpm::obs::finish();
}
