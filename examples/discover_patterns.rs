//! Exploratory pattern discovery (the paper's Figs. 2-3 workflow): mine
//! the class-specific representative patterns of a dataset and render them
//! as terminal sparklines, alongside the SAX parameters chosen per class.
//!
//! ```text
//! cargo run --release --example discover_patterns [CBF|Coffee|GunPoint|...]
//! ```

use rpm::prelude::*;
use rpm_data::registry::spec_by_name;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "CBF".to_string());
    let spec = spec_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name:?}; available:");
        for s in rpm_data::suite() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    });
    let (train, test) = rpm_data::generate(&spec, 2016);
    println!("dataset: {train}");

    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 10,
            per_class: false,
        },
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config).expect("training failed");

    println!("\nSAX parameters per class:");
    for (class, sax) in model.sax_configs() {
        println!(
            "  class {class}: window {} / PAA {} / alphabet {}",
            sax.window, sax.paa_size, sax.alphabet
        );
    }

    println!("\nrepresentative patterns:");
    for class in train.classes() {
        let pats = model.patterns_for_class(class);
        println!("class {class} ({} patterns):", pats.len());
        for p in pats {
            println!(
                "  len {:>4} freq {:>3} coverage {:>3}  {}",
                p.values.len(),
                p.frequency,
                p.coverage,
                sparkline(&p.values)
            );
        }
    }

    let err = error_rate(&test.labels, &model.predict_batch(&test.series));
    println!("\ntest error rate: {err:.3}");
}
