//! UCR file-format round trip: export a generated dataset in the archive's
//! label-first format, read it back, and train from the file — the
//! workflow for anyone pointing this library at a real UCR download.
//!
//! ```text
//! cargo run --release --example ucr_io
//! ```

use rpm::data::ucr::{read_ucr_file, write_ucr};
use rpm::prelude::*;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("rpm_ucr_example");
    std::fs::create_dir_all(&dir)?;
    let train_path = dir.join("GunPoint_TRAIN");
    let test_path = dir.join("GunPoint_TEST");

    // Export a GunPoint-like pair.
    let spec = rpm::data::registry::spec_by_name("GunPoint").expect("suite dataset");
    let (train, test) = rpm::data::generate(&spec, 2016);
    write_ucr(&train, std::fs::File::create(&train_path)?)?;
    write_ucr(&test, std::fs::File::create(&test_path)?)?;
    println!("wrote {} and {}", train_path.display(), test_path.display());

    // Read back, exactly as one would read a real archive file.
    let (train2, label_map) = read_ucr_file(&train_path)?;
    let (test2, _) = read_ucr_file(&test_path)?;
    println!("reloaded: {train2}");
    println!("label map (raw -> dense): {:?}", label_map.raw);

    let config = RpmConfig::fixed(SaxConfig::new(30, 4, 4));
    let model = RpmClassifier::train(&train2, &config).expect("training failed");
    let err = error_rate(&test2.labels, &model.predict_batch(&test2.series));
    println!("test error rate from reloaded files: {err:.3}");
    Ok(())
}
