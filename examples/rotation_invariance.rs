//! The §6.1 case study: classify *rotated* test series (the training set
//! stays clean). Compares plain NN-ED / plain RPM against the
//! rotation-invariant RPM transform.
//!
//! ```text
//! cargo run --release --example rotation_invariance
//! ```

use rpm::prelude::*;
use rpm_data::{registry::spec_by_name, rotate_dataset};

fn main() {
    let spec = spec_by_name("GunPoint").expect("suite dataset");
    let (train, test_clean) = rpm_data::generate(&spec, 2016);
    let test_rotated = rotate_dataset(&test_clean, 42);
    println!("dataset: {train}");

    // 1-NN Euclidean (the global baseline the paper shows collapsing).
    let nn = rpm::baselines::OneNnEuclidean::train(&train);
    let nn_clean = error_rate(&test_clean.labels, &nn.predict_batch(&test_clean.series));
    let nn_rot = error_rate(
        &test_rotated.labels,
        &nn.predict_batch(&test_rotated.series),
    );

    // RPM, plain and rotation-invariant (same patterns; the invariant
    // variant also matches each pattern against the half-rotated series).
    let base = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 10,
            per_class: false,
        },
        ..RpmConfig::default()
    };
    let plain = RpmClassifier::train(&train, &base).expect("training failed");
    let invariant = RpmClassifier::train(
        &train,
        &RpmConfig {
            rotation_invariant: true,
            ..base
        },
    )
    .expect("training failed");

    let rpm_clean = error_rate(&test_clean.labels, &plain.predict_batch(&test_clean.series));
    let rpm_rot = error_rate(
        &test_rotated.labels,
        &plain.predict_batch(&test_rotated.series),
    );
    let rpm_inv_rot = error_rate(
        &test_rotated.labels,
        &invariant.predict_batch(&test_rotated.series),
    );

    println!(
        "\n{:<28}{:>12}{:>14}",
        "method", "clean test", "rotated test"
    );
    println!("{:<28}{nn_clean:>12.3}{nn_rot:>14.3}", "NN-ED");
    println!("{:<28}{rpm_clean:>12.3}{rpm_rot:>14.3}", "RPM (plain)");
    println!(
        "{:<28}{:>12}{rpm_inv_rot:>14.3}",
        "RPM (rotation-invariant)", "-"
    );
    println!(
        "\nExpected shape (paper Table 4): NN-ED degrades drastically under \
         rotation while rotation-invariant RPM holds up."
    );
}
