//! Exploratory motif & discord discovery — the GrammarViz-style capability
//! RPM's candidate generation is built on (§1: "the discovery of
//! class-specific motifs ... extends beyond the classification task").
//! Plants an anomaly inside a periodic signal, then finds both the
//! recurring motifs and the discord.
//!
//! ```text
//! cargo run --release --example explore_motifs
//! ```

use rpm::core::{discover_motifs, find_discords, rule_coverage};
use rpm::sax::SaxConfig;

fn main() {
    // A noisy periodic signal with a flat-line fault in the middle.
    let len = 600;
    let fault = 300..330;
    let series: Vec<f64> = (0..len)
        .map(|i| {
            if fault.contains(&i) {
                2.5
            } else {
                (i as f64 * 0.35).sin() + 0.05 * ((i * 7919) % 13) as f64 / 13.0
            }
        })
        .collect();

    let sax = SaxConfig::new(20, 4, 4);

    let motifs = discover_motifs(&series, &sax);
    println!(
        "discovered {} motifs; top 5 by occurrence count:",
        motifs.len()
    );
    for m in motifs.iter().take(5) {
        let first: Vec<String> = m
            .occurrences
            .iter()
            .take(4)
            .map(|(s, e)| format!("[{s},{e})"))
            .collect();
        println!(
            "  x{:<4} ({} words)  {}",
            m.count(),
            m.rule_words,
            first.join(" ")
        );
    }

    let cover = rule_coverage(&series, &sax);
    let fault_cov: f64 = cover[300..330].iter().map(|&c| c as f64).sum::<f64>() / 30.0;
    let normal_cov: f64 = cover[100..130].iter().map(|&c| c as f64).sum::<f64>() / 30.0;
    println!("\nmean rule coverage: normal region {normal_cov:.1}, fault region {fault_cov:.1}");

    println!("\ntop discords (least-covered windows):");
    for d in find_discords(&series, &sax, 3) {
        let marker = if (250..340).contains(&d.position) {
            "  <-- the fault"
        } else {
            ""
        };
        println!(
            "  @{:<5} len {:<4} coverage {:.2}{marker}",
            d.position, d.length, d.coverage
        );
    }
}
