//! The §6.2 case study: classify arterial-blood-pressure windows as
//! normal or alarm (synthetic MIMIC-II stand-in; see DESIGN.md §3).
//!
//! ```text
//! cargo run --release --example medical_alarm
//! ```

use rpm::prelude::*;
use rpm_ml::per_class_f1;

fn main() {
    let train = rpm::data::abp::generate(20, 400, 7);
    let test = rpm::data::abp::generate(40, 400, 8);
    println!("train: {train}");
    println!("test : {test}");

    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 10,
            per_class: false,
        },
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config).expect("training failed");

    let preds = model.predict_batch(&test.series);
    let err = error_rate(&test.labels, &preds);
    let f1 = per_class_f1(&test.labels, &preds);
    println!("\ntest error rate: {err:.3}");
    println!(
        "per-class F1: normal {:.3}, alarm {:.3}",
        f1[&rpm::data::abp::NORMAL],
        f1[&rpm::data::abp::ALARM]
    );

    println!("\npatterns mined from the alarm class:");
    for p in model.patterns_for_class(rpm::data::abp::ALARM) {
        println!(
            "  len {} freq {} coverage {}",
            p.values.len(),
            p.frequency,
            p.coverage
        );
    }
    println!("patterns mined from the normal class:");
    for p in model.patterns_for_class(rpm::data::abp::NORMAL) {
        println!(
            "  len {} freq {} coverage {}",
            p.values.len(),
            p.frequency,
            p.coverage
        );
    }
}
