//! Model persistence: train once (including the expensive parameter
//! search), save the patterns + SVM to disk, and classify later from the
//! saved model. Predictions are bit-exact across the round trip.
//!
//! ```text
//! cargo run --release --example save_load
//! ```

use rpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = rpm::data::cbf::generate(10, 128, 1);
    let test = rpm::data::cbf::generate(30, 128, 2);

    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 8,
            per_class: false,
        },
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config)?;
    let before = model.predict_batch(&test.series);

    let path = std::env::temp_dir().join("rpm_cbf.model");
    model.save(std::fs::File::create(&path)?)?;
    println!(
        "saved {} patterns to {} ({} bytes)",
        model.patterns().len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    let loaded = RpmClassifier::load(std::fs::File::open(&path)?)?;
    let after = loaded.predict_batch(&test.series);
    assert_eq!(before, after, "round trip must preserve predictions");
    println!(
        "reloaded model agrees on all {} test predictions (error {:.3})",
        after.len(),
        error_rate(&test.labels, &after)
    );
    Ok(())
}
