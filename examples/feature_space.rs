//! The Figure 5/6 workflow: visually similar ECG classes become linearly
//! separable after the representative-pattern transform. Prints the
//! transformed training set as a 2-D ASCII scatter plot.
//!
//! ```text
//! cargo run --release --example feature_space
//! ```

use rpm::prelude::*;
use rpm_data::registry::spec_by_name;

fn main() {
    let spec = spec_by_name("ECGFiveDays").expect("suite dataset");
    let (train, test) = rpm_data::generate(&spec, 2016);
    println!("dataset: {train}");

    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 10,
            per_class: false,
        },
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config).expect("training failed");
    println!("patterns learned: {}", model.patterns().len());

    // Project onto the first two pattern axes.
    let points: Vec<(f64, f64, usize)> = train
        .iter()
        .map(|(s, l)| {
            let f = model.transform(s);
            (f[0], f.get(1).copied().unwrap_or(0.0), l)
        })
        .collect();

    // ASCII scatter, 50x20.
    let (w, h) = (50usize, 20usize);
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let (x_lo, x_hi) = (
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y_lo, y_hi) = (
        ys.iter().copied().fold(f64::INFINITY, f64::min),
        ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let mut grid = vec![vec![' '; w]; h];
    for &(x, y, l) in &points {
        let xi = (((x - x_lo) / (x_hi - x_lo).max(1e-12)) * (w - 1) as f64) as usize;
        let yi = (((y - y_lo) / (y_hi - y_lo).max(1e-12)) * (h - 1) as f64) as usize;
        grid[h - 1 - yi][xi] = if l == 0 { 'o' } else { 'x' };
    }
    println!("\ndistance to pattern #2 ↑  (o = class 0, x = class 1)");
    for row in grid {
        let line: String = row.into_iter().collect();
        println!("|{line}|");
    }
    println!("{:-<52}", "");
    println!("distance to pattern #1 →");

    let err = error_rate(&test.labels, &model.predict_batch(&test.series));
    println!("\ntest error rate: {err:.3}");
}
