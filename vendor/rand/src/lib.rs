//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`]/[`Rng::gen_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this tiny deterministic implementation instead
//! (see DESIGN.md "Engineering guards"). The generator is SplitMix64 —
//! statistically solid for test-data synthesis, deterministic across
//! platforms, and seeded exactly like the real crate's
//! `StdRng::seed_from_u64`. It makes no attempt to reproduce the real
//! `rand` value stream, only the API.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// The next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full generator output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
    )*};
}
signed_sample_range!(isize, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased sampling of `0..span` by rejection.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's natural domain;
    /// `f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator behind the `StdRng` name.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Sebastiano Vigna's SplitMix64.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Mirror of `rand::seq::SliceRandom` (the shuffle subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::reject_sample(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::reject_sample(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! Everything most callers import.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn all_values_hit_in_small_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
