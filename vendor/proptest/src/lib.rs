//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses: the [`proptest!`] macro over named `arg in strategy` inputs,
//! range and [`collection::vec`] strategies, [`Strategy::prop_map`],
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this tiny deterministic implementation (see
//! DESIGN.md "Engineering guards"). Differences from the real crate:
//! no shrinking (a failing case reports its values via the panic
//! message's case index), and generation is driven by a fixed-seed
//! SplitMix64 so every run explores the same cases.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the macro derives the seed from the case index.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform `u64` (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

/// `Just`-style constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Mirror of `proptest::test_runner::Config` (the `cases` subset).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Strategy trait re-exports (mirrors the real crate's module).
    pub use super::{Just, Map, Strategy};
}

pub mod prelude {
    //! Everything the `proptest!` style tests import.
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion inside a property: plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The property-test macro: runs each body `config.cases` times with
/// inputs drawn from the named strategies. Functions keep whatever
/// attributes (`#[test]`, doc comments) they carry in the source.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            // Stable per-test seed: hash of the test name.
            let mut __seed: u64 = 0xcbf29ce484222325;
            for b in stringify!($name).bytes() {
                __seed = (__seed ^ b as u64).wrapping_mul(0x100000001b3);
            }
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::TestRng::seed_from_u64(
                    __seed ^ __case.wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tens(n: usize) -> impl Strategy<Value = Vec<u64>> {
        crate::collection::vec(0u64..10, n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_obey_spec(v in crate::collection::vec(0u32..4, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 4);
            }
        }

        #[test]
        fn prop_map_applies(v in tens(5).prop_map(|v| v.iter().sum::<u64>())) {
            prop_assert!(v <= 45);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }
}
