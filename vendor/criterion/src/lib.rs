//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses. The build environment has no network access to
//! crates.io, so the workspace vendors this tiny implementation (see
//! DESIGN.md "Engineering guards").
//!
//! Unlike a pure no-op shim it really measures: each benchmark body is
//! warmed up once, then timed over `sample_size` samples, and the mean,
//! minimum, and maximum wall-clock per iteration are printed in a
//! `criterion`-like one-line format. No statistical analysis, plots, or
//! baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.last = Some((total / self.samples as u32, min, max));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some((mean, min, max)) => println!(
                "{}/{:<24} time: [{} {} {}]",
                self.name,
                label,
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max),
            ),
            None => println!("{}/{label}: no measurement", self.name),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = id.to_string();
        self.run(&label, f);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.to_string();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let samples = self.default_samples;
        let mut g = BenchmarkGroup {
            name: "bench".into(),
            samples,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declares the benchmark entry points of one target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: 3,
            last: None,
        };
        b.iter(|| (0..1000).sum::<u64>());
        let (mean, min, max) = b.last.expect("measured");
        assert!(min <= mean && mean <= max);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
