#!/usr/bin/env bash
# Chaos gate: arm every fault site against the real CLI workflows and
# assert each run ends in a clean exit or a typed error — exit code 0 or
# 1, never a panic (101) or a signal. Deterministic: every armed spec
# carries an explicit seed.
#
# Usage: ci/chaos.sh [path-to-rpm-cli]
# Builds the release CLI when no path is given.
set -u

CLI="${1:-}"
if [[ -z "$CLI" ]]; then
  cargo build --release --bin rpm-cli >/dev/null
  CLI=target/release/rpm-cli
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# Fixture data, generated without faults.
"$CLI" generate CBF "$WORK/cbf" 2>/dev/null
"$CLI" train "$WORK/cbf_TRAIN" --model "$WORK/clean.rpm" --window 32 2>/dev/null

# run <fault-spec> <expected: "ok|err" or "err"> <cli args...>
run() {
  local spec="$1" expected="$2"
  shift 2
  RPM_FAULT="$spec" "$CLI" "$@" >/dev/null 2>"$WORK/stderr"
  local code=$?
  local verdict="unexpected"
  case "$code" in
    0) [[ "$expected" == *ok* ]] && verdict=ok ;;
    1) [[ "$expected" == *err* ]] && verdict=ok ;;
    2) verdict="usage-error" ;;
    *) verdict="crash" ;;
  esac
  if [[ "$verdict" != ok ]]; then
    echo "FAIL [$verdict, exit $code] RPM_FAULT='$spec' rpm-cli $*"
    sed 's/^/    /' "$WORK/stderr" | tail -5
    FAILURES=$((FAILURES + 1))
  else
    echo "  ok [exit $code] RPM_FAULT='$spec' rpm-cli $*"
  fi
}

echo "== certainty pass: every site at probability 1 =="
# data.load fires before anything else in train/classify.
run "data.load:io:1:0"        err  train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --window 32
run "data.load:io:1:0"        err  classify "$WORK/clean.rpm" "$WORK/cbf_TEST"
# engine.job / params.eval fail the search or the fit with a typed error.
run "engine.job:panic:1:0"    err  train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --window 32
run "engine.job:io:1:0"       err  train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --window 32
run "params.eval:panic:1:0"   err  train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --direct 4
# persistence faults: saving fails late (model already trained), loading
# fails fast.
run "persist.save:io:1:0"     err  train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --window 32
run "persist.load:io:1:0"     err  classify "$WORK/clean.rpm" "$WORK/cbf_TEST"
run "persist.load:io:1:0"     err  model verify "$WORK/clean.rpm"
# checkpoint.load refuses the resume; checkpoint.write degrades to a
# warning and training still succeeds.
run "checkpoint.load:io:1:0"  err  train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --direct 4 --checkpoint "$WORK/c.ckpt"
run "checkpoint.write:io:1:0" ok   train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --direct 4 --checkpoint "$WORK/c2.ckpt"
# Delays never change outcomes.
run "engine.job:delay5:1:0"   ok   train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --window 32
# http.conn: the endpoint must survive injected connection faults (the
# process still exits 0; per-connection failures are absorbed).
run "http.conn:panic:1:0"     ok   classify "$WORK/clean.rpm" "$WORK/cbf_TEST" --metrics-addr 127.0.0.1:0

echo "== probabilistic pass: all sites armed at low probability =="
for seed in 1 2 3 4 5; do
  run "*:io:0.05:$seed"       "ok err" train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --direct 4
  run "*:panic:0.05:$seed"    "ok err" train "$WORK/cbf_TRAIN" --model "$WORK/m.rpm" --direct 4 --checkpoint "$WORK/p$seed.ckpt"
  run "*:io:0.05:$seed"       "ok err" classify "$WORK/clean.rpm" "$WORK/cbf_TEST"
done

echo "== serve: armed request-path faults degrade per request, never kill the server =="
# Each pass starts the server with one serve-path site armed, drives it
# with unarmed open-loop traffic, and requires the server to run out its
# --duration-secs and exit 0: injected failures must surface as 5xx
# responses (counted by load-gen, any mix accepted), not as a dead
# process.
SERVE_PORT=19917
for spec in "serve.request:io:0.3:1" "serve.batch:io:0.3:2" "http.conn:panic:0.2:3" \
            "serve.worker:panic:0.3:7"; do
  SERVE_PORT=$((SERVE_PORT + 1))
  RPM_FAULT="$spec" "$CLI" serve "$WORK/clean.rpm" \
    --addr "127.0.0.1:$SERVE_PORT" --duration-secs 4 >/dev/null 2>"$WORK/serve-stderr" &
  SERVE_PID=$!
  sleep 1
  "$CLI" load-gen "127.0.0.1:$SERVE_PORT" "$WORK/cbf_TEST" \
    --qps 40 --duration-secs 2 --senders 4 >/dev/null 2>&1
  wait "$SERVE_PID"
  code=$?
  if [[ "$code" -ne 0 ]]; then
    echo "FAIL [server died, exit $code] RPM_FAULT='$spec' rpm-cli serve"
    sed 's/^/    /' "$WORK/serve-stderr" | tail -5
    FAILURES=$((FAILURES + 1))
  else
    echo "  ok [server survived] RPM_FAULT='$spec' rpm-cli serve + load-gen"
  fi
done
# Startup verification: a load-path fault must refuse to serve (typed
# error, exit 1) rather than bring up a listener over a broken model.
run "persist.load:io:1:0"   err  serve "$WORK/clean.rpm" --addr 127.0.0.1:0 --duration-secs 1

echo "== serve: a faulted reload is rejected, the incumbent keeps serving =="
# Arm the reload gate itself: the admin client must see a typed 409
# (exit 1), and the server must keep answering /classify on the old
# generation and still exit 0 at the end of its duration.
SERVE_PORT=$((SERVE_PORT + 1))
RPM_FAULT="serve.reload:io:1:11" "$CLI" serve "$WORK/clean.rpm" \
  --addr "127.0.0.1:$SERVE_PORT" --duration-secs 5 >/dev/null 2>"$WORK/serve-stderr" &
SERVE_PID=$!
sleep 1
if RPM_FAULT="" "$CLI" serve reload "127.0.0.1:$SERVE_PORT" --model "$WORK/clean.rpm" >/dev/null 2>&1; then
  echo "FAIL [reload accepted] RPM_FAULT='serve.reload:io:1:11' rpm-cli serve reload"
  FAILURES=$((FAILURES + 1))
else
  echo "  ok [reload rejected with typed error] rpm-cli serve reload"
fi
RPM_FAULT="" "$CLI" load-gen "127.0.0.1:$SERVE_PORT" "$WORK/cbf_TEST" \
  --qps 20 --duration-secs 1 --senders 2 >/dev/null 2>&1
wait "$SERVE_PID"
code=$?
if [[ "$code" -ne 0 ]]; then
  echo "FAIL [server died, exit $code] RPM_FAULT='serve.reload:io:1:11' rpm-cli serve"
  sed 's/^/    /' "$WORK/serve-stderr" | tail -5
  FAILURES=$((FAILURES + 1))
else
  echo "  ok [server survived rejected reload] rpm-cli serve"
fi

echo "== malformed RPM_FAULT is a warning, not a failure =="
run "not-a-valid-spec"        ok   model verify "$WORK/clean.rpm"

if [[ "$FAILURES" -gt 0 ]]; then
  echo "chaos gate: $FAILURES failure(s)"
  exit 1
fi
echo "chaos gate: all runs ended in clean exits or typed errors"
