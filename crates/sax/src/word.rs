//! SAX word type.

use std::fmt;

/// A SAX word: a sequence of alphabet symbols, stored 0-based
/// (`0 => 'a'`, `1 => 'b'`, …).
///
/// Words order lexicographically and hash cheaply, which the grammar
/// tokenizer, the bag-of-words builders, and Fast Shapelets' random
/// projection all rely on.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SaxWord(pub Vec<u8>);

impl SaxWord {
    /// Builds a word from raw 0-based symbols.
    pub fn new(symbols: Vec<u8>) -> Self {
        Self(symbols)
    }

    /// Parses a word from its letter representation (`"abc"`).
    ///
    /// # Panics
    /// Panics on characters outside `a..=z`.
    pub fn from_letters(s: &str) -> Self {
        Self(
            s.chars()
                .map(|c| {
                    assert!(c.is_ascii_lowercase(), "invalid SAX letter {c:?}");
                    c as u8 - b'a'
                })
                .collect(),
        )
    }

    /// Word length (the PAA size it was produced with).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the word holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw 0-based symbols.
    pub fn symbols(&self) -> &[u8] {
        &self.0
    }

    /// Letter rendering, e.g. `[0, 1, 2] => "abc"`.
    pub fn letters(&self) -> String {
        self.0.iter().map(|&s| (b'a' + s) as char).collect()
    }
}

// Both Display and Debug render the letter form: it is what GrammarViz
// shows and what every log line in the reproduction prints.
impl fmt::Debug for SaxWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.letters())
    }
}

impl fmt::Display for SaxWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.letters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_roundtrip() {
        let w = SaxWord::from_letters("cab");
        assert_eq!(w.symbols(), &[2, 0, 1]);
        assert_eq!(w.letters(), "cab");
        assert_eq!(format!("{w}"), "cab");
        assert_eq!(format!("{w:?}"), "cab");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(SaxWord::from_letters("ab") < SaxWord::from_letters("ba"));
        assert!(SaxWord::from_letters("a") < SaxWord::from_letters("ab"));
    }

    #[test]
    fn empty_word() {
        let w = SaxWord::new(vec![]);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.letters(), "");
    }

    #[test]
    #[should_panic(expected = "invalid SAX letter")]
    fn bad_letter_panics() {
        SaxWord::from_letters("aB");
    }
}
