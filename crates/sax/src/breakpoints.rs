//! Gaussian equiprobable breakpoints.
//!
//! SAX maps PAA means to symbols by cutting the standard normal
//! distribution into `alpha` equiprobable regions (§3.2.1). The cut points
//! are `Φ⁻¹(i/alpha)` for `i = 1..alpha`. We compute them with Acklam's
//! rational approximation of the inverse normal CDF (relative error below
//! 1.15e-9 — far below any effect visible after discretization), which
//! supports arbitrary alphabet sizes instead of the usual hardcoded table.

/// Smallest supported alphabet size. A 1-letter alphabet would collapse
/// every subsequence to the same word.
pub const MIN_ALPHABET: usize = 2;

/// Largest supported alphabet size (letters `a..=t`, matching GrammarViz).
pub const MAX_ALPHABET: usize = 20;

/// Inverse CDF of the standard normal distribution (Acklam's algorithm).
///
/// Defined for `p` in the open interval `(0, 1)`; returns `-INFINITY` /
/// `INFINITY` at the endpoints and NaN outside `[0, 1]`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The `alpha - 1` breakpoints dividing N(0,1) into `alpha` equiprobable
/// regions, in ascending order.
///
/// # Panics
/// Panics when `alpha` lies outside [`MIN_ALPHABET`]..=[`MAX_ALPHABET`].
pub fn breakpoints(alpha: usize) -> Vec<f64> {
    assert!(
        (MIN_ALPHABET..=MAX_ALPHABET).contains(&alpha),
        "alphabet size {alpha} outside supported range {MIN_ALPHABET}..={MAX_ALPHABET}"
    );
    (1..alpha)
        .map(|i| inv_norm_cdf(i as f64 / alpha as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_cdf_is_accurate_at_known_quantiles() {
        // Reference values from standard normal tables.
        let cases = [
            (0.5, 0.0),
            (0.841344746, 1.0),
            (0.158655254, -1.0),
            (0.977249868, 2.0),
            (0.9999683287581669, 4.0),
        ];
        for (p, z) in cases {
            assert!(
                (inv_norm_cdf(p) - z).abs() < 1e-6,
                "p={p}: got {}, want {z}",
                inv_norm_cdf(p)
            );
        }
    }

    #[test]
    fn inv_cdf_endpoints_and_domain() {
        assert_eq!(inv_norm_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf(1.0), f64::INFINITY);
        assert!(inv_norm_cdf(-0.1).is_nan());
        assert!(inv_norm_cdf(1.1).is_nan());
        assert!(inv_norm_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn inv_cdf_symmetry() {
        for p in [0.01, 0.1, 0.25, 0.4] {
            assert!((inv_norm_cdf(p) + inv_norm_cdf(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_sax_tables_match() {
        // The published SAX lookup tables for alpha = 3, 4, 5.
        let b3 = breakpoints(3);
        assert!((b3[0] + 0.4307273).abs() < 1e-6);
        assert!((b3[1] - 0.4307273).abs() < 1e-6);

        let b4 = breakpoints(4);
        assert!((b4[0] + 0.6744898).abs() < 1e-6);
        assert!(b4[1].abs() < 1e-9);
        assert!((b4[2] - 0.6744898).abs() < 1e-6);

        let b5 = breakpoints(5);
        assert!((b5[0] + 0.8416212).abs() < 1e-6);
        assert!((b5[1] + 0.2533471).abs() < 1e-6);
    }

    #[test]
    fn breakpoints_are_sorted_and_counted() {
        for alpha in MIN_ALPHABET..=MAX_ALPHABET {
            let b = breakpoints(alpha);
            assert_eq!(b.len(), alpha - 1);
            for w in b.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn breakpoints_are_symmetric_around_zero() {
        for alpha in [2, 4, 6, 10] {
            let b = breakpoints(alpha);
            for i in 0..b.len() {
                assert!((b[i] + b[b.len() - 1 - i]).abs() < 1e-9, "alpha={alpha}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn alphabet_of_one_panics() {
        breakpoints(1);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn oversized_alphabet_panics() {
        breakpoints(MAX_ALPHABET + 1);
    }
}
