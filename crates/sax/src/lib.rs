//! # rpm-sax — Symbolic Aggregate approXimation
//!
//! SAX discretization as used by the RPM pipeline (§3.2.1) and by the
//! SAX-VSM / Fast Shapelets baselines:
//!
//! * Gaussian equiprobable breakpoints for any alphabet size
//!   ([`breakpoints()`]),
//! * single-subsequence discretization (z-normalize → PAA → symbols,
//!   [`sax_word`]),
//! * sliding-window discretization of a whole series with optional
//!   **numerosity reduction** ([`discretize()`]),
//! * the MINDIST lower bound between SAX words ([`mindist()`]),
//! * per-class bag-of-words construction ([`bag::BagOfWords`]).

pub mod bag;
pub mod breakpoints;
pub mod discretize;
pub mod mindist;
pub mod word;

pub use bag::BagOfWords;
pub use breakpoints::{breakpoints, inv_norm_cdf, MAX_ALPHABET, MIN_ALPHABET};
pub use discretize::{
    discretize, paa_frames, sax_word, words_from_frames, PaaFrame, SaxConfig, SaxWordAt,
};
pub use mindist::mindist;
pub use word::SaxWord;
