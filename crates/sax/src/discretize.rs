//! Subsequence and sliding-window discretization (§3.2.1).

use crate::breakpoints::breakpoints;
use crate::word::SaxWord;
use rpm_ts::{paa, znorm};

/// The three SAX granularity parameters the paper optimizes per class
/// (Algorithm 3): sliding window length, PAA size, alphabet size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SaxConfig {
    /// Sliding-window length in points.
    pub window: usize,
    /// Number of PAA segments per window (word length).
    pub paa_size: usize,
    /// Alphabet size.
    pub alphabet: usize,
}

impl SaxConfig {
    /// Creates a config, validating basic sanity.
    ///
    /// # Panics
    /// Panics when `window == 0`, `paa_size == 0`, or the alphabet is out
    /// of the supported range.
    pub fn new(window: usize, paa_size: usize, alphabet: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(paa_size > 0, "paa_size must be positive");
        // Validates alphabet bounds as a side effect.
        let _ = breakpoints(alphabet);
        Self {
            window,
            paa_size,
            alphabet,
        }
    }
}

/// A SAX word tagged with the offset of the subsequence it encodes —
/// the `word_position` pairs the paper threads through grammar induction so
/// rules can be mapped back to raw subsequences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaxWordAt {
    /// Start offset of the window in the source series.
    pub offset: usize,
    /// The discretized window.
    pub word: SaxWord,
}

/// Converts symbols from PAA values given precomputed ascending breakpoints.
fn symbolize(paa_values: &[f64], cuts: &[f64]) -> SaxWord {
    SaxWord::new(
        paa_values
            .iter()
            .map(|&v| cuts.partition_point(|&c| c <= v) as u8)
            .collect(),
    )
}

/// Discretizes a single subsequence: z-normalize, PAA to `cfg.paa_size`
/// segments, then map each segment mean to a symbol.
///
/// `cfg.window` is ignored here (the subsequence *is* the window).
pub fn sax_word(subsequence: &[f64], cfg: &SaxConfig) -> SaxWord {
    let cuts = breakpoints(cfg.alphabet);
    let z = znorm(subsequence);
    let p = paa(&z, cfg.paa_size);
    symbolize(&p, &cuts)
}

/// Discretizes every sliding window of `series`, optionally applying
/// numerosity reduction (keep only the first of a run of identical
/// consecutive words, §3.2.1).
///
/// Returns words in offset order. A series shorter than the window yields
/// an empty vector — the caller (parameter search) treats that as an
/// infeasible configuration.
pub fn discretize(series: &[f64], cfg: &SaxConfig, numerosity_reduction: bool) -> Vec<SaxWordAt> {
    let cuts = breakpoints(cfg.alphabet);
    let mut out: Vec<SaxWordAt> = Vec::new();
    let mut zbuf = vec![0.0; cfg.window];
    for (offset, w) in rpm_ts::sliding_windows(series, cfg.window) {
        rpm_ts::znorm_into(w, &mut zbuf);
        let p = paa(&zbuf, cfg.paa_size);
        let word = symbolize(&p, &cuts);
        if numerosity_reduction {
            if let Some(last) = out.last() {
                if last.word == word {
                    continue;
                }
            }
        }
        out.push(SaxWordAt { offset, word });
    }
    out
}

/// The alphabet-independent half of discretization: a z-normalized,
/// PAA-reduced sliding window. Parameter-search grids vary the alphabet
/// far more cheaply than the window/PAA pair, so `rpm-core` memoizes
/// these frames per `(window, paa)` and derives words for every alphabet
/// from the same frames (see `rpm_core::cache`).
#[derive(Clone, Debug, PartialEq)]
pub struct PaaFrame {
    /// Start offset of the window in the source series.
    pub offset: usize,
    /// PAA segment means of the z-normalized window.
    pub paa: Vec<f64>,
}

/// Computes the [`PaaFrame`]s of every sliding window: exactly the
/// z-normalize + PAA stage of [`discretize`], with symbolization and
/// numerosity reduction deferred to [`words_from_frames`].
pub fn paa_frames(series: &[f64], window: usize, paa_size: usize) -> Vec<PaaFrame> {
    let mut out = Vec::new();
    let mut zbuf = vec![0.0; window];
    for (offset, w) in rpm_ts::sliding_windows(series, window) {
        rpm_ts::znorm_into(w, &mut zbuf);
        out.push(PaaFrame {
            offset,
            paa: paa(&zbuf, paa_size),
        });
    }
    out
}

/// Completes discretization from precomputed frames: symbolize each frame
/// with the `alphabet` breakpoints and optionally apply numerosity
/// reduction. `words_from_frames(paa_frames(s, w, p), a, nr)` is
/// guaranteed to equal `discretize(s, &SaxConfig::new(w, p, a), nr)`.
pub fn words_from_frames(
    frames: &[PaaFrame],
    alphabet: usize,
    numerosity_reduction: bool,
) -> Vec<SaxWordAt> {
    let cuts = breakpoints(alphabet);
    let mut out: Vec<SaxWordAt> = Vec::new();
    for frame in frames {
        let word = symbolize(&frame.paa, &cuts);
        if numerosity_reduction {
            if let Some(last) = out.last() {
                if last.word == word {
                    continue;
                }
            }
        }
        out.push(SaxWordAt {
            offset: frame.offset,
            word,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, paa: usize, alpha: usize) -> SaxConfig {
        SaxConfig::new(window, paa, alpha)
    }

    #[test]
    fn ramp_maps_to_ascending_symbols() {
        let ramp: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let w = sax_word(&ramp, &cfg(12, 4, 4));
        // A rising ramp must produce non-decreasing symbols spanning the
        // alphabet ends.
        let s = w.symbols();
        assert!(s.windows(2).all(|p| p[0] <= p[1]), "{w}");
        assert_eq!(s[0], 0);
        assert_eq!(s[3], 3);
    }

    #[test]
    fn constant_window_maps_to_middle_symbols() {
        // znorm of a constant window is all zeros; with alpha=4 zero sits
        // exactly on the middle breakpoint, landing in the upper-middle bin.
        let w = sax_word(&[5.0; 8], &cfg(8, 4, 4));
        assert!(w.symbols().iter().all(|&s| s == 1 || s == 2), "{w}");
    }

    #[test]
    fn symbolize_respects_breakpoints() {
        // alpha=3 cuts at ±0.4307.
        let cuts = breakpoints(3);
        let w = symbolize(&[-1.0, 0.0, 1.0], &cuts);
        assert_eq!(w.letters(), "abc");
    }

    #[test]
    fn value_on_breakpoint_goes_to_upper_bin() {
        let cuts = vec![0.0];
        let w = symbolize(&[0.0], &cuts);
        assert_eq!(w.symbols(), &[1]);
    }

    #[test]
    fn discretize_yields_one_word_per_position_without_nr() {
        let s: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let words = discretize(&s, &cfg(8, 4, 4), false);
        assert_eq!(words.len(), 20 - 8 + 1);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w.offset, i);
        }
    }

    #[test]
    fn numerosity_reduction_collapses_runs() {
        // A slowly varying series produces runs of identical words.
        let s: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let all = discretize(&s, &cfg(16, 4, 3), false);
        let reduced = discretize(&s, &cfg(16, 4, 3), true);
        assert!(
            reduced.len() < all.len(),
            "{} vs {}",
            reduced.len(),
            all.len()
        );
        // No two consecutive identical words remain.
        for pair in reduced.windows(2) {
            assert_ne!(pair[0].word, pair[1].word);
        }
        // The first occurrence of each run is kept.
        assert_eq!(reduced[0].offset, 0);
    }

    #[test]
    fn numerosity_reduction_keeps_nonconsecutive_duplicates() {
        // The paper's example: S1 = aba bac bac bac cab acc bac bac cab
        // becomes aba bac cab acc bac cab — "bac" reappears after "acc".
        // We emulate by hand-rolling words through the same filter logic.
        let s: Vec<f64> = (0..60)
            .map(|i| {
                if (i / 10) % 2 == 0 {
                    (i % 10) as f64
                } else {
                    (9 - i % 10) as f64
                }
            })
            .collect();
        let reduced = discretize(&s, &cfg(10, 5, 4), true);
        let letters: Vec<String> = reduced.iter().map(|w| w.word.letters()).collect();
        // The zig-zag series must alternate between at least two words and
        // revisit earlier words.
        let unique: std::collections::BTreeSet<_> = letters.iter().collect();
        assert!(
            unique.len() < letters.len(),
            "repeats must survive: {letters:?}"
        );
    }

    #[test]
    fn short_series_yields_nothing() {
        let words = discretize(&[1.0, 2.0], &cfg(8, 4, 4), true);
        assert!(words.is_empty());
    }

    #[test]
    fn word_length_clamps_to_window() {
        // paa_size > window clamps to window length (rpm-ts::paa behaviour).
        let w = sax_word(&[0.0, 1.0], &cfg(2, 8, 4));
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        SaxConfig::new(0, 4, 4);
    }

    #[test]
    fn frames_then_words_equals_discretize() {
        let s: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.23).sin() + (i as f64 * 0.05).cos())
            .collect();
        for (w, p) in [(8usize, 4usize), (16, 4), (16, 8), (24, 6)] {
            let frames = paa_frames(&s, w, p);
            for a in [3usize, 4, 6, 8] {
                let cfg = SaxConfig::new(w, p, a);
                for nr in [false, true] {
                    assert_eq!(
                        words_from_frames(&frames, a, nr),
                        discretize(&s, &cfg, nr),
                        "w={w} p={p} a={a} nr={nr}"
                    );
                }
            }
        }
    }

    #[test]
    fn frames_of_short_series_are_empty() {
        assert!(paa_frames(&[1.0, 2.0], 8, 4).is_empty());
        assert!(words_from_frames(&[], 4, true).is_empty());
    }
}
