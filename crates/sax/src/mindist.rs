//! MINDIST — the SAX lower bound on Euclidean distance.
//!
//! `MINDIST(Q̂, Ĉ) = sqrt(n/w) * sqrt(Σ cell(q_i, c_i)²)` where `cell` looks
//! up the breakpoint gap between two symbols (zero for adjacent or equal
//! symbols). RPM itself never prunes with MINDIST, but Fast Shapelets and
//! the exploratory tooling do, and it completes the SAX substrate.

use crate::breakpoints::breakpoints;
use crate::word::SaxWord;

/// Lower bound on the Euclidean distance between the two z-normalized
/// length-`n` subsequences the words were derived from.
///
/// # Panics
/// Panics when the words differ in length, are empty, or contain symbols
/// outside the alphabet.
pub fn mindist(a: &SaxWord, b: &SaxWord, alpha: usize, n: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "MINDIST requires equal word lengths");
    assert!(!a.is_empty(), "MINDIST of empty words");
    let cuts = breakpoints(alpha);
    let w = a.len();
    let mut acc = 0.0;
    for (&sa, &sb) in a.symbols().iter().zip(b.symbols()) {
        let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
        assert!((hi as usize) < alpha, "symbol outside alphabet");
        if hi - lo >= 2 {
            // Gap between the regions: upper cut of `lo` to lower cut of `hi`.
            let d = cuts[hi as usize - 1] - cuts[lo as usize];
            acc += d * d;
        }
    }
    ((n as f64) / (w as f64)).sqrt() * acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_ts::{euclidean, znorm};

    #[test]
    fn identical_words_have_zero_mindist() {
        let w = SaxWord::from_letters("abba");
        assert_eq!(mindist(&w, &w, 4, 16), 0.0);
    }

    #[test]
    fn adjacent_symbols_contribute_zero() {
        let a = SaxWord::from_letters("ab");
        let b = SaxWord::from_letters("ba");
        assert_eq!(mindist(&a, &b, 4, 8), 0.0);
    }

    #[test]
    fn distant_symbols_contribute_breakpoint_gap() {
        // alpha=4: cuts at [-0.6745, 0, 0.6745]. Symbols a(0) and d(3) gap
        // from cuts[0] to cuts[2] => 1.3490.
        let a = SaxWord::from_letters("a");
        let b = SaxWord::from_letters("d");
        let d = mindist(&a, &b, 4, 1);
        assert!((d - 1.348979).abs() < 1e-5, "{d}");
    }

    #[test]
    fn scaling_with_n() {
        let a = SaxWord::from_letters("ad");
        let b = SaxWord::from_letters("da");
        let d1 = mindist(&a, &b, 4, 2);
        let d4 = mindist(&a, &b, 4, 8);
        assert!((d4 / d1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        // The lower-bounding property, checked over deterministic pseudo-
        // random subsequence pairs.
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 4.0 - 2.0
        };
        for _ in 0..50 {
            let x: Vec<f64> = (0..32).map(|_| next()).collect();
            let y: Vec<f64> = (0..32).map(|_| next()).collect();
            let zx = znorm(&x);
            let zy = znorm(&y);
            let true_d = euclidean(&zx, &zy);
            let cfg = crate::discretize::SaxConfig::new(32, 8, 6);
            let wa = crate::discretize::sax_word(&x, &cfg);
            let wb = crate::discretize::sax_word(&y, &cfg);
            let lb = mindist(&wa, &wb, 6, 32);
            assert!(
                lb <= true_d + 1e-9,
                "MINDIST {lb} exceeds Euclidean {true_d}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal word lengths")]
    fn mismatched_lengths_panic() {
        mindist(
            &SaxWord::from_letters("ab"),
            &SaxWord::from_letters("abc"),
            4,
            8,
        );
    }
}
