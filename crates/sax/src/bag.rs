//! Bag-of-words construction over SAX words.
//!
//! SAX-VSM represents each *class* as a bag of the SAX words extracted from
//! all its training series (then weights them with tf-idf). The bag type
//! here is the shared substrate; the tf-idf weighting lives with the
//! SAX-VSM baseline in `rpm-baselines`.

use crate::discretize::{discretize, SaxConfig};
use crate::word::SaxWord;
use std::collections::HashMap;

/// A multiset of SAX words.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BagOfWords {
    counts: HashMap<SaxWord, u64>,
    total: u64,
}

impl BagOfWords {
    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bag from one series via sliding-window discretization with
    /// numerosity reduction (SAX-VSM's convention).
    pub fn from_series(series: &[f64], cfg: &SaxConfig) -> Self {
        let mut bag = Self::new();
        for w in discretize(series, cfg, true) {
            bag.add(w.word);
        }
        bag
    }

    /// Adds one occurrence of `word`.
    pub fn add(&mut self, word: SaxWord) {
        *self.counts.entry(word).or_insert(0) += 1;
        self.total += 1;
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &BagOfWords) {
        for (w, &c) in &other.counts {
            *self.counts.entry(w.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Occurrence count of `word`.
    pub fn count(&self, word: &SaxWord) -> u64 {
        self.counts.get(word).copied().unwrap_or(0)
    }

    /// Total number of word occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct words.
    pub fn vocabulary_size(&self) -> usize {
        self.counts.len()
    }

    /// True when `word` occurs at least once.
    pub fn contains(&self, word: &SaxWord) -> bool {
        self.counts.contains_key(word)
    }

    /// Iterator over `(word, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&SaxWord, u64)> + '_ {
        self.counts.iter().map(|(w, &c)| (w, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut b = BagOfWords::new();
        b.add(SaxWord::from_letters("ab"));
        b.add(SaxWord::from_letters("ab"));
        b.add(SaxWord::from_letters("ba"));
        assert_eq!(b.count(&SaxWord::from_letters("ab")), 2);
        assert_eq!(b.count(&SaxWord::from_letters("ba")), 1);
        assert_eq!(b.count(&SaxWord::from_letters("cc")), 0);
        assert_eq!(b.total(), 3);
        assert_eq!(b.vocabulary_size(), 2);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BagOfWords::new();
        a.add(SaxWord::from_letters("x"));
        let mut c = BagOfWords::new();
        c.add(SaxWord::from_letters("x"));
        a.merge(&c);
        assert_eq!(a.count(&SaxWord::from_letters("x")), 2);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn from_series_counts_reduced_words() {
        let s: Vec<f64> = (0..40).map(|i| (i as f64 * 0.5).sin()).collect();
        let cfg = SaxConfig::new(10, 4, 4);
        let bag = BagOfWords::from_series(&s, &cfg);
        assert!(bag.total() > 0);
        let reduced = discretize(&s, &cfg, true);
        assert_eq!(bag.total(), reduced.len() as u64);
    }

    #[test]
    fn contains_matches_count() {
        let mut b = BagOfWords::new();
        let w = SaxWord::from_letters("abc");
        assert!(!b.contains(&w));
        b.add(w.clone());
        assert!(b.contains(&w));
    }
}
