//! Re-Pair grammar inference (Larsson & Moffat, 1999).
//!
//! The paper notes (§3.2.2) that RPM "also works with other (context-free)
//! GI algorithms"; Re-Pair is the canonical offline alternative to
//! Sequitur: repeatedly replace the *globally* most frequent digram with a
//! fresh rule until no digram repeats. Offline selection usually yields a
//! slightly better compression (and hence higher-frequency rules) than
//! Sequitur's online heuristic, at the cost of another pass structure.
//!
//! The implementation is the straightforward O(n · #rules) array version:
//! the sequence lives in a `Vec<Option<Sym>>` with holes left by
//! replacements; each round recounts digrams (skipping holes), replaces
//! the winner left-to-right non-overlapping, and stops when the best
//! count drops below 2. Ample for SAX word streams (thousands of tokens).

use crate::sequitur::{Grammar, Sym, Token};
use std::collections::HashMap;

/// Infers a Re-Pair grammar over `tokens`. The returned [`Grammar`] has
/// exactly the same semantics as [`crate::sequitur::infer`]'s: axiom rule
/// 0, terminal expansions, and occurrence spans for every rule.
pub fn infer_repair(tokens: &[Token]) -> Grammar {
    let mut seq: Vec<Option<Sym>> = tokens.iter().map(|&t| Some(Sym::T(t))).collect();
    let mut rules: Vec<(Sym, Sym)> = Vec::new(); // rule body per new nonterminal

    loop {
        // Count non-overlapping digrams (greedy left-to-right).
        let mut counts: HashMap<(Sym, Sym), usize> = HashMap::new();
        {
            let mut prev: Option<Sym> = None;
            let mut last_counted_with_prev = false;
            for s in seq.iter().flatten() {
                if let Some(p) = prev {
                    // Greedy non-overlap: if the previous position just
                    // closed a counted digram of the same pair (runs like
                    // aaaa), skip alternate positions.
                    let key = (p, *s);
                    if last_counted_with_prev && p == *s {
                        last_counted_with_prev = false;
                    } else {
                        *counts.entry(key).or_insert(0) += 1;
                        last_counted_with_prev = true;
                    }
                } else {
                    last_counted_with_prev = false;
                }
                prev = Some(*s);
            }
        }
        let Some((&best, &count)) = counts
            .iter()
            .max_by_key(|&(d, &c)| (c, std::cmp::Reverse(digram_order(d))))
        else {
            break;
        };
        if count < 2 {
            break;
        }

        // Allocate the new rule. Internal rule ids are 0-based here; the
        // axiom is prepended at the end, so rule i becomes output id i+1.
        let new_id = rules.len() as u32;
        rules.push(best);
        let new_sym = Sym::R(new_id);

        // Replace left-to-right, non-overlapping.
        let positions: Vec<usize> = (0..seq.len()).filter(|&i| seq[i].is_some()).collect();
        let mut k = 0;
        while k + 1 < positions.len() {
            let i = positions[k];
            let j = positions[k + 1];
            if seq[i] == Some(best.0) && seq[j] == Some(best.1) {
                seq[i] = Some(new_sym);
                seq[j] = None;
                k += 2; // the consumed pair cannot overlap the next match
            } else {
                k += 1;
            }
        }
    }

    // Assemble: axiom first, then the rules shifted by one.
    let shift = |s: Sym| -> Sym {
        match s {
            Sym::T(t) => Sym::T(t),
            Sym::R(r) => Sym::R(r + 1),
        }
    };
    let axiom: Vec<Sym> = seq.into_iter().flatten().map(shift).collect();
    let mut rhs_list = Vec::with_capacity(rules.len() + 1);
    rhs_list.push(axiom);
    for (a, b) in &rules {
        rhs_list.push(vec![shift(*a), shift(*b)]);
    }

    // Enforce rule utility: unlike Sequitur, offline Re-Pair can strand a
    // rule with a single remaining reference (a later replacement absorbs
    // its other uses). Inline such rules until a fixpoint, then drop the
    // dead bodies and renumber.
    loop {
        let mut uses = vec![0usize; rhs_list.len()];
        for rhs in &rhs_list {
            for s in rhs {
                if let Sym::R(r) = s {
                    uses[*r as usize] += 1;
                }
            }
        }
        let Some(victim) = (1..rhs_list.len()).find(|&r| uses[r] == 1 && !rhs_list[r].is_empty())
        else {
            break;
        };
        let body = rhs_list[victim].clone();
        'outer: for rhs in rhs_list.iter_mut() {
            for i in 0..rhs.len() {
                if rhs[i] == Sym::R(victim as u32) {
                    rhs.splice(i..=i, body.iter().copied());
                    break 'outer;
                }
            }
        }
        rhs_list[victim].clear();
    }

    // Renumber, dropping cleared rules (the axiom always survives).
    let mut id_map = vec![u32::MAX; rhs_list.len()];
    let mut compact: Vec<Vec<Sym>> = Vec::new();
    for (i, rhs) in rhs_list.iter().enumerate() {
        if i == 0 || !rhs.is_empty() {
            id_map[i] = compact.len() as u32;
            compact.push(rhs.clone());
        }
    }
    for rhs in &mut compact {
        for s in rhs.iter_mut() {
            if let Sym::R(r) = s {
                *s = Sym::R(id_map[*r as usize]);
            }
        }
    }

    // Final use counts over the compacted grammar.
    let mut uses = vec![0usize; compact.len()];
    for rhs in &compact {
        for s in rhs {
            if let Sym::R(r) = s {
                uses[*r as usize] += 1;
            }
        }
    }
    crate::builder::build_grammar(compact, uses, tokens.len())
}

/// Deterministic tie-break between equally frequent digrams.
fn digram_order(d: &(Sym, Sym)) -> (u64, u64) {
    let key = |s: Sym| -> u64 {
        match s {
            Sym::T(t) => t as u64,
            Sym::R(r) => (1 << 40) + r as u64,
        }
    };
    (key(d.0), key(d.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequitur::Span;

    fn tokens(s: &str) -> Vec<Token> {
        s.bytes().map(|b| b as Token).collect()
    }

    fn assert_valid(input: &[Token]) -> Grammar {
        let g = infer_repair(input);
        assert_eq!(g.axiom().expansion, input, "axiom must reproduce input");
        for (id, rule) in g.repeated_rules() {
            assert!(rule.uses >= 2, "rule {id} underused ({})", rule.uses);
            for span in &rule.occurrences {
                assert_eq!(
                    &input[span.start..span.end],
                    rule.expansion.as_slice(),
                    "rule {id} occurrence {span:?}"
                );
            }
        }
        g
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(infer_repair(&[]).rules.len(), 1);
        let g = infer_repair(&[5]);
        assert_eq!(g.axiom().expansion, vec![5]);
    }

    #[test]
    fn abcabc_produces_abc_rule() {
        let input = tokens("abcabc");
        let g = assert_valid(&input);
        let abc = tokens("abc");
        let found = g.repeated_rules().any(|(_, r)| r.expansion == abc);
        assert!(found, "{:?}", g.rules);
    }

    #[test]
    fn most_frequent_digram_wins_first() {
        // "ab" occurs 3 times, "bc" once: the first rule must be (a,b).
        let input = tokens("ababcab");
        let g = assert_valid(&input);
        assert_eq!(g.rules[1].expansion, tokens("ab"));
        assert_eq!(g.rules[1].occurrences.len(), 3);
    }

    #[test]
    fn runs_of_equal_tokens() {
        for n in 2..20 {
            let input = vec![9u32; n];
            assert_valid(&input);
        }
    }

    #[test]
    fn no_repeats_no_rules() {
        let g = assert_valid(&tokens("abcdef"));
        assert_eq!(g.rules.len(), 1);
    }

    #[test]
    fn nested_hierarchy_forms() {
        let input = tokens("abababab");
        let g = assert_valid(&input);
        // (a,b) -> R1 (3+ uses); (R1,R1) -> R2.
        assert!(g.rules.len() >= 3, "{:?}", g.rules);
        let ab4 = g
            .repeated_rules()
            .find(|(_, r)| r.expansion == tokens("abab"));
        assert!(ab4.is_some());
        assert_eq!(
            ab4.unwrap().1.occurrences,
            vec![Span { start: 0, end: 4 }, Span { start: 4, end: 8 }]
        );
    }

    #[test]
    fn pseudo_random_streams_are_valid() {
        let mut state = 0x9e3779b97f4a7c15u64;
        for trial in 0..30 {
            let len = 5 + (trial * 17) % 250;
            let alpha = 2 + trial % 5;
            let input: Vec<Token> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % alpha as u64) as Token
                })
                .collect();
            assert_valid(&input);
        }
    }

    #[test]
    fn repair_and_sequitur_agree_on_expansion() {
        let input = tokens("xyzxyzxyzxyxyxy");
        let a = infer_repair(&input);
        let b = crate::sequitur::infer(&input);
        assert_eq!(a.axiom().expansion, b.axiom().expansion);
    }

    #[test]
    fn deterministic() {
        let input = tokens("mississippi-mississippi");
        let a = infer_repair(&input);
        let b = infer_repair(&input);
        assert_eq!(a.rules.len(), b.rules.len());
        for (x, y) in a.rules.iter().zip(&b.rules) {
            assert_eq!(x.rhs, y.rhs);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_any_sequence(input in proptest::collection::vec(0u32..6, 0..300)) {
            let g = infer_repair(&input);
            prop_assert_eq!(&g.axiom().expansion, &input);
            for (_, r) in g.repeated_rules() {
                prop_assert!(r.uses >= 2);
                for span in &r.occurrences {
                    prop_assert_eq!(&input[span.start..span.end], r.expansion.as_slice());
                }
            }
        }
    }
}
