//! Shared grammar finalization: expansion and occurrence computation from
//! a rule list. Both inference algorithms ([`crate::sequitur`] and
//! [`crate::repair`]) produce right-hand sides and delegate here, so the
//! [`Grammar`] they return has identical semantics.

use crate::sequitur::{Grammar, GrammarRule, Span, Sym, Token};

/// Builds a [`Grammar`] from finished right-hand sides.
///
/// * `rhs_list[0]` is the axiom.
/// * `uses[r]` is the reference count of rule `r` inside the grammar
///   (ignored for the axiom, reported as 0).
/// * `n_tokens` is the input length (the axiom's occurrence span).
///
/// Expansions are computed by memoized DFS; occurrences by walking the
/// axiom and recording the token interval of every rule reference.
pub fn build_grammar(rhs_list: Vec<Vec<Sym>>, uses: Vec<usize>, n_tokens: usize) -> Grammar {
    let n = rhs_list.len();
    assert_eq!(n, uses.len(), "one use count per rule");

    // Expansions.
    let mut expansions: Vec<Option<Vec<Token>>> = vec![None; n];
    fn expand_rule(
        r: usize,
        rhs_list: &[Vec<Sym>],
        expansions: &mut Vec<Option<Vec<Token>>>,
    ) -> Vec<Token> {
        if let Some(e) = &expansions[r] {
            return e.clone();
        }
        let mut out = Vec::new();
        for s in &rhs_list[r] {
            match *s {
                Sym::T(t) => out.push(t),
                Sym::R(child) => {
                    let e = expand_rule(child as usize, rhs_list, expansions);
                    out.extend_from_slice(&e);
                }
            }
        }
        expansions[r] = Some(out.clone());
        out
    }
    for r in 0..n {
        expand_rule(r, &rhs_list, &mut expansions);
    }
    let expansions: Vec<Vec<Token>> = expansions.into_iter().map(Option::unwrap).collect();

    // Occurrences.
    let mut occurrences: Vec<Vec<Span>> = vec![Vec::new(); n];
    fn walk(
        r: usize,
        start: usize,
        rhs_list: &[Vec<Sym>],
        expansions: &[Vec<Token>],
        occ: &mut Vec<Vec<Span>>,
    ) {
        let mut idx = start;
        for s in &rhs_list[r] {
            match *s {
                Sym::T(_) => idx += 1,
                Sym::R(child) => {
                    let c = child as usize;
                    let len = expansions[c].len();
                    occ[c].push(Span {
                        start: idx,
                        end: idx + len,
                    });
                    walk(c, idx, rhs_list, expansions, occ);
                    idx += len;
                }
            }
        }
    }
    occurrences[0].push(Span {
        start: 0,
        end: n_tokens.max(expansions[0].len()),
    });
    walk(0, 0, &rhs_list, &expansions, &mut occurrences);
    for occ in &mut occurrences {
        occ.sort_by_key(|s| (s.start, s.end));
    }

    let rules = (0..n)
        .map(|r| GrammarRule {
            rhs: rhs_list[r].clone(),
            expansion: expansions[r].clone(),
            occurrences: occurrences[r].clone(),
            uses: if r == 0 { 0 } else { uses[r] },
        })
        .collect();
    Grammar { rules }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_built_grammar_expands_and_locates() {
        // axiom: a R1 R1 b ; R1 -> c d
        let rhs = vec![
            vec![Sym::T(0), Sym::R(1), Sym::R(1), Sym::T(1)],
            vec![Sym::T(2), Sym::T(3)],
        ];
        let g = build_grammar(rhs, vec![0, 2], 6);
        assert_eq!(g.axiom().expansion, vec![0, 2, 3, 2, 3, 1]);
        let r1 = &g.rules[1];
        assert_eq!(r1.expansion, vec![2, 3]);
        assert_eq!(
            r1.occurrences,
            vec![Span { start: 1, end: 3 }, Span { start: 3, end: 5 }]
        );
        assert_eq!(r1.uses, 2);
    }

    #[test]
    fn nested_rules_compose() {
        // axiom: R1 R1 ; R1 -> R2 R2 ; R2 -> a b
        let rhs = vec![
            vec![Sym::R(1), Sym::R(1)],
            vec![Sym::R(2), Sym::R(2)],
            vec![Sym::T(7), Sym::T(8)],
        ];
        let g = build_grammar(rhs, vec![0, 2, 2], 8);
        assert_eq!(g.axiom().expansion, vec![7, 8, 7, 8, 7, 8, 7, 8]);
        assert_eq!(g.rules[2].occurrences.len(), 4);
        assert_eq!(g.rules[1].occurrences.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one use count per rule")]
    fn mismatched_uses_panic() {
        build_grammar(vec![vec![Sym::T(0)]], vec![0, 1], 1);
    }
}
