//! The Sequitur algorithm over an index arena.
//!
//! Symbols live in a slab of doubly linked nodes; each rule owns one guard
//! node closing its circular list. The digram index maps a symbol pair to
//! the arena index of the pair's first node. The implementation mirrors the
//! reference C++ structure (`check` / `match` / `substitute` / `expand`),
//! including the classic overlapping-digram guards that make runs like
//! `aaaa` behave.

use std::collections::HashMap;

/// Terminal token identifier. Callers intern whatever alphabet they use
/// (SAX words, characters, …) into dense `u32` ids.
pub type Token = u32;

/// Rule identifier in the *output* grammar (axiom is rule 0).
pub type RuleId = u32;

/// A grammar symbol: terminal token or rule reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sym {
    /// Terminal token.
    T(Token),
    /// Non-terminal (rule reference).
    R(RuleId),
}

/// Half-open token span `[start, end)` in the input sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Span {
    /// Index of the first token covered.
    pub start: usize,
    /// One past the last token covered.
    pub end: usize,
}

impl Span {
    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a degenerate empty span.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// One rule of the inferred grammar.
#[derive(Clone, Debug)]
pub struct GrammarRule {
    /// Right-hand side (rule ids refer to this grammar's numbering).
    pub rhs: Vec<Sym>,
    /// Full terminal expansion of the rule.
    pub expansion: Vec<Token>,
    /// Every occurrence of the rule in the input, as token spans, in
    /// ascending start order. The axiom (rule 0) has the single span
    /// `[0, input_len)`.
    pub occurrences: Vec<Span>,
    /// How many times the rule is referenced in the grammar (0 for the
    /// axiom, ≥ 2 for every other rule — the utility invariant).
    pub uses: usize,
}

/// The output of Sequitur: rule 0 is the axiom; every other rule is a
/// repeated pattern.
#[derive(Clone, Debug)]
pub struct Grammar {
    /// All rules; index = [`RuleId`].
    pub rules: Vec<GrammarRule>,
}

impl Grammar {
    /// The axiom (top-level rule).
    pub fn axiom(&self) -> &GrammarRule {
        &self.rules[0]
    }

    /// Iterator over the non-axiom rules with their ids — the candidate
    /// motifs RPM consumes.
    pub fn repeated_rules(&self) -> impl Iterator<Item = (RuleId, &GrammarRule)> + '_ {
        self.rules
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, r)| (i as RuleId, r))
    }
}

/// Convenience one-shot inference.
pub fn infer(tokens: &[Token]) -> Grammar {
    let mut s = Sequitur::new();
    for &t in tokens {
        s.push(t);
    }
    s.into_grammar()
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    sym: Sym,
    prev: u32,
    next: u32,
    guard: bool,
}

#[derive(Clone, Copy, Debug)]
struct RuleSlot {
    guard: u32,
    uses: u32,
    alive: bool,
}

/// Incremental Sequitur state. Feed tokens with [`Sequitur::push`], then
/// call [`Sequitur::into_grammar`].
pub struct Sequitur {
    nodes: Vec<Node>,
    free: Vec<u32>,
    rules: Vec<RuleSlot>,
    digrams: HashMap<(Sym, Sym), u32>,
    n_tokens: usize,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequitur {
    /// Creates an empty inference state holding just the axiom rule.
    pub fn new() -> Self {
        let mut s = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            rules: Vec::new(),
            digrams: HashMap::new(),
            n_tokens: 0,
        };
        s.new_rule(); // rule 0: axiom
        s
    }

    /// Number of tokens pushed so far.
    pub fn len(&self) -> usize {
        self.n_tokens
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.n_tokens == 0
    }

    // ----- arena primitives -------------------------------------------------

    fn alloc(&mut self, sym: Sym, guard: bool) -> u32 {
        let node = Node {
            sym,
            prev: NIL,
            next: NIL,
            guard,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) {
        self.free.push(i);
    }

    fn sym(&self, i: u32) -> Sym {
        self.nodes[i as usize].sym
    }

    fn next(&self, i: u32) -> u32 {
        self.nodes[i as usize].next
    }

    fn prev(&self, i: u32) -> u32 {
        self.nodes[i as usize].prev
    }

    fn is_guard(&self, i: u32) -> bool {
        self.nodes[i as usize].guard
    }

    fn new_rule(&mut self) -> RuleId {
        let id = self.rules.len() as RuleId;
        let guard = self.alloc(Sym::R(id), true);
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleSlot {
            guard,
            uses: 0,
            alive: true,
        });
        id
    }

    fn rule_first(&self, r: RuleId) -> u32 {
        self.next(self.rules[r as usize].guard)
    }

    fn rule_last(&self, r: RuleId) -> u32 {
        self.prev(self.rules[r as usize].guard)
    }

    // ----- digram table maintenance -----------------------------------------

    /// Removes the table entry for the digram starting at `i`, when that
    /// entry points at `i` itself.
    fn delete_digram(&mut self, i: u32) {
        let n = self.next(i);
        if n == NIL || self.is_guard(i) || self.is_guard(n) {
            return;
        }
        let key = (self.sym(i), self.sym(n));
        if self.digrams.get(&key) == Some(&i) {
            self.digrams.remove(&key);
        }
    }

    /// Links `left -> right`, with the reference implementation's
    /// bookkeeping: the digram that used to start at `left` dies, and runs
    /// of three equal symbols around the seam get their table entries
    /// re-pointed so overlap never corrupts the index.
    fn join(&mut self, left: u32, right: u32) {
        if self.next(left) != NIL {
            self.delete_digram(left);

            let rp = self.prev(right);
            let rn = self.next(right);
            if rp != NIL
                && rn != NIL
                && !self.is_guard(right)
                && !self.is_guard(rp)
                && !self.is_guard(rn)
                && self.sym(right) == self.sym(rp)
                && self.sym(right) == self.sym(rn)
            {
                self.digrams.insert((self.sym(right), self.sym(rn)), right);
            }
            let lp = self.prev(left);
            let ln = self.next(left);
            if lp != NIL
                && ln != NIL
                && !self.is_guard(left)
                && !self.is_guard(lp)
                && !self.is_guard(ln)
                && self.sym(left) == self.sym(ln)
                && self.sym(left) == self.sym(lp)
            {
                self.digrams.insert((self.sym(lp), self.sym(left)), lp);
            }
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    /// Inserts a fresh node for `sym` after `i`, bumping the use count when
    /// `sym` is a non-terminal. Returns the new node.
    fn insert_after(&mut self, i: u32, sym: Sym) -> u32 {
        if let Sym::R(r) = sym {
            self.rules[r as usize].uses += 1;
        }
        let n = self.alloc(sym, false);
        let old_next = self.next(i);
        self.join(n, old_next);
        self.join(i, n);
        n
    }

    /// Unlinks and frees node `i` (the reference destructor): joins its
    /// neighbors, drops its digram entry, and decrements the use count of a
    /// referenced rule.
    fn delete_symbol(&mut self, i: u32) {
        let p = self.prev(i);
        let n = self.next(i);
        self.join(p, n);
        if !self.is_guard(i) {
            self.delete_digram(i);
            if let Sym::R(r) = self.sym(i) {
                self.rules[r as usize].uses -= 1;
            }
        }
        self.release(i);
    }

    // ----- the Sequitur invariant machinery ---------------------------------

    /// Checks the digram starting at `i`; enforces digram uniqueness.
    /// Returns true when the grammar was modified.
    fn check(&mut self, i: u32) -> bool {
        let n = self.next(i);
        if self.is_guard(i) || n == NIL || self.is_guard(n) {
            return false;
        }
        let key = (self.sym(i), self.sym(n));
        match self.digrams.get(&key) {
            None => {
                self.digrams.insert(key, i);
                false
            }
            Some(&m) => {
                if self.next(m) != i {
                    self.match_digram(i, m);
                    true
                } else {
                    // Overlapping occurrence (e.g. the middle of "aaa");
                    // leave the existing entry alone.
                    false
                }
            }
        }
    }

    /// Handles a repeated digram: `i` is the new occurrence, `m` the one
    /// already indexed.
    fn match_digram(&mut self, i: u32, m: u32) {
        let r: RuleId;
        if self.is_guard(self.prev(m)) && self.is_guard(self.next(self.next(m))) {
            // `m`'s digram is exactly the body of an existing rule; reuse it.
            match self.sym(self.prev(m)) {
                Sym::R(id) => r = id,
                Sym::T(_) => unreachable!("guard nodes always reference their rule"),
            }
            self.substitute(i, r);
        } else {
            // Create a new rule from the digram and substitute both sites.
            r = self.new_rule();
            let a = self.sym(i);
            let b = self.sym(self.next(i));
            let g = self.rules[r as usize].guard;
            let first = self.insert_after(g, a);
            self.insert_after(first, b);
            self.substitute(m, r);
            self.substitute(i, r);
            let f = self.rule_first(r);
            let key = (self.sym(f), self.sym(self.next(f)));
            self.digrams.insert(key, f);
        }
        // Rule utility: if the reused/created rule starts with a
        // non-terminal that now has a single use, inline that use.
        let f = self.rule_first(r);
        if let Sym::R(inner) = self.sym(f) {
            if self.rules[inner as usize].uses == 1 {
                self.expand(f);
            }
        }
    }

    /// Replaces the digram starting at `i` with a reference to rule `r`.
    fn substitute(&mut self, i: u32, r: RuleId) {
        let q = self.prev(i);
        let second = self.next(i);
        self.delete_symbol(second);
        self.delete_symbol(i);
        let nt = self.insert_after(q, Sym::R(r));
        if !self.check(q) {
            self.check(nt);
        }
    }

    /// Inlines the single remaining use of the rule referenced by node `i`
    /// (which, by construction, is the first symbol of a freshly touched
    /// rule, so its left neighbor is a guard).
    fn expand(&mut self, i: u32) {
        let r = match self.sym(i) {
            Sym::R(r) => r,
            Sym::T(_) => unreachable!("expand called on terminal"),
        };
        let left = self.prev(i);
        let right = self.next(i);
        let f = self.rule_first(r);
        let l = self.rule_last(r);

        // Drop the digram starting at the use site, free the rule's guard,
        // and mark the rule dead.
        self.delete_digram(i);
        let guard = self.rules[r as usize].guard;
        self.release(guard);
        self.rules[r as usize].alive = false;

        // Unlink the use-site node without touching the rule count (the
        // rule is being dissolved, not de-used).
        self.join(left, right);
        self.release(i);

        // Splice the rule body in place of the use site.
        self.join(left, f);
        self.join(l, right);

        // Index the seam digram (the left seam starts at a guard).
        let key = (self.sym(l), self.sym(right));
        if !self.is_guard(right) {
            self.digrams.insert(key, l);
        }
    }

    // ----- public API --------------------------------------------------------

    /// Appends one terminal token and restores both invariants.
    pub fn push(&mut self, token: Token) {
        self.n_tokens += 1;
        let g = self.rules[0].guard;
        let last = self.prev(g);
        self.insert_after(last, Sym::T(token));
        // Check the digram formed by the previously-last symbol and the
        // newcomer (no-op when the axiom held fewer than two symbols).
        let new_last = self.prev(g);
        let before = self.prev(new_last);
        if !self.is_guard(before) {
            self.check(before);
        }
    }

    /// Finalizes inference: renumbers the surviving rules, expands each to
    /// terminals, and computes every occurrence span by walking the axiom.
    pub fn into_grammar(self) -> Grammar {
        // Map live internal ids -> dense output ids (axiom first).
        let mut id_map: HashMap<RuleId, RuleId> = HashMap::new();
        let mut live: Vec<RuleId> = Vec::new();
        for (i, slot) in self.rules.iter().enumerate() {
            if slot.alive {
                id_map.insert(i as RuleId, live.len() as RuleId);
                live.push(i as RuleId);
            }
        }

        // Collect raw RHSes with original ids.
        let mut raw_rhs: Vec<Vec<Sym>> = Vec::with_capacity(live.len());
        for &r in &live {
            let mut rhs = Vec::new();
            let guard = self.rules[r as usize].guard;
            let mut cur = self.next(guard);
            while cur != guard {
                rhs.push(self.sym(cur));
                cur = self.next(cur);
            }
            raw_rhs.push(rhs);
        }

        // Renumber.
        let rhs_list: Vec<Vec<Sym>> = raw_rhs
            .iter()
            .map(|rhs| {
                rhs.iter()
                    .map(|s| match *s {
                        Sym::T(t) => Sym::T(t),
                        Sym::R(r) => Sym::R(id_map[&r]),
                    })
                    .collect()
            })
            .collect();

        // Expansion + occurrence computation is shared with the other
        // inference algorithms.
        let uses: Vec<usize> = live
            .iter()
            .map(|&r| self.rules[r as usize].uses as usize)
            .collect();
        crate::builder::build_grammar(rhs_list, uses, self.n_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(s: &str) -> Vec<Token> {
        s.bytes().map(|b| b as Token).collect()
    }

    /// Expanding the axiom must reproduce the input exactly.
    fn assert_roundtrip(input: &[Token]) -> Grammar {
        let g = infer(input);
        assert_eq!(g.axiom().expansion, input, "axiom expansion != input");
        g
    }

    /// Every claimed occurrence must actually hold the rule's expansion.
    fn assert_occurrences_valid(g: &Grammar, input: &[Token]) {
        for (id, rule) in g.repeated_rules() {
            assert!(rule.uses >= 2, "rule {id} underused ({})", rule.uses);
            assert!(!rule.occurrences.is_empty(), "rule {id} never occurs");
            for span in &rule.occurrences {
                assert_eq!(
                    &input[span.start..span.end],
                    rule.expansion.as_slice(),
                    "rule {id} occurrence {span:?} mismatches"
                );
            }
        }
    }

    #[test]
    fn empty_input() {
        let g = infer(&[]);
        assert_eq!(g.rules.len(), 1);
        assert!(g.axiom().expansion.is_empty());
    }

    #[test]
    fn single_token() {
        let g = infer(&[7]);
        assert_eq!(g.rules.len(), 1);
        assert_eq!(g.axiom().expansion, vec![7]);
    }

    #[test]
    fn no_repeats_means_no_rules() {
        let input = tokens("abcdefg");
        let g = assert_roundtrip(&input);
        assert_eq!(g.rules.len(), 1);
    }

    #[test]
    fn classic_abcabc() {
        let input = tokens("abcabc");
        let g = assert_roundtrip(&input);
        assert_occurrences_valid(&g, &input);
        // Some rule must expand to "abc" and occur at 0 and 3.
        let abc = tokens("abc");
        let rule = g
            .repeated_rules()
            .find(|(_, r)| r.expansion == abc)
            .expect("no rule for abc");
        assert_eq!(
            rule.1.occurrences,
            vec![Span { start: 0, end: 3 }, Span { start: 3, end: 6 }]
        );
    }

    #[test]
    fn paper_example_bac_cab() {
        // §3.2.2: S1' = aba bac cab acc bac cab  (after numerosity reduction)
        // tokens:        0   1   2   3   1   2
        // Sequitur must produce R1 -> bac cab used twice.
        let input = [0u32, 1, 2, 3, 1, 2];
        let g = assert_roundtrip(&input);
        assert_occurrences_valid(&g, &input);
        let rule = g
            .repeated_rules()
            .find(|(_, r)| r.expansion == vec![1, 2])
            .expect("no [bac cab] rule");
        assert_eq!(rule.1.uses, 2);
        assert_eq!(
            rule.1.occurrences,
            vec![Span { start: 1, end: 3 }, Span { start: 4, end: 6 }]
        );
    }

    #[test]
    fn run_of_equal_tokens() {
        for n in 2..24 {
            let input = vec![5u32; n];
            let g = assert_roundtrip(&input);
            assert_occurrences_valid(&g, &input);
        }
    }

    #[test]
    fn nested_repetition_builds_hierarchy() {
        // "abab abab" forces a rule whose RHS references another rule.
        let input = tokens("abababab");
        let g = assert_roundtrip(&input);
        assert_occurrences_valid(&g, &input);
        assert!(g.rules.len() >= 2);
        let has_nested = g
            .repeated_rules()
            .any(|(_, r)| r.rhs.iter().any(|s| matches!(s, Sym::R(_))));
        assert!(has_nested, "expected rule hierarchy: {:?}", g.rules);
    }

    #[test]
    fn digram_uniqueness_holds_in_output() {
        // No digram may appear twice across all RHSes (non-overlapping).
        let input = tokens("abcdbcabcdbcefefefxyxyxy");
        let g = assert_roundtrip(&input);
        assert_occurrences_valid(&g, &input);
        // The classic invariant exempts *overlapping* digrams (a run like
        // `A A A` legitimately holds two overlapping copies of (A, A)), so
        // count greedily non-overlapping occurrences per rule.
        let mut seen: std::collections::HashMap<(Sym, Sym), usize> = Default::default();
        for rule in &g.rules {
            let mut i = 0;
            let mut last_counted: Option<usize> = None;
            while i + 1 < rule.rhs.len() {
                let d = (rule.rhs[i], rule.rhs[i + 1]);
                let overlaps_previous = last_counted == Some(i.wrapping_sub(1))
                    && i > 0
                    && rule.rhs[i - 1] == rule.rhs[i]
                    && rule.rhs[i] == rule.rhs[i + 1];
                if !overlaps_previous {
                    *seen.entry(d).or_insert(0) += 1;
                    last_counted = Some(i);
                }
                i += 1;
            }
        }
        for (d, c) in seen {
            assert!(c <= 1, "digram {d:?} appears {c} times");
        }
    }

    #[test]
    fn sentinel_tokens_never_join_rules() {
        // Two copies of "abcabc" separated by unique sentinels: no rule's
        // expansion may contain a sentinel.
        let mut input = tokens("abcabc");
        input.push(1_000);
        input.extend(tokens("abcabc"));
        input.push(1_001);
        let g = assert_roundtrip(&input);
        assert_occurrences_valid(&g, &input);
        for (_, r) in g.repeated_rules() {
            assert!(
                r.expansion.iter().all(|&t| t < 1_000),
                "rule crosses sentinel: {:?}",
                r.expansion
            );
        }
        // And "abc" should now occur four times.
        let abc = tokens("abc");
        let rule = g
            .repeated_rules()
            .find(|(_, r)| r.expansion == abc || r.expansion == tokens("abcabc"))
            .expect("no abc-family rule");
        assert!(rule.1.occurrences.len() >= 2);
    }

    #[test]
    fn occurrences_count_matches_uses_for_flat_rules() {
        let input = tokens("xyzxyzxyzxyz");
        let g = assert_roundtrip(&input);
        assert_occurrences_valid(&g, &input);
        for (_, r) in g.repeated_rules() {
            // Occurrence count can exceed `uses` when the rule is nested
            // inside another repeated rule, but never be below 2.
            assert!(r.occurrences.len() >= 2);
        }
    }

    #[test]
    fn pseudo_random_roundtrip_small_alphabet() {
        // Small alphabets maximize rule churn (creation + utility
        // expansion), which is where linked-list bugs hide.
        let mut state = 0x243f6a8885a308d3u64;
        for trial in 0..40 {
            let len = 3 + (trial * 13) % 300;
            let alpha = 2 + trial % 4;
            let input: Vec<Token> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % alpha as u64) as Token
                })
                .collect();
            let g = assert_roundtrip(&input);
            assert_occurrences_valid(&g, &input);
        }
    }

    #[test]
    fn incremental_api_matches_one_shot() {
        let input = tokens("mississippi$mississippi");
        let mut s = Sequitur::new();
        for &t in &input {
            s.push(t);
        }
        assert_eq!(s.len(), input.len());
        let g = s.into_grammar();
        assert_eq!(g.axiom().expansion, input);
        assert_occurrences_valid(&g, &input);
    }

    #[test]
    fn axiom_span_covers_input() {
        let input = tokens("aabbaabb");
        let g = assert_roundtrip(&input);
        assert_eq!(g.axiom().occurrences, vec![Span { start: 0, end: 8 }]);
    }

    #[test]
    fn span_helpers() {
        let s = Span { start: 2, end: 5 };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Span { start: 3, end: 3 }.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The grammar must always reproduce its input and satisfy rule
        /// utility + occurrence correctness, for any token sequence.
        #[test]
        fn roundtrip_any_sequence(input in proptest::collection::vec(0u32..6, 0..400)) {
            let g = infer(&input);
            prop_assert_eq!(&g.axiom().expansion, &input);
            for (_, r) in g.repeated_rules() {
                prop_assert!(r.uses >= 2);
                prop_assert!(r.occurrences.len() >= 2);
                for span in &r.occurrences {
                    prop_assert_eq!(&input[span.start..span.end], r.expansion.as_slice());
                }
            }
        }

        /// Rules never overlap themselves pathologically: every rule's
        /// occurrences are disjoint or properly ordered by start.
        #[test]
        fn occurrences_sorted(input in proptest::collection::vec(0u32..4, 0..200)) {
            let g = infer(&input);
            for (_, r) in g.repeated_rules() {
                for w in r.occurrences.windows(2) {
                    prop_assert!(w[0].start <= w[1].start);
                }
            }
        }
    }
}
