//! # rpm-grammar — Sequitur grammar induction
//!
//! A from-scratch implementation of **Sequitur** (Nevill-Manning & Witten,
//! 1997): online inference of a context-free grammar from a token sequence
//! in linear time and space, maintaining the two classic invariants —
//! *digram uniqueness* (no pair of adjacent symbols occurs more than once
//! in the grammar) and *rule utility* (every rule is referenced at least
//! twice).
//!
//! RPM (§3.2.2) feeds the numerosity-reduced SAX word sequence of a
//! concatenated training class into Sequitur and treats every inferred rule
//! as a candidate motif: a rule exists *because* its expansion occurred
//! repeatedly, so frequency discovery falls out of the induction without a
//! single distance computation. The [`Grammar`] returned here therefore
//! exposes, for every rule, its terminal [`GrammarRule::expansion`] and all
//! its [`GrammarRule::occurrences`] as token spans in the input sequence;
//! the `rpm-core` crate maps those spans back to raw subsequences via the
//! SAX word offsets.
//!
//! Concatenation junctions (§3.2.2, Fig. 4) are handled by the caller
//! inserting per-junction *sentinel* tokens that occur exactly once: a
//! digram containing a unique token can never repeat, hence no rule ever
//! spans a junction. See `rpm-core::candidates`.

pub mod builder;
pub mod repair;
pub mod sequitur;

pub use repair::infer_repair;
pub use sequitur::{infer, Grammar, GrammarRule, RuleId, Sequitur, Span, Sym, Token};
