//! Opt-in `/metrics` + `/healthz` HTTP endpoint, std-only, hardened.
//!
//! A minimal HTTP/1.0-style server: each connection gets its request
//! line read, one response written, and the socket closed. That is all
//! a Prometheus scraper (or `curl`) needs, and it keeps the
//! implementation at a `TcpListener` and a handful of `write_all`
//! calls — no dependencies, no keep-alive state. Responses are rendered
//! from a [`crate::metrics::snapshot`] taken at request time, so
//! scrapes observe but never perturb the run.
//!
//! Serving hardening ([`ServeLimits`]): every connection is handled on
//! its own thread under a concurrency bound (excess connections get an
//! immediate `503` on the accept thread), with read/write socket
//! timeouts so a stalled peer cannot pin a handler, and a request-line
//! size cap (`414` past it) so a hostile client cannot grow a buffer
//! without bound. Rejections count into the `http.rejected` metric, and
//! a handler panic (e.g. an armed `http.conn` fault) is contained per
//! connection — the endpoint itself never goes down.
//!
//! Enabled via [`crate::ObsConfig`] (`http_addr`) or the `RPM_LOG`
//! directive `http=127.0.0.1:9898`; `rpm-cli classify --metrics-addr`
//! wires it up for serving runs. Bind to port 0 to let the OS pick
//! (tests do), and read the actual address back from
//! [`MetricsServer::local_addr`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection resource bounds for the metrics endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeLimits {
    /// Socket read timeout: a peer that connects but never sends a
    /// request is dropped after this long.
    pub read_timeout: Duration,
    /// Socket write timeout: a peer that stops draining the response
    /// is dropped after this long.
    pub write_timeout: Duration,
    /// Connections handled concurrently; arrivals past the bound get
    /// an immediate `503`. `0` rejects everything (used by tests).
    pub max_connections: usize,
    /// Longest request line accepted, in bytes; longer gets `414`.
    pub max_request_bytes: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_connections: 32,
            max_request_bytes: 8 * 1024,
        }
    }
}

/// Handle to a running metrics endpoint. Dropping it shuts the server
/// down (the global endpoint started by [`crate::ObsConfig::install`]
/// is intentionally leaked so it lives for the process).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the OS choice).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept call with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9898`, port 0 for OS-assigned) and
/// serves `/metrics` and `/healthz` on a background thread with the
/// default [`ServeLimits`] until the returned handle is shut down or
/// dropped.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    serve_with(addr, ServeLimits::default())
}

/// [`serve`] with explicit per-connection limits.
pub fn serve_with(addr: &str, limits: ServeLimits) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rpm-obs-http".to_string())
        .spawn(move || accept_loop(listener, &stop_flag, limits))?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the process-global endpoint once; later calls (e.g. a second
/// `ObsConfig::install`) are no-ops. Returns the bound address, or
/// `None` if the bind failed (reported on stderr — observability must
/// not take the pipeline down).
pub fn serve_global(addr: &str) -> Option<SocketAddr> {
    static GLOBAL: OnceLock<Option<SocketAddr>> = OnceLock::new();
    *GLOBAL.get_or_init(|| match serve(addr) {
        Ok(mut server) => {
            let bound = server.local_addr();
            // Detach the thread: the endpoint serves until process exit.
            drop(server.handle.take());
            Some(bound)
        }
        Err(e) => {
            eprintln!("[rpm-obs] failed to bind metrics endpoint {addr}: {e}");
            None
        }
    })
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool, limits: ServeLimits) {
    let in_flight = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(limits.read_timeout));
        let _ = stream.set_write_timeout(Some(limits.write_timeout));
        // Admission control happens on the accept thread: claim a slot
        // before spawning so a flood can never pile up handler threads.
        let claimed = in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < limits.max_connections).then_some(n + 1)
            })
            .is_ok();
        if !claimed {
            crate::metrics().http_rejected.inc();
            let _ = respond(
                &mut stream,
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "busy\n",
            );
            close_gracefully(&stream);
            continue;
        }
        let slots = Arc::clone(&in_flight);
        let spawned = std::thread::Builder::new()
            .name("rpm-obs-http-conn".to_string())
            .spawn(move || {
                // One bad connection (I/O error or an injected panic)
                // must not kill the endpoint.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _ = handle_connection(stream, &limits);
                }));
                slots.fetch_sub(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn handle_connection(stream: TcpStream, limits: &ServeLimits) -> std::io::Result<()> {
    if let Err(e) = crate::fault::point("http.conn") {
        crate::metrics().http_rejected.inc();
        return Err(e);
    }
    // Cap how much of the request line we are willing to buffer; a
    // request line that fills the cap without a newline is oversized.
    let mut reader = BufReader::new((&stream).take(limits.max_request_bytes as u64));
    let mut request_line = String::new();
    let n = match reader.read_line(&mut request_line) {
        Ok(n) => n,
        Err(e) => {
            // Read timeout or broken peer: drop the connection.
            crate::metrics().http_rejected.inc();
            return Err(e);
        }
    };
    let mut writer = &stream;
    let result = if n >= limits.max_request_bytes && !request_line.ends_with('\n') {
        crate::metrics().http_rejected.inc();
        respond(
            &mut writer,
            "414 URI Too Long",
            "text/plain; charset=utf-8",
            "request line too long\n",
        )
    } else {
        let path = request_line.split_whitespace().nth(1).unwrap_or("");
        match path {
            "/metrics" => {
                let body = crate::export::to_prometheus(&crate::metrics::snapshot());
                respond(
                    &mut writer,
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                )
            }
            "/healthz" => respond(&mut writer, "200 OK", "text/plain; charset=utf-8", "ok\n"),
            _ => respond(
                &mut writer,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n",
            ),
        }
    };
    close_gracefully(&stream);
    result
}

/// Orderly close: signal EOF to the peer, then drain (bounded) whatever
/// request bytes it already sent. Closing with unread data in the
/// receive buffer sends an RST that can race ahead of the response;
/// draining first turns the close into a clean FIN. The drain is capped
/// in bytes and by the socket read timeout, so a hostile peer cannot
/// pin the handler.
fn close_gracefully(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = std::io::copy(&mut stream.take(64 * 1024), &mut std::io::sink());
}

fn respond<W: Write>(
    stream: &mut W,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // Idempotent.
        server.shutdown();
        // The port is released; rebinding succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }

    #[test]
    fn oversized_request_lines_get_414() {
        let limits = ServeLimits {
            max_request_bytes: 64,
            ..ServeLimits::default()
        };
        let server = serve_with("127.0.0.1:0", limits).expect("bind");
        let long_path = "/".repeat(200);
        let response = get(server.local_addr(), &long_path);
        assert!(response.starts_with("HTTP/1.0 414"), "{response}");
        // The endpoint still serves normal requests afterwards.
        let health = get(server.local_addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    }

    #[test]
    fn connection_bound_rejects_with_503() {
        let limits = ServeLimits {
            max_connections: 0,
            ..ServeLimits::default()
        };
        let server = serve_with("127.0.0.1:0", limits).expect("bind");
        let response = get(server.local_addr(), "/healthz");
        assert!(response.starts_with("HTTP/1.0 503"), "{response}");
    }

    #[test]
    fn silent_peers_time_out_without_pinning_the_endpoint() {
        let limits = ServeLimits {
            read_timeout: Duration::from_millis(100),
            max_connections: 1,
            ..ServeLimits::default()
        };
        let server = serve_with("127.0.0.1:0", limits).expect("bind");
        let addr = server.local_addr();
        // A peer that connects and never writes holds the only slot…
        let stuck = TcpStream::connect(addr).expect("connect");
        // …until the read timeout reaps it and the slot frees up.
        std::thread::sleep(Duration::from_millis(300));
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        drop(stuck);
    }

    #[test]
    fn injected_connection_faults_do_not_kill_the_endpoint() {
        let _g = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        crate::fault::install(crate::fault::parse("http.conn:panic:1:0").unwrap());
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = write!(stream, "GET /healthz HTTP/1.0\r\n\r\n");
        let mut sink = String::new();
        // The handler dies before responding; the read observes EOF.
        let _ = stream.read_to_string(&mut sink);
        crate::fault::clear();

        // The accept loop survived the handler panic.
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    }
}
