//! Opt-in `/metrics` + `/healthz` HTTP endpoint, std-only.
//!
//! A minimal single-threaded HTTP/1.0-style server on a background
//! thread: each connection gets its request line read, one response
//! written, and the socket closed. That is all a Prometheus scraper (or
//! `curl`) needs, and it keeps the implementation at a `TcpListener`
//! and a handful of `write_all` calls — no dependencies, no keep-alive
//! state, no thread pool to manage. Responses are rendered from a
//! [`crate::metrics::snapshot`] taken at request time, so scrapes
//! observe but never perturb the run.
//!
//! Enabled via [`crate::ObsConfig`] (`http_addr`) or the `RPM_LOG`
//! directive `http=127.0.0.1:9898`; `rpm-cli classify --metrics-addr`
//! wires it up for serving runs. Bind to port 0 to let the OS pick
//! (tests do), and read the actual address back from
//! [`MetricsServer::local_addr`].

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Handle to a running metrics endpoint. Dropping it shuts the server
/// down (the global endpoint started by [`crate::ObsConfig::install`]
/// is intentionally leaked so it lives for the process).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the OS choice).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept call with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9898`, port 0 for OS-assigned) and
/// serves `/metrics` and `/healthz` on a background thread until the
/// returned handle is shut down or dropped.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rpm-obs-http".to_string())
        .spawn(move || accept_loop(listener, &stop_flag))?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the process-global endpoint once; later calls (e.g. a second
/// `ObsConfig::install`) are no-ops. Returns the bound address, or
/// `None` if the bind failed (reported on stderr — observability must
/// not take the pipeline down).
pub fn serve_global(addr: &str) -> Option<SocketAddr> {
    static GLOBAL: OnceLock<Option<SocketAddr>> = OnceLock::new();
    *GLOBAL.get_or_init(|| match serve(addr) {
        Ok(mut server) => {
            let bound = server.local_addr();
            // Detach the thread: the endpoint serves until process exit.
            drop(server.handle.take());
            Some(bound)
        }
        Err(e) => {
            eprintln!("[rpm-obs] failed to bind metrics endpoint {addr}: {e}");
            None
        }
    })
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Ok(stream) = conn {
            // One bad connection must not kill the endpoint.
            let _ = handle_connection(stream);
        }
    }
}

fn handle_connection(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("");

    let mut stream = reader.into_inner();
    match path {
        "/metrics" => {
            let body = crate::export::to_prometheus(&crate::metrics::snapshot());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // Idempotent.
        server.shutdown();
        // The port is released; rebinding succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }
}
