//! Std-only HTTP serving: a reusable method+path router on one hardened
//! connection loop, plus the opt-in `/metrics` + `/healthz` endpoint.
//!
//! A minimal HTTP/1.0-style server: each connection gets its request
//! line and headers read, at most one (bounded) body, one response
//! written, and the socket closed. That is all a Prometheus scraper,
//! `curl`, or a JSONL classify client needs, and it keeps the
//! implementation at a `TcpListener` and a handful of `write_all`
//! calls — no dependencies, no keep-alive state.
//!
//! The connection loop is shared through [`Router`]: consumers register
//! `(method, path) → handler` routes and serve them with
//! [`serve_router`]. The metrics endpoint ([`serve`]) is just the
//! [`metrics_routes`] router on that loop, and `rpm-serve` mounts its
//! `/classify` handler on the same loop instead of growing a second
//! hand-rolled HTTP stack.
//!
//! Serving hardening ([`ServeLimits`]): every connection is handled on
//! its own thread under a concurrency bound (excess connections get an
//! immediate `503` on the accept thread), with read/write socket
//! timeouts so a stalled peer cannot pin a handler, a request-line /
//! header size cap (`414` past it), and a body size cap (`413` past
//! it) so a hostile client cannot grow a buffer without bound.
//! Rejections count into the `http.rejected` metric, and a handler
//! panic (e.g. an armed `http.conn` fault) is contained per
//! connection — the endpoint itself never goes down.
//!
//! Enabled via [`crate::ObsConfig`] (`http_addr`) or the `RPM_LOG`
//! directive `http=127.0.0.1:9898`; `rpm-cli classify --metrics-addr`
//! wires it up for serving runs. Bind to port 0 to let the OS pick
//! (tests do), and read the actual address back from
//! [`MetricsServer::local_addr`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection resource bounds for a served endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeLimits {
    /// Socket read timeout: a peer that connects but never sends a
    /// request is dropped after this long.
    pub read_timeout: Duration,
    /// Socket write timeout: a peer that stops draining the response
    /// is dropped after this long.
    pub write_timeout: Duration,
    /// Connections handled concurrently; arrivals past the bound get
    /// an immediate `503`. `0` rejects everything (used by tests).
    pub max_connections: usize,
    /// Longest request line (and longest single header line) accepted,
    /// in bytes; longer gets `414`.
    pub max_request_bytes: usize,
    /// Largest request body accepted, in bytes; larger gets `413`.
    pub max_body_bytes: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_connections: 32,
            max_request_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request as seen by a [`Router`] handler.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path with the query string split off (routes match on
    /// this exactly).
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Header lines as `(lowercased name, trimmed value)`, in order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given name (matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First `key=value` pair in the query string with the given key.
    /// Values are returned verbatim (no percent-decoding — the routes
    /// this stack serves only take numbers and identifiers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// A response a handler hands back to the connection loop.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code (`200`, `429`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers, e.g. `("Retry-After", "1")`.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// A `200 OK` plain-text response.
    pub fn ok(body: impl Into<String>) -> Self {
        Self::text(200, body)
    }

    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json; charset=utf-8",
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Overrides the content type (builder style).
    pub fn with_content_type(mut self, content_type: &'static str) -> Self {
        self.content_type = content_type;
        self
    }

    /// Appends a header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// The standard reason phrase for the status codes this stack emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// A method + path → handler table sharing one hardened connection
/// loop. Paths match exactly (no patterns); an unknown path is `404`,
/// a known path with the wrong method `405`.
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, &'static str, Handler)>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` for `method` + `path` (builder style).
    pub fn route(
        mut self,
        method: &'static str,
        path: &'static str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push((method, path, Box::new(handler)));
        self
    }

    /// Resolves one request to a response.
    pub fn dispatch(&self, request: &Request) -> Response {
        let mut path_seen = false;
        for (method, path, handler) in &self.routes {
            if *path != request.path {
                continue;
            }
            path_seen = true;
            if *method == request.method {
                return handler(request);
            }
        }
        if path_seen {
            Response::text(405, "method not allowed\n")
        } else {
            Response::text(404, "not found\n")
        }
    }
}

/// The observability routes: Prometheus text on `GET /metrics`,
/// liveness on `GET /healthz`. Both render from a
/// [`crate::metrics::snapshot`] taken at request time, so scrapes
/// observe but never perturb the run. Start from this router to mount
/// additional routes on the same endpoint.
pub fn metrics_routes() -> Router {
    Router::new()
        .route("GET", "/metrics", |_req| {
            let mut body = crate::export::to_prometheus(&crate::metrics::snapshot());
            body.push_str(&crate::export::drift_to_prometheus(
                &crate::drift::current_report(),
            ));
            Response::ok(body).with_content_type("text/plain; version=0.0.4; charset=utf-8")
        })
        .route("GET", "/healthz", |_req| Response::json(200, health_json()))
        .route("GET", "/debug/drift", |_req| {
            Response::json(200, crate::drift::current_report().to_json())
        })
        .route("GET", "/debug/traces", |req| {
            let min_ns = req
                .query_param("min_ms")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                .saturating_mul(1_000_000);
            let outcome = req.query_param("outcome");
            let mut body = String::new();
            for record in crate::trace::recorder().snapshot() {
                if record.dur_ns < min_ns {
                    continue;
                }
                if outcome.is_some_and(|o| o != record.outcome.as_str()) {
                    continue;
                }
                body.push_str(&record.to_jsonl_line());
                body.push('\n');
            }
            Response::ok(body).with_content_type("application/jsonl; charset=utf-8")
        })
}

/// The `/healthz` body: liveness plus a summary of what this process is
/// serving. `status` is `degraded` when the attached drift monitor's
/// verdict reached the page threshold — the endpoint still answers
/// `200` (liveness is about the process, not the traffic), so
/// orchestrators keep the replica while dashboards and the CLI see the
/// degradation. `model` is the served model's fingerprint when a server
/// published one, `drift` the current verdict
/// (`unavailable`/`warming`/`ok`/`warn`/`page`). The lifecycle fields
/// read from the metrics registry: `generation` is the model generation
/// currently serving (0 when no lifecycle-managed server runs),
/// `reloads`/`rollbacks`/`worker_restarts` count swaps and supervisor
/// respawns, `queue_depth` is the series queued for batching right now.
pub fn health_json() -> String {
    let drift = crate::drift::current_report();
    let status = if drift.degraded() { "degraded" } else { "ok" };
    let uptime_secs = crate::now_ns() / 1_000_000_000;
    let model = match crate::drift::model_fingerprint() {
        Some(fp) => format!("\"{fp}\""),
        None => "null".to_string(),
    };
    let m = crate::metrics();
    format!(
        "{{\"status\":\"{status}\",\"model\":{model},\"generation\":{},\"reloads\":{},\
         \"rollbacks\":{},\"worker_restarts\":{},\"queue_depth\":{},\"uptime_secs\":{uptime_secs},\
         \"drift\":\"{}\"}}",
        m.serve_generation.get(),
        m.serve_reloads.get(),
        m.serve_rollbacks.get(),
        m.serve_worker_restarts.get(),
        m.serve_queue_depth.get(),
        drift.status
    )
}

/// Handle to a running endpoint. Dropping it shuts the server down
/// (the global endpoint started by [`crate::ObsConfig::install`] is
/// intentionally leaked so it lives for the process).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the OS choice).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept call with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9898`, port 0 for OS-assigned) and
/// serves `/metrics` and `/healthz` on a background thread with the
/// default [`ServeLimits`] until the returned handle is shut down or
/// dropped.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    serve_with(addr, ServeLimits::default())
}

/// [`serve`] with explicit per-connection limits.
pub fn serve_with(addr: &str, limits: ServeLimits) -> std::io::Result<MetricsServer> {
    serve_router(addr, limits, metrics_routes())
}

/// Serves an arbitrary [`Router`] on the shared connection loop. This
/// is the entry point `rpm-serve` mounts `/classify` through.
pub fn serve_router(
    addr: &str,
    limits: ServeLimits,
    router: Router,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let router = Arc::new(router);
    let handle = std::thread::Builder::new()
        .name("rpm-obs-http".to_string())
        .spawn(move || accept_loop(listener, &stop_flag, limits, &router))?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the process-global endpoint once; later calls (e.g. a second
/// `ObsConfig::install`) are no-ops. Returns the bound address, or
/// `None` if the bind failed (reported on stderr — observability must
/// not take the pipeline down).
pub fn serve_global(addr: &str) -> Option<SocketAddr> {
    static GLOBAL: OnceLock<Option<SocketAddr>> = OnceLock::new();
    *GLOBAL.get_or_init(|| match serve(addr) {
        Ok(mut server) => {
            let bound = server.local_addr();
            // Detach the thread: the endpoint serves until process exit.
            drop(server.handle.take());
            Some(bound)
        }
        Err(e) => {
            eprintln!("[rpm-obs] failed to bind metrics endpoint {addr}: {e}");
            None
        }
    })
}

fn accept_loop(
    listener: TcpListener,
    stop: &AtomicBool,
    limits: ServeLimits,
    router: &Arc<Router>,
) {
    let in_flight = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(limits.read_timeout));
        let _ = stream.set_write_timeout(Some(limits.write_timeout));
        // Responses are small and written once; Nagle + delayed ACK
        // would park them for ~40 ms on the wire.
        let _ = stream.set_nodelay(true);
        // Admission control happens on the accept thread: claim a slot
        // before spawning so a flood can never pile up handler threads.
        let claimed = in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < limits.max_connections).then_some(n + 1)
            })
            .is_ok();
        if !claimed {
            crate::metrics().http_rejected.inc();
            let _ = write_response(&mut &stream, &Response::text(503, "busy\n"));
            close_gracefully(&stream);
            continue;
        }
        let slots = Arc::clone(&in_flight);
        let conn_router = Arc::clone(router);
        let spawned = std::thread::Builder::new()
            .name("rpm-obs-http-conn".to_string())
            .spawn(move || {
                // One bad connection (I/O error or an injected panic)
                // must not kill the endpoint.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _ = handle_connection(stream, &limits, &conn_router);
                }));
                slots.fetch_sub(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Reads one request (bounded), dispatches it, writes one response.
fn handle_connection(
    stream: TcpStream,
    limits: &ServeLimits,
    router: &Router,
) -> std::io::Result<()> {
    if let Err(e) = crate::fault::point("http.conn") {
        crate::metrics().http_rejected.inc();
        return Err(e);
    }
    // Cap how much of the request line + headers we are willing to
    // buffer; a line that fills the cap without a newline is oversized.
    // The cap is re-armed per line, so the header block as a whole is
    // bounded by MAX_HEADER_LINES × max_request_bytes.
    let mut reader = BufReader::new((&stream).take(limits.max_request_bytes as u64));
    let mut request_line = String::new();
    let n = match reader.read_line(&mut request_line) {
        Ok(n) => n,
        Err(e) => {
            // Read timeout or broken peer: drop the connection.
            crate::metrics().http_rejected.inc();
            return Err(e);
        }
    };
    let mut writer = &stream;
    if n >= limits.max_request_bytes && !request_line.ends_with('\n') {
        crate::metrics().http_rejected.inc();
        let result = write_response(&mut writer, &Response::text(414, "request line too long\n"));
        close_gracefully(&stream);
        return result;
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    // Routes match on the bare path; the query string travels
    // separately so handlers can read `?key=value` filters.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Headers: Content-Length drives the body read; the rest are kept
    // for handlers (e.g. `traceparent` on `/classify`). The loop bound
    // also bounds the retained header memory.
    const MAX_HEADER_LINES: usize = 64;
    let mut content_length: usize = 0;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut oversized_header = false;
    for _ in 0..MAX_HEADER_LINES {
        reader.get_mut().set_limit(limits.max_request_bytes as u64);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: header block ended with the stream.
            Ok(n) if n >= limits.max_request_bytes && !line.ends_with('\n') => {
                oversized_header = true;
                break;
            }
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim_end();
        if line.is_empty() {
            break; // end of headers
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }

    let response = if oversized_header {
        crate::metrics().http_rejected.inc();
        Response::text(414, "header line too long\n")
    } else if content_length > limits.max_body_bytes {
        crate::metrics().http_rejected.inc();
        Response::text(413, "request body too large\n")
    } else {
        // Part of the body may already sit in the BufReader's buffer;
        // the rest streams through the (re-armed) Take.
        let mut body = vec![0u8; content_length];
        reader.get_mut().set_limit(content_length as u64);
        if reader.read_exact(&mut body).is_err() {
            crate::metrics().http_rejected.inc();
            Response::text(408, "request body incomplete\n")
        } else {
            router.dispatch(&Request {
                method,
                path,
                query,
                headers,
                body,
            })
        }
    };
    let result = write_response(&mut writer, &response);
    close_gracefully(&stream);
    result
}

/// Orderly close: signal EOF to the peer, then drain (bounded) whatever
/// request bytes it already sent. Closing with unread data in the
/// receive buffer sends an RST that can race ahead of the response;
/// draining first turns the close into a clean FIN. The drain is capped
/// in bytes and by the socket read timeout, so a hostile peer cannot
/// pin the handler.
fn close_gracefully(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = std::io::copy(&mut stream.take(64 * 1024), &mut std::io::sink());
}

fn write_response<W: Write>(stream: &mut W, response: &Response) -> std::io::Result<()> {
    let mut header = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        header.push_str(name);
        header.push_str(": ");
        header.push_str(value);
        header.push_str("\r\n");
    }
    header.push_str("\r\n");
    stream.write_all(header.as_bytes())?;
    stream.write_all(&response.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        let _g = crate::test_lock();
        crate::drift::clear_monitor();
        crate::drift::set_model_fingerprint(None);
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.contains("application/json"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"model\":null"), "{health}");
        assert!(health.contains("\"uptime_secs\":"), "{health}");
        assert!(health.contains("\"drift\":\"unavailable\""), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    #[test]
    fn drift_endpoints_follow_the_attached_monitor() {
        let _g = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        // No monitor: drift is unavailable, health stays ok.
        crate::drift::clear_monitor();
        let body = get(addr, "/debug/drift");
        assert!(body.contains("\"status\":\"unavailable\""), "{body}");

        // A paging monitor degrades /healthz (still 200) and scores on
        // /debug/drift and /metrics.
        let mut profile = crate::drift::ReferenceProfile::new();
        for _ in 0..100 {
            profile.observe(&crate::drift::DriftSample {
                class: 0,
                best_distance: 0.5,
                margin: 0.2,
                len: 96,
                mean: 0.0,
                stddev: 1.0,
                z_extreme: 2.0,
            });
        }
        let monitor = std::sync::Arc::new(crate::drift::DriftMonitor::new(
            &profile,
            crate::drift::DriftConfig {
                min_samples: 1,
                ..crate::drift::DriftConfig::default()
            },
        ));
        for _ in 0..10 {
            monitor.observe(&crate::drift::DriftSample {
                class: 0,
                best_distance: 80.0,
                margin: 40.0,
                len: 96,
                mean: 0.0,
                stddev: 1.0,
                z_extreme: 2.0,
            });
        }
        crate::drift::install_monitor(monitor);
        crate::drift::set_model_fingerprint(Some("cafebabe".into()));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        assert!(health.contains("\"model\":\"cafebabe\""), "{health}");
        assert!(health.contains("\"drift\":\"page\""), "{health}");

        let drift = get(addr, "/debug/drift");
        assert!(drift.contains("\"status\":\"page\""), "{drift}");
        assert!(drift.contains("\"metric\":\"match_distance\""), "{drift}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("rpm_drift_psi"), "{metrics}");
        assert!(metrics.contains("rpm_drift_status 4"), "{metrics}");

        crate::drift::clear_monitor();
        crate::drift::set_model_fingerprint(None);
    }

    #[test]
    fn custom_routes_receive_bodies_and_reject_wrong_methods() {
        let router = metrics_routes().route("POST", "/echo", |req| {
            Response::ok(format!("got {} bytes\n", req.body.len()))
                .with_header("X-Probe", "1".to_string())
        });
        let server = serve_router("127.0.0.1:0", ServeLimits::default(), router).expect("bind");
        let addr = server.local_addr();

        let echoed = post(addr, "/echo", "hello body");
        assert!(echoed.starts_with("HTTP/1.0 200"), "{echoed}");
        assert!(echoed.contains("X-Probe: 1"), "{echoed}");
        assert!(echoed.ends_with("got 10 bytes\n"), "{echoed}");

        // Known path, wrong method.
        let wrong = get(addr, "/echo");
        assert!(wrong.starts_with("HTTP/1.0 405"), "{wrong}");

        // The stock metrics routes still serve on the same loop.
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    }

    #[test]
    fn queries_and_headers_reach_handlers() {
        let router = Router::new().route("GET", "/probe", |req| {
            Response::ok(format!(
                "q={} tp={}\n",
                req.query_param("min_ms").unwrap_or("-"),
                req.header("Traceparent").unwrap_or("-"),
            ))
        });
        let server = serve_router("127.0.0.1:0", ServeLimits::default(), router).expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET /probe?min_ms=25&outcome=ok HTTP/1.0\r\nTraceParent: 00-aa-bb-01\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        // The query split off the path (the route still matched), the
        // param parsed, and the header arrived case-insensitively.
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert!(response.ends_with("q=25 tp=00-aa-bb-01\n"), "{response}");

        // No query at all still matches.
        let bare = get(addr, "/probe");
        assert!(bare.ends_with("q=- tp=-\n"), "{bare}");
    }

    #[test]
    fn debug_traces_route_serves_retained_traces() {
        // `report::finish` clears the global recorder; serialize with
        // the tests that call it.
        let _g = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        // An error trace is always retained by the global recorder.
        let ctx = crate::trace::TraceCtx::begin(None);
        let id = ctx.trace_id().to_hex();
        crate::trace::recorder().record(ctx.finish(crate::trace::TraceOutcome::Error, 500));

        let all = get(addr, "/debug/traces");
        assert!(all.starts_with("HTTP/1.0 200"), "{all}");
        assert!(all.contains(&id), "{all}");

        let errors = get(addr, "/debug/traces?outcome=error");
        assert!(errors.contains(&id), "{errors}");
        let oks = get(addr, "/debug/traces?outcome=ok");
        assert!(!oks.contains(&id), "{oks}");
        // A fast trace is filtered out by min_ms.
        let slow_only = get(addr, "/debug/traces?min_ms=60000");
        assert!(!slow_only.contains(&id), "{slow_only}");
    }

    #[test]
    fn oversized_bodies_get_413() {
        let limits = ServeLimits {
            max_body_bytes: 16,
            ..ServeLimits::default()
        };
        let router = Router::new().route("POST", "/echo", |req| {
            Response::ok(format!("{}\n", req.body.len()))
        });
        let server = serve_router("127.0.0.1:0", limits, router).expect("bind");
        let big = "x".repeat(64);
        let response = post(server.local_addr(), "/echo", &big);
        assert!(response.starts_with("HTTP/1.0 413"), "{response}");
        // Within the cap still works.
        let ok = post(server.local_addr(), "/echo", "small");
        assert!(ok.ends_with("5\n"), "{ok}");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // Idempotent.
        server.shutdown();
        // The port is released; rebinding succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }

    #[test]
    fn oversized_request_lines_get_414() {
        let limits = ServeLimits {
            max_request_bytes: 64,
            ..ServeLimits::default()
        };
        let server = serve_with("127.0.0.1:0", limits).expect("bind");
        let long_path = "/".repeat(200);
        let response = get(server.local_addr(), &long_path);
        assert!(response.starts_with("HTTP/1.0 414"), "{response}");
        // The endpoint still serves normal requests afterwards.
        let health = get(server.local_addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    }

    #[test]
    fn connection_bound_rejects_with_503() {
        let limits = ServeLimits {
            max_connections: 0,
            ..ServeLimits::default()
        };
        let server = serve_with("127.0.0.1:0", limits).expect("bind");
        let response = get(server.local_addr(), "/healthz");
        assert!(response.starts_with("HTTP/1.0 503"), "{response}");
    }

    #[test]
    fn silent_peers_time_out_without_pinning_the_endpoint() {
        let limits = ServeLimits {
            read_timeout: Duration::from_millis(100),
            max_connections: 1,
            ..ServeLimits::default()
        };
        let server = serve_with("127.0.0.1:0", limits).expect("bind");
        let addr = server.local_addr();
        // A peer that connects and never writes holds the only slot…
        let stuck = TcpStream::connect(addr).expect("connect");
        // …until the read timeout reaps it and the slot frees up.
        std::thread::sleep(Duration::from_millis(300));
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        drop(stuck);
    }

    #[test]
    fn injected_connection_faults_do_not_kill_the_endpoint() {
        let _g = crate::test_lock();
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        crate::fault::install(crate::fault::parse("http.conn:panic:1:0").unwrap());
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = write!(stream, "GET /healthz HTTP/1.0\r\n\r\n");
        let mut sink = String::new();
        // The handler dies before responding; the read observes EOF.
        let _ = stream.read_to_string(&mut sink);
        crate::fault::clear();

        // The accept loop survived the handler panic.
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    }
}
