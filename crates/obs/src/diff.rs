//! Report analytics: load a saved JSONL run report back into a summary
//! and diff two reports for CI perf gating (`rpm-cli obs summary` /
//! `rpm-cli obs diff`).
//!
//! A diff compares three signal classes with different strictness:
//!
//! * **counters** (jobs, candidates, survivors, …) are deterministic —
//!   any drift beyond the tolerance, or a counter missing from either
//!   side, is a regression;
//! * **cache totals** compare *lookups* only: the hit/miss split
//!   legitimately varies with thread scheduling, the lookup total does
//!   not;
//! * **wall/stage times** are noisy on shared runners, so they only
//!   count as regressions when `DiffOptions::time_gate` is set (the CI
//!   default leaves them informational).

use crate::report::{bucket_pairs, str_field, u64_field};
use std::fmt::Write as _;

/// One stage aggregate loaded from a report.
#[derive(Clone, Debug, PartialEq)]
pub struct StageSummary {
    /// Full `/`-joined stage path.
    pub path: String,
    /// Merged span count.
    pub calls: u64,
    /// Summed duration.
    pub total_ns: u64,
}

/// One histogram loaded from a report.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Registry name (e.g. `predict.latency_ns`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum_ns: u64,
    /// Median estimate (0 for v1 reports without quantiles).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// A JSONL run report parsed back into comparable form.
#[derive(Clone, Debug, Default)]
pub struct ReportSummary {
    /// Total wall time of the run.
    pub wall_ns: u64,
    /// Recording level the run used.
    pub level: String,
    /// Stage aggregates in file order (tree order).
    pub stages: Vec<StageSummary>,
    /// Counters (static + gauges + labeled) as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Cache families as `(family, lookups)`.
    pub caches: Vec<(String, u64)>,
    /// Histograms with their quantile estimates.
    pub histograms: Vec<HistogramSummary>,
}

impl ReportSummary {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Renders the summary as a human-readable table (the `obs summary`
    /// output): stage tree with times, then histograms with quantiles,
    /// then non-zero counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report — wall {}, level {}",
            fmt_ns(self.wall_ns),
            self.level
        );
        if !self.stages.is_empty() {
            let name_width = self
                .stages
                .iter()
                .map(|s| s.path.len())
                .max()
                .unwrap_or(0)
                .max(12);
            let _ = writeln!(out, "stages:");
            for s in &self.stages {
                let pct = if self.wall_ns > 0 {
                    100.0 * s.total_ns as f64 / self.wall_ns as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:name_width$}  {:>9}  {:5.1}%  {:>6}×",
                    s.path,
                    fmt_ns(s.total_ns),
                    pct,
                    s.calls
                );
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {}: {} obs, p50 {:.0}, p90 {:.0}, p99 {:.0}",
                    h.name, h.count, h.p50, h.p90, h.p99
                );
            }
        }
        let nonzero: Vec<&(String, u64)> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !nonzero.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in nonzero {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        for (family, lookups) in &self.caches {
            if *lookups > 0 {
                let _ = writeln!(out, "cache {family}: {lookups} lookups");
            }
        }
        out
    }
}

/// Parses a JSONL run report from `path` into a [`ReportSummary`].
/// Tolerates v1 reports (no quantile fields — they load as 0).
pub fn load_summary(path: &str) -> Result<ReportSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut summary = ReportSummary::default();
    let mut saw_meta = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ty =
            str_field(line, "type").ok_or_else(|| format!("{path}:{lineno}: line without type"))?;
        match ty.as_str() {
            "meta" => {
                summary.wall_ns = u64_field(line, "wall_ns")
                    .ok_or_else(|| format!("{path}:{lineno}: meta without wall_ns"))?;
                summary.level = str_field(line, "level").unwrap_or_default();
                saw_meta = true;
            }
            "stage" => summary.stages.push(StageSummary {
                path: str_field(line, "path")
                    .ok_or_else(|| format!("{path}:{lineno}: stage without path"))?,
                calls: u64_field(line, "calls").unwrap_or(0),
                total_ns: u64_field(line, "total_ns").unwrap_or(0),
            }),
            "counter" => summary.counters.push((
                str_field(line, "name")
                    .ok_or_else(|| format!("{path}:{lineno}: counter without name"))?,
                u64_field(line, "value").unwrap_or(0),
            )),
            "cache" => summary.caches.push((
                str_field(line, "family")
                    .ok_or_else(|| format!("{path}:{lineno}: cache without family"))?,
                u64_field(line, "lookups").unwrap_or(0),
            )),
            "histogram" => {
                let name = str_field(line, "name")
                    .ok_or_else(|| format!("{path}:{lineno}: histogram without name"))?;
                let count = u64_field(line, "count").unwrap_or(0);
                // Sanity: the validator's core invariant also holds here.
                if let Some(buckets) = bucket_pairs(line) {
                    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
                    if total != count {
                        return Err(format!(
                            "{path}:{lineno}: histogram bucket counts do not sum to count"
                        ));
                    }
                }
                summary.histograms.push(HistogramSummary {
                    name,
                    count,
                    sum_ns: u64_field(line, "sum_ns").unwrap_or(0),
                    p50: f64_field(line, "p50").unwrap_or(0.0),
                    p90: f64_field(line, "p90").unwrap_or(0.0),
                    p99: f64_field(line, "p99").unwrap_or(0.0),
                });
            }
            // span/log lines carry no aggregate information.
            _ => {}
        }
    }
    if !saw_meta {
        return Err(format!("{path}: no meta line — not a run report?"));
    }
    Ok(summary)
}

/// Extracts a float field (quantiles serialize as `"p50":123.4`).
fn f64_field(line: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\":");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Knobs for [`diff_reports`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Allowed relative drift for counters (0.2 = ±20%). Exact matching
    /// is `0.0`.
    pub tolerance: f64,
    /// Whether slower wall/stage times count as regressions (off by
    /// default — shared CI runners are too noisy to gate on time).
    pub time_gate: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.0,
            time_gate: false,
        }
    }
}

/// One comparison line in a diff.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// What was compared (`counter engine.jobs`, `stage train`, …).
    pub what: String,
    /// Baseline value (None = absent from the baseline).
    pub before: Option<u64>,
    /// Current value (None = absent from the current report).
    pub after: Option<u64>,
    /// Whether this line fails the gate.
    pub regression: bool,
}

/// Result of comparing two reports.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All comparison lines, regressions first.
    pub lines: Vec<DiffLine>,
    /// Number of gating failures.
    pub regressions: usize,
}

impl DiffReport {
    /// Renders the diff as a table; regressions are marked `!!`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.lines.is_empty() {
            let _ = writeln!(out, "reports are identical under the gate");
            return out;
        }
        let what_width = self
            .lines
            .iter()
            .map(|l| l.what.len())
            .max()
            .unwrap_or(0)
            .max(8);
        for l in &self.lines {
            let mark = if l.regression { "!!" } else { "  " };
            let before = l.before.map_or("-".to_string(), |v| v.to_string());
            let after = l.after.map_or("-".to_string(), |v| v.to_string());
            let delta = match (l.before, l.after) {
                (Some(b), Some(a)) if b > 0 => {
                    format!("{:+.1}%", 100.0 * (a as f64 - b as f64) / b as f64)
                }
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "{mark} {:what_width$}  {:>12} -> {:>12}  {delta}",
                l.what, before, after
            );
        }
        let _ = writeln!(
            out,
            "{} comparisons, {} regression(s)",
            self.lines.len(),
            self.regressions
        );
        out
    }
}

/// Compares `current` against `baseline`. Counters (including cache
/// lookup totals) regress when they drift beyond `opts.tolerance` or
/// disappear; times regress only under `opts.time_gate`. New counters
/// (present only in `current`) are reported but never gate — adding
/// instrumentation must not fail CI.
pub fn diff_reports(
    baseline: &ReportSummary,
    current: &ReportSummary,
    opts: &DiffOptions,
) -> DiffReport {
    let mut lines = Vec::new();

    let drifts = |b: u64, a: u64| -> bool {
        if b == a {
            return false;
        }
        if b == 0 {
            return true;
        }
        let rel = (a as f64 - b as f64).abs() / b as f64;
        rel > opts.tolerance
    };

    for (name, b) in &baseline.counters {
        let a = current.counter(name);
        let regression = match a {
            Some(a) => drifts(*b, a),
            None => true,
        };
        lines.push(DiffLine {
            what: format!("counter {name}"),
            before: Some(*b),
            after: a,
            regression,
        });
    }
    for (name, a) in &current.counters {
        if baseline.counter(name).is_none() {
            lines.push(DiffLine {
                what: format!("counter {name} (new)"),
                before: None,
                after: Some(*a),
                regression: false,
            });
        }
    }

    for (family, b) in &baseline.caches {
        let a = current
            .caches
            .iter()
            .find(|(f, _)| f == family)
            .map(|(_, v)| *v);
        let regression = match a {
            Some(a) => drifts(*b, a),
            None => *b > 0,
        };
        lines.push(DiffLine {
            what: format!("cache {family} lookups"),
            before: Some(*b),
            after: a,
            regression,
        });
    }

    // Times: gate only when asked, and only on slowdowns.
    let slower = |b: u64, a: u64| -> bool {
        opts.time_gate && a > b && (b == 0 || (a - b) as f64 / b as f64 > opts.tolerance)
    };
    lines.push(DiffLine {
        what: "wall_ns".to_string(),
        before: Some(baseline.wall_ns),
        after: Some(current.wall_ns),
        regression: slower(baseline.wall_ns, current.wall_ns),
    });
    for s in &baseline.stages {
        let a = current
            .stages
            .iter()
            .find(|c| c.path == s.path)
            .map(|c| c.total_ns);
        lines.push(DiffLine {
            what: format!("stage {} total_ns", s.path),
            before: Some(s.total_ns),
            after: a,
            regression: match a {
                Some(a) => slower(s.total_ns, a),
                // A stage vanishing entirely is structural, not noise.
                None => true,
            },
        });
    }

    lines.sort_by_key(|l| !l.regression);
    let regressions = lines.iter().filter(|l| l.regression).count();
    DiffReport { lines, regressions }
}

fn fmt_ns(ns: u64) -> String {
    crate::report::fmt_ns(ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(counters: &[(&str, u64)], wall: u64) -> ReportSummary {
        ReportSummary {
            wall_ns: wall,
            level: "spans".to_string(),
            stages: vec![StageSummary {
                path: "train".to_string(),
                calls: 1,
                total_ns: wall / 2,
            }],
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            caches: vec![("words".to_string(), 100)],
            histograms: Vec::new(),
        }
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let s = summary(&[("engine.jobs", 10), ("mine.rules", 5)], 1000);
        let d = diff_reports(&s, &s.clone(), &DiffOptions::default());
        assert_eq!(d.regressions, 0, "{}", d.render());
    }

    #[test]
    fn counter_drift_beyond_tolerance_regresses() {
        let base = summary(&[("engine.jobs", 100)], 1000);
        let close = summary(&[("engine.jobs", 110)], 1000);
        let far = summary(&[("engine.jobs", 150)], 1000);
        let opts = DiffOptions {
            tolerance: 0.2,
            time_gate: false,
        };
        assert_eq!(diff_reports(&base, &close, &opts).regressions, 0);
        let d = diff_reports(&base, &far, &opts);
        assert_eq!(d.regressions, 1, "{}", d.render());
        assert!(d.render().contains("!!"), "{}", d.render());
    }

    #[test]
    fn missing_counter_regresses_but_new_counter_does_not() {
        let base = summary(&[("engine.jobs", 10)], 1000);
        let cur = summary(&[("mine.rules", 3)], 1000);
        let d = diff_reports(&base, &cur, &DiffOptions::default());
        // engine.jobs vanished (regression); mine.rules is new (not).
        assert_eq!(d.regressions, 1, "{}", d.render());
        assert!(d.render().contains("(new)"), "{}", d.render());
    }

    #[test]
    fn times_gate_only_when_asked() {
        let base = summary(&[], 1000);
        let slow = summary(&[], 5000);
        assert_eq!(
            diff_reports(&base, &slow, &DiffOptions::default()).regressions,
            0
        );
        let gated = DiffOptions {
            tolerance: 0.2,
            time_gate: true,
        };
        assert!(diff_reports(&base, &slow, &gated).regressions >= 1);
    }

    #[test]
    fn summary_round_trips_through_jsonl_file() {
        let path = std::env::temp_dir().join(format!(
            "rpm_obs_diff_roundtrip_{}.jsonl",
            std::process::id()
        ));
        let text = "{\"type\":\"meta\",\"version\":2,\"wall_ns\":5000,\"level\":\"spans\"}\n\
             {\"type\":\"stage\",\"path\":\"train\",\"calls\":1,\"total_ns\":4000}\n\
             {\"type\":\"counter\",\"name\":\"engine.jobs\",\"value\":12}\n\
             {\"type\":\"cache\",\"family\":\"words\",\"hits\":6,\"misses\":4,\"evictions\":0,\"lookups\":10,\"hit_rate\":0.6}\n\
             {\"type\":\"histogram\",\"name\":\"predict.latency_ns\",\"count\":3,\"sum_ns\":2100,\"mean_ns\":700.0,\"p50\":700.0,\"p90\":900.0,\"p99\":990.0,\"buckets\":[[1024,3]]}\n";
        std::fs::write(&path, text).unwrap();
        let s = load_summary(&path.display().to_string()).expect("loads");
        assert_eq!(s.wall_ns, 5000);
        assert_eq!(s.counter("engine.jobs"), Some(12));
        assert_eq!(s.caches, vec![("words".to_string(), 10)]);
        assert_eq!(s.histograms.len(), 1);
        assert!((s.histograms[0].p90 - 900.0).abs() < 1e-9);
        let rendered = s.render();
        assert!(rendered.contains("train"), "{rendered}");
        assert!(rendered.contains("p90 900"), "{rendered}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_reports_without_quantiles_still_load() {
        let path =
            std::env::temp_dir().join(format!("rpm_obs_diff_v1_{}.jsonl", std::process::id()));
        let text = "{\"type\":\"meta\",\"version\":1,\"wall_ns\":100,\"level\":\"summary\"}\n\
             {\"type\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum_ns\":8,\"mean_ns\":8.0,\"buckets\":[[16,1]]}\n";
        std::fs::write(&path, text).unwrap();
        let s = load_summary(&path.display().to_string()).expect("v1 loads");
        assert_eq!(s.histograms[0].p50, 0.0);
        std::fs::remove_file(&path).ok();
    }
}
