//! Deterministic, seeded fault injection for resilience testing.
//!
//! A fault *site* is a named probe compiled into a failure-prone code
//! path — the engine work pool (`engine.job`), persistence I/O
//! (`persist.save`, `persist.load`), checkpointing (`checkpoint.write`,
//! `checkpoint.load`), the data loaders (`data.load`), and the metrics
//! endpoint (`http.conn`). A *plan* arms some of those sites with a
//! failure kind and probability; the chaos CI job and the resilience
//! tests use it to prove every failure path ends in a typed error, a
//! degraded-but-valid result, or a quarantine count — never a crash.
//!
//! Armed from the `RPM_FAULT` environment variable ([`init_env`]) or
//! programmatically ([`install`]). The directive syntax is a list of
//! `site:kind[:prob[:seed]]` entries separated by `,` or `;`:
//!
//! ```text
//! RPM_FAULT='persist.save:io:0.05:42;engine.job:panic:0.01:7'
//! ```
//!
//! * `site` — exact site name, a `prefix.*` glob, or `*` for all sites.
//! * `kind` — `panic`, `io` (an injected [`std::io::Error`]), or
//!   `delay<ms>` (an artificial stall, default 10 ms for bare `delay`).
//! * `prob` — injection probability per arrival (default 1).
//! * `seed` — PRNG seed for the per-site arrival sequence (default 0).
//!
//! Draws are deterministic: each armed spec keeps an arrival counter and
//! hashes `(seed, site, arrival)` through SplitMix64, so a serial run
//! injects at the same arrivals every time. Disabled (the default), a
//! [`point`] is one relaxed atomic load and a not-taken branch — the
//! same zero-cost contract as the observability probes (benchmarked in
//! `rpm-bench/benches/kernels.rs`).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Every site compiled into the workspace, for docs and the chaos
/// driver (`ci/chaos.sh` arms each in turn). Keep in sync with the
/// `fault::point`/`fault::fire` call sites.
pub const KNOWN_SITES: &[&str] = &[
    "engine.job",
    "params.eval",
    "persist.save",
    "persist.load",
    "checkpoint.write",
    "checkpoint.load",
    "data.load",
    "http.conn",
    "serve.request",
    "serve.batch",
    "serve.reload",
    "serve.worker",
];

/// What an armed site does when a draw fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an `injected fault` message at [`fire`] sites (the
    /// engine converts worker panics into typed `EngineError`s). At
    /// [`point`] sites — which have a typed error channel and whose
    /// callers are not required to contain unwinds — the fault surfaces
    /// as the site's [`std::io::Error`] instead.
    Panic,
    /// Return an injected [`std::io::Error`] from the site.
    Io,
    /// Sleep for the given number of milliseconds, then proceed —
    /// exercises deadlines and timeouts without failing the operation.
    Delay(u64),
}

/// One armed injection site.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Site name, `prefix.*` glob, or `*`.
    pub site: String,
    /// Failure to inject when a draw fires.
    pub kind: FaultKind,
    /// Injection probability per arrival, in `[0, 1]`.
    pub prob: f64,
    /// Seed for the deterministic arrival draws.
    pub seed: u64,
}

impl FaultSpec {
    fn matches(&self, site: &str) -> bool {
        self.site == "*"
            || self.site == site
            || self
                .site
                .strip_suffix('*')
                .is_some_and(|prefix| site.starts_with(prefix))
    }
}

/// Parses the `RPM_FAULT` directive syntax (see the module docs).
pub fn parse(s: &str) -> Result<Vec<FaultSpec>, String> {
    let mut specs = Vec::new();
    for entry in s.split([',', ';']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let mut fields = entry.split(':');
        let site = fields.next().unwrap_or_default().trim();
        if site.is_empty() {
            return Err(format!("RPM_FAULT entry {entry:?}: empty site"));
        }
        let kind = match fields.next().map(str::trim) {
            Some("panic") => FaultKind::Panic,
            Some("io") => FaultKind::Io,
            Some("delay") => FaultKind::Delay(10),
            Some(k) if k.starts_with("delay") => {
                let ms = k["delay".len()..]
                    .parse::<u64>()
                    .map_err(|_| format!("RPM_FAULT entry {entry:?}: bad delay {k:?}"))?;
                FaultKind::Delay(ms)
            }
            Some(k) => {
                return Err(format!(
                    "RPM_FAULT entry {entry:?}: unknown kind {k:?} (panic|io|delay<ms>)"
                ))
            }
            None => return Err(format!("RPM_FAULT entry {entry:?}: missing kind")),
        };
        let prob = match fields.next().map(str::trim) {
            Some(p) => p
                .parse::<f64>()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| {
                    format!("RPM_FAULT entry {entry:?}: bad probability {p:?} (want [0,1])")
                })?,
            None => 1.0,
        };
        let seed = match fields.next().map(str::trim) {
            Some(s) => s
                .parse::<u64>()
                .map_err(|_| format!("RPM_FAULT entry {entry:?}: bad seed {s:?}"))?,
            None => 0,
        };
        if fields.next().is_some() {
            return Err(format!(
                "RPM_FAULT entry {entry:?}: too many fields (site:kind[:prob[:seed]])"
            ));
        }
        specs.push(FaultSpec {
            site: site.to_string(),
            kind,
            prob,
            seed,
        });
    }
    Ok(specs)
}

struct ArmedSpec {
    spec: FaultSpec,
    arrivals: AtomicU64,
}

struct FaultPlan {
    specs: Vec<ArmedSpec>,
    injected: AtomicU64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Arms the given specs process-globally, replacing any previous plan.
pub fn install(specs: Vec<FaultSpec>) {
    let plan = FaultPlan {
        specs: specs
            .into_iter()
            .map(|spec| ArmedSpec {
                spec,
                arrivals: AtomicU64::new(0),
            })
            .collect(),
        injected: AtomicU64::new(0),
    };
    let armed = !plan.specs.is_empty();
    if let Ok(mut slot) = plan_slot().lock() {
        *slot = armed.then(|| Arc::new(plan));
        ACTIVE.store(armed, Ordering::Relaxed);
    }
}

/// Disarms every site (the default state).
pub fn clear() {
    install(Vec::new());
}

/// Whether any site is armed. The entire cost of a disabled
/// [`point`]/[`fire`]: one relaxed load.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Faults injected by the current plan since it was installed (0 when
/// disarmed). Tests assert on this; the `fault.injected` metrics
/// counter carries the same count into run reports when observability
/// is on.
pub fn injected_total() -> u64 {
    plan_slot()
        .lock()
        .ok()
        .and_then(|slot| slot.as_ref().map(|p| p.injected.load(Ordering::Relaxed)))
        .unwrap_or(0)
}

/// Arms sites from the `RPM_FAULT` environment variable; leaves
/// everything disarmed when it is unset or empty. A malformed directive
/// is reported on stderr and ignored (fault injection must never take
/// the process down by itself).
pub fn init_env() {
    match std::env::var("RPM_FAULT") {
        Ok(s) if !s.trim().is_empty() => match parse(&s) {
            Ok(specs) => install(specs),
            Err(e) => eprintln!("[rpm-obs] ignoring malformed RPM_FAULT: {e}"),
        },
        _ => {}
    }
}

/// SplitMix64: a full-period mix, so `(seed, arrival)` pairs map to
/// uniform draws without shared mutable RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An injection point with an I/O error channel. Returns the injected
/// error for `io` and `panic` kinds (it never unwinds — callers are not
/// required to contain panics), sleeps through `delay` kinds, and is a
/// no-op (one relaxed load) when disarmed.
#[inline]
pub fn point(site: &str) -> io::Result<()> {
    if !active() {
        return Ok(());
    }
    point_armed(site)
}

/// An injection point on a path with no error channel (e.g. inside an
/// engine job): every firing fault — `io` or `panic` — is escalated to
/// a panic, which the caller is expected to contain (the engine's
/// `catch_unwind` turns them into typed `EngineError`s).
#[inline]
pub fn fire(site: &str) {
    if !active() {
        return;
    }
    if let Err(e) = point_armed(site) {
        panic!("{e}");
    }
}

#[cold]
fn point_armed(site: &str) -> io::Result<()> {
    let Some(plan) = plan_slot().lock().ok().and_then(|slot| slot.clone()) else {
        return Ok(());
    };
    for armed in plan.specs.iter().filter(|a| a.spec.matches(site)) {
        let arrival = armed.arrivals.fetch_add(1, Ordering::Relaxed);
        let mixed = splitmix64(armed.spec.seed ^ fnv1a(site) ^ splitmix64(arrival));
        // 53 high bits → uniform draw in [0, 1).
        let draw = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= armed.spec.prob {
            continue;
        }
        plan.injected.fetch_add(1, Ordering::Relaxed);
        crate::metrics().faults_injected.inc();
        match armed.spec.kind {
            // Never unwind out of a typed-error site: a `panic` fault
            // here surfaces as the site's error; [`fire`] escalates it
            // to a real panic at the sites built to contain one.
            FaultKind::Panic => {
                return Err(io::Error::other(format!(
                    "injected fault (panic) at {site}"
                )))
            }
            FaultKind::Io => {
                return Err(io::Error::other(format!("injected fault (io) at {site}")))
            }
            FaultKind::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes fault tests: the plan is process-global (shared with
    /// the http tests, which also arm it).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn disabled_points_are_noops() {
        let _g = lock();
        clear();
        assert!(!active());
        assert!(point("engine.job").is_ok());
        fire("engine.job");
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn parse_accepts_full_and_defaulted_entries() {
        let specs = parse("engine.job:panic:0.25:7; persist.*:io, data.load:delay250").unwrap();
        assert_eq!(
            specs,
            vec![
                FaultSpec {
                    site: "engine.job".into(),
                    kind: FaultKind::Panic,
                    prob: 0.25,
                    seed: 7,
                },
                FaultSpec {
                    site: "persist.*".into(),
                    kind: FaultKind::Io,
                    prob: 1.0,
                    seed: 0,
                },
                FaultSpec {
                    site: "data.load".into(),
                    kind: FaultKind::Delay(250),
                    prob: 1.0,
                    seed: 0,
                },
            ]
        );
        assert!(parse("x:explode").is_err());
        assert!(parse("x:io:1.5").is_err());
        assert!(parse(":io").is_err());
        assert!(parse("x:io:1:2:3").is_err());
        assert!(parse("x").is_err());
        assert_eq!(parse("").unwrap(), Vec::new());
    }

    #[test]
    fn io_fault_fires_with_certainty_and_counts() {
        let _g = lock();
        install(parse("persist.save:io:1:3").unwrap());
        let err = point("persist.save").unwrap_err();
        assert!(err.to_string().contains("persist.save"), "{err}");
        assert!(point("persist.load").is_ok(), "unarmed site stays clean");
        assert_eq!(injected_total(), 1);
        clear();
        assert!(point("persist.save").is_ok());
    }

    #[test]
    fn panic_fault_panics_and_fire_escalates_io() {
        let _g = lock();
        install(parse("engine.job:panic").unwrap());
        let caught = std::panic::catch_unwind(|| fire("engine.job"));
        assert!(caught.is_err());

        install(parse("engine.job:io").unwrap());
        let caught = std::panic::catch_unwind(|| fire("engine.job"));
        assert!(caught.is_err(), "fire escalates io faults to panics");
        clear();
    }

    #[test]
    fn draws_are_seeded_and_deterministic() {
        let _g = lock();
        let run = |seed: u64| {
            install(vec![FaultSpec {
                site: "data.load".into(),
                kind: FaultKind::Io,
                prob: 0.3,
                seed,
            }]);
            let pattern: Vec<bool> = (0..64).map(|_| point("data.load").is_err()).collect();
            clear();
            pattern
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed, same arrivals");
        assert_ne!(a, run(12), "different seed, different arrivals");
        let hits = a.iter().filter(|h| **h).count();
        assert!((5..=35).contains(&hits), "p=0.3 over 64 draws: {hits}");
    }

    #[test]
    fn globs_match_prefixes_and_everything() {
        let _g = lock();
        install(parse("persist.*:io:1:0").unwrap());
        assert!(point("persist.save").is_err());
        assert!(point("persist.load").is_err());
        assert!(point("checkpoint.write").is_ok());
        install(parse("*:io:1:0").unwrap());
        assert!(point("anything.at.all").is_err());
        clear();
    }

    #[test]
    fn delay_faults_stall_but_succeed() {
        let _g = lock();
        install(parse("http.conn:delay20:1:0").unwrap());
        let t0 = std::time::Instant::now();
        assert!(point("http.conn").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert_eq!(injected_total(), 1);
        clear();
    }
}
