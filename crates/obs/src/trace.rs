//! Request-scoped tracing: W3C `traceparent` ids, per-request span
//! trees, and an in-memory flight recorder for the serving path.
//!
//! The process-global stage timers in [`crate::span`] answer "where did
//! the *run* spend its time"; they cannot answer "why was *this*
//! request slow". This module adds the per-request layer: every
//! `/classify` request gets a [`TraceCtx`] carrying a 128-bit trace id
//! (ingested from an inbound `traceparent` header when present,
//! generated otherwise) and an append-only list of [`TraceSpan`]s
//! (parse, queue-wait, batch, predict, respond). When the request is
//! answered, [`TraceCtx::finish`] freezes the tree into a
//! [`TraceRecord`] that the [`FlightRecorder`] retains or drops.
//!
//! # Causality across the micro-batching boundary
//!
//! A micro-batch serves N requests at once, so a naive per-request tree
//! would hide the sharing. Each request's `batch` span therefore
//! carries the dispatch sequence number as an attribute and *links* to
//! the trace ids of the other requests served by the same dispatch —
//! the OpenTelemetry span-link idea, flattened to trace ids. Walking
//! the links from any one slow request reconstructs the whole batch.
//!
//! # Tail-based retention
//!
//! The recorder is two fixed-size rings of `Mutex<Option<TraceRecord>>`
//! slots behind one atomic head each — an insert is one `fetch_add`
//! plus one uncontended slot lock, never a global lock. Retention is
//! decided *after* the outcome is known (tail-based):
//!
//! * non-`ok` outcomes (shed, deadline, parse/internal errors) and
//!   traces whose inbound `traceparent` had the sampled flag set are
//!   always kept (the forensic ring);
//! * traces at least as slow as the running p90 duration estimate are
//!   kept too — "the slowest decile", at log₂-bucket resolution, from
//!   an internal histogram whose threshold is refreshed every
//!   [`REFRESH_EVERY`] records;
//! * 1 in [`SAMPLE_EVERY`] of the remaining ok traces lands in a
//!   smaller sampled ring so the recorder always shows some healthy
//!   baseline; the rest are dropped (counted in `trace.dropped`).
//!
//! Retained traces are served as JSONL by `GET /debug/traces`
//! (`?min_ms=`/`?outcome=` filters), embedded in run reports (schema
//! v3 `"trace"` lines), and referenced from `/metrics` histogram
//! buckets as OpenMetrics-style exemplars (`# {trace_id="…"} value`) —
//! an exemplar is recorded only for *retained* traces, so every trace
//! id a scrape shows resolves against the recorder.

use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// 128-bit W3C trace id; the all-zero value is invalid per spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// 64-bit W3C span (parent) id; all-zero is invalid per spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Lowercase 32-hex-digit form used on the wire and in reports.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses exactly 32 lowercase hex digits into a nonzero id.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32
            || !s
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        (v != 0).then_some(Self(v))
    }
}

impl SpanId {
    /// Lowercase 16-hex-digit form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses exactly 16 lowercase hex digits into a nonzero id.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16
            || !s
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        (v != 0).then_some(Self(v))
    }
}

/// The fields of one parsed W3C `traceparent` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceParent {
    /// The caller's trace id, adopted for the whole request.
    pub trace_id: TraceId,
    /// The caller's span id — our root span's remote parent.
    pub parent: SpanId,
    /// The `sampled` flag (bit 0 of trace-flags). The recorder honors
    /// it: an upstream that asked for sampling always gets its trace
    /// retained, which also makes tests deterministic.
    pub sampled: bool,
}

/// Parses a W3C `traceparent` header (`00-<trace>-<parent>-<flags>`).
///
/// Accepts any non-`ff` version per the spec's forward-compatibility
/// rule, but a version-00 header must have exactly four fields. Ids
/// must be lowercase hex and nonzero. Returns `None` on any violation —
/// a bad header means "start a fresh trace", never an error.
pub fn parse_traceparent(header: &str) -> Option<TraceParent> {
    let mut parts = header.trim().split('-');
    let version = parts.next()?;
    if version.len() != 2
        || !version
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        || version == "ff"
    {
        return None;
    }
    let trace_id = TraceId::from_hex(parts.next()?)?;
    let parent = SpanId::from_hex(parts.next()?)?;
    let flags = parts.next()?;
    if flags.len() != 2
        || !flags
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return None;
    }
    if version == "00" && parts.next().is_some() {
        return None;
    }
    let sampled = u8::from_str_radix(flags, 16).ok()? & 0x01 != 0;
    Some(TraceParent {
        trace_id,
        parent,
        sampled,
    })
}

/// Renders a version-00 `traceparent` header for `trace_id`/`span`.
pub fn format_traceparent(trace_id: TraceId, span: SpanId, sampled: bool) -> String {
    format!(
        "00-{:032x}-{:016x}-{}",
        trace_id.0,
        span.0,
        if sampled { "01" } else { "00" }
    )
}

/// Draws a fresh nonzero id of up to 128 bits. Std-only entropy: the
/// per-call `RandomState` keys (seeded by the OS) hashed together with
/// a process-global counter and the monotonic clock, so ids are unique
/// within a process and unpredictable enough across processes for
/// correlation ids (they are *not* cryptographic material).
fn random_bits() -> u128 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let lo = {
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(seq);
        h.write_u64(crate::now_ns());
        h.finish()
    };
    let hi = {
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(lo);
        h.write_u64(seq ^ 0x9e37_79b9_7f4a_7c15);
        h.finish()
    };
    (hi as u128) << 64 | lo as u128
}

fn new_trace_id() -> TraceId {
    loop {
        let v = random_bits();
        if v != 0 {
            return TraceId(v);
        }
    }
}

fn new_span_id() -> SpanId {
    loop {
        let v = random_bits() as u64;
        if v != 0 {
            return SpanId(v);
        }
    }
}

/// How one traced request ended, mapped from the HTTP status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered with labels (`200`).
    Ok,
    /// Rejected at parse time (`400`).
    BadRequest,
    /// Shed by the bounded queue (`429`).
    Shed,
    /// Per-request deadline missed (`504`).
    Deadline,
    /// Internal failure — injected fault or engine error (`5xx`).
    Error,
}

impl TraceOutcome {
    /// The wire/report spelling (`ok`, `shed`, `deadline`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::BadRequest => "bad_request",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Deadline => "deadline",
            TraceOutcome::Error => "error",
        }
    }

    /// Inverse of [`TraceOutcome::as_str`] (used by the `?outcome=`
    /// filter).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(TraceOutcome::Ok),
            "bad_request" => Some(TraceOutcome::BadRequest),
            "shed" => Some(TraceOutcome::Shed),
            "deadline" => Some(TraceOutcome::Deadline),
            "error" => Some(TraceOutcome::Error),
            _ => None,
        }
    }
}

/// One completed span inside a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Stage name (`request`, `parse`, `queue_wait`, `batch`,
    /// `predict`, `respond`).
    pub name: &'static str,
    /// This span's id, unique within the trace.
    pub id: SpanId,
    /// Parent span id; `None` only for the root `request` span.
    pub parent: Option<SpanId>,
    /// Start, on the process-wide [`crate::now_ns`] epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Stage-specific key/values (batch sequence, kernel counters, …).
    pub attrs: Vec<(&'static str, String)>,
    /// Trace ids of sibling requests served by the same micro-batch
    /// dispatch (set on `batch` spans only).
    pub links: Vec<TraceId>,
}

/// Live per-request trace state, shared between the connection handler
/// and the batch worker via `Arc`.
#[derive(Debug)]
pub struct TraceCtx {
    trace_id: TraceId,
    root: SpanId,
    remote_parent: Option<SpanId>,
    sampled: bool,
    start_ns: u64,
    spans: Mutex<Vec<TraceSpan>>,
}

impl TraceCtx {
    /// Starts a trace for one request. A parseable `traceparent` header
    /// is adopted (id, remote parent, sampled flag); anything else
    /// starts a fresh unsampled trace.
    pub fn begin(traceparent: Option<&str>) -> Arc<Self> {
        let (trace_id, remote_parent, sampled) = match traceparent.and_then(parse_traceparent) {
            Some(tp) => (tp.trace_id, Some(tp.parent), tp.sampled),
            None => (new_trace_id(), None, false),
        };
        Arc::new(Self {
            trace_id,
            root: new_span_id(),
            remote_parent,
            sampled,
            start_ns: crate::now_ns(),
            spans: Mutex::new(Vec::new()),
        })
    }

    /// The trace id every response header and log line carries.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// The root (`request`) span id — the parent of ordinary spans.
    pub fn root_span(&self) -> SpanId {
        self.root
    }

    /// Trace start on the [`crate::now_ns`] epoch.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// The `traceparent` value echoed on responses: our trace id, our
    /// root span as the parent id, the inbound sampled flag preserved.
    pub fn traceparent(&self) -> String {
        format_traceparent(self.trace_id, self.root, self.sampled)
    }

    /// Records a completed child-of-root span. Returns its id so later
    /// spans can nest under it.
    pub fn add_span(&self, name: &'static str, start_ns: u64, dur_ns: u64) -> SpanId {
        self.add_span_with(
            name,
            Some(self.root),
            start_ns,
            dur_ns,
            Vec::new(),
            Vec::new(),
        )
    }

    /// Records a completed span with an explicit parent, attributes,
    /// and batch links.
    pub fn add_span_with(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(&'static str, String)>,
        links: Vec<TraceId>,
    ) -> SpanId {
        let id = new_span_id();
        let span = TraceSpan {
            name,
            id,
            parent,
            start_ns,
            dur_ns,
            attrs,
            links,
        };
        if let Ok(mut spans) = self.spans.lock() {
            spans.push(span);
        }
        id
    }

    /// Freezes the trace: synthesizes the root `request` span spanning
    /// the whole request, drains the recorded children, and returns the
    /// immutable record. Spans a worker adds after this point (e.g. a
    /// batch that finishes after the handler already timed the request
    /// out) are lost by design — the record mirrors what the client
    /// experienced.
    pub fn finish(&self, outcome: TraceOutcome, status: u16) -> TraceRecord {
        let dur_ns = crate::now_ns().saturating_sub(self.start_ns);
        let mut spans = self
            .spans
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default();
        spans.sort_by_key(|s| s.start_ns);
        spans.insert(
            0,
            TraceSpan {
                name: "request",
                id: self.root,
                parent: None,
                start_ns: self.start_ns,
                dur_ns,
                attrs: Vec::new(),
                links: Vec::new(),
            },
        );
        TraceRecord {
            trace_id: self.trace_id,
            root: self.root,
            remote_parent: self.remote_parent,
            sampled: self.sampled,
            outcome,
            status,
            start_ns: self.start_ns,
            dur_ns,
            spans,
        }
    }
}

/// One finished, immutable trace as retained by the recorder.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// Root span id.
    pub root: SpanId,
    /// The inbound `traceparent` parent span, when one was supplied.
    pub remote_parent: Option<SpanId>,
    /// Inbound sampled flag (forces retention).
    pub sampled: bool,
    /// How the request ended.
    pub outcome: TraceOutcome,
    /// HTTP status answered.
    pub status: u16,
    /// Trace start on the [`crate::now_ns`] epoch.
    pub start_ns: u64,
    /// End-to-end duration in nanoseconds.
    pub dur_ns: u64,
    /// Root span first, children sorted by start time.
    pub spans: Vec<TraceSpan>,
}

impl TraceRecord {
    /// First span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Renders the record as one `{"type":"trace",…}` JSON line (no
    /// trailing newline) — the shape shared by `/debug/traces`, run
    /// reports, and `rpm-cli obs traces`.
    pub fn to_jsonl_line(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"type\":\"trace\",\"trace_id\":\"");
        out.push_str(&self.trace_id.to_hex());
        out.push_str("\",\"root\":\"");
        out.push_str(&self.root.to_hex());
        out.push('"');
        if let Some(parent) = self.remote_parent {
            out.push_str(",\"remote_parent\":\"");
            out.push_str(&parent.to_hex());
            out.push('"');
        }
        out.push_str(",\"outcome\":\"");
        out.push_str(self.outcome.as_str());
        out.push_str("\",\"status\":");
        out.push_str(&self.status.to_string());
        out.push_str(",\"sampled\":");
        out.push_str(if self.sampled { "true" } else { "false" });
        out.push_str(",\"start_ns\":");
        out.push_str(&self.start_ns.to_string());
        out.push_str(",\"dur_ns\":");
        out.push_str(&self.dur_ns.to_string());
        out.push_str(",\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(span.name);
            out.push_str("\",\"id\":\"");
            out.push_str(&span.id.to_hex());
            out.push_str("\",\"parent\":");
            match span.parent {
                Some(p) => {
                    out.push('"');
                    out.push_str(&p.to_hex());
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"start_ns\":");
            out.push_str(&span.start_ns.to_string());
            out.push_str(",\"dur_ns\":");
            out.push_str(&span.dur_ns.to_string());
            if !span.attrs.is_empty() {
                out.push_str(",\"attrs\":{");
                for (j, (key, value)) in span.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(key);
                    out.push_str("\":\"");
                    push_escaped(&mut out, value);
                    out.push('"');
                }
                out.push('}');
            }
            if !span.links.is_empty() {
                out.push_str(",\"links\":[");
                for (j, link) in span.links.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&link.to_hex());
                    out.push('"');
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for attribute values (names and ids
/// are static/hex and never need it).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Records retained per ring before the oldest is overwritten.
const KEPT_SLOTS: usize = 192;
const SAMPLED_SLOTS: usize = 64;
/// 1 in this many unremarkable ok traces lands in the sampled ring.
const SAMPLE_EVERY: u64 = 16;
/// The slow-trace threshold is re-derived after this many records.
const REFRESH_EVERY: u64 = 32;
const DURATION_BUCKETS: usize = 40;

/// A fixed-size overwrite-oldest ring of trace records. Lock-light:
/// writers claim a slot with one atomic `fetch_add` and lock only that
/// slot, so two concurrent inserts contend only when the ring wraps
/// onto the same slot.
struct Ring {
    head: AtomicU64,
    slots: Vec<Mutex<Option<TraceRecord>>>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn push(&self, record: TraceRecord) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        if let Ok(mut cell) = self.slots[slot].lock() {
            *cell = Some(record);
        }
    }

    fn collect_into(&self, out: &mut Vec<TraceRecord>) {
        for slot in &self.slots {
            if let Ok(cell) = slot.lock() {
                if let Some(record) = cell.as_ref() {
                    out.push(record.clone());
                }
            }
        }
    }

    fn clear(&self) {
        self.head.store(0, Ordering::Relaxed);
        for slot in &self.slots {
            if let Ok(mut cell) = slot.lock() {
                *cell = None;
            }
        }
    }
}

/// The in-memory flight recorder: tail-based retention over two rings
/// (see the module docs for the policy).
pub struct FlightRecorder {
    kept: Ring,
    sampled: Ring,
    /// log₂ histogram of *all* finished-trace durations (retained or
    /// not), from which the slow threshold is derived.
    durations: [AtomicU64; DURATION_BUCKETS],
    observed: AtomicU64,
    /// Durations at or above this are "slowest decile". Starts at
    /// `u64::MAX` (nothing is slow until the first refresh, which the
    /// first record triggers).
    slow_threshold_ns: AtomicU64,
    sample_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with explicit ring capacities (tests size it down to
    /// exercise wrap-around).
    pub fn with_capacity(kept_slots: usize, sampled_slots: usize) -> Self {
        Self {
            kept: Ring::new(kept_slots),
            sampled: Ring::new(sampled_slots),
            durations: [const { AtomicU64::new(0) }; DURATION_BUCKETS],
            observed: AtomicU64::new(0),
            slow_threshold_ns: AtomicU64::new(u64::MAX),
            sample_seq: AtomicU64::new(0),
        }
    }

    /// The duration at or above which a trace currently counts as
    /// "slowest decile" (`u64::MAX` until the first record).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Applies the retention policy to one finished trace. Returns
    /// `true` when the trace was retained (callers record exemplars
    /// only for retained traces so exemplar ids always resolve here).
    pub fn record(&self, record: TraceRecord) -> bool {
        let dur = record.dur_ns;
        let bucket = (64 - dur.leading_zeros() as usize).min(DURATION_BUCKETS - 1);
        self.durations[bucket].fetch_add(1, Ordering::Relaxed);
        let total = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if total % REFRESH_EVERY == 1 || REFRESH_EVERY == 1 {
            self.refresh_threshold();
        }
        let m = crate::metrics();
        let forensic = record.outcome != TraceOutcome::Ok || record.sampled;
        if forensic || dur >= self.slow_threshold_ns.load(Ordering::Relaxed) {
            m.trace_recorded.inc();
            self.kept.push(record);
            return true;
        }
        if self
            .sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(SAMPLE_EVERY)
        {
            m.trace_recorded.inc();
            self.sampled.push(record);
            return true;
        }
        m.trace_dropped.inc();
        false
    }

    /// Recomputes the slow threshold as the lower bound of the log₂
    /// bucket holding the p90 duration — everything in or above that
    /// bucket is retained, so the policy keeps *at least* the slowest
    /// decile (more when the p90 bucket is wide).
    fn refresh_threshold(&self) {
        let counts: Vec<u64> = self
            .durations
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        let target = (total * 9).div_ceil(10);
        let mut below = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            below += n;
            if below >= target {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                self.slow_threshold_ns.store(lower, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Every retained trace, newest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        self.kept.collect_into(&mut out);
        self.sampled.collect_into(&mut out);
        out.sort_by_key(|r| std::cmp::Reverse(r.start_ns));
        out
    }

    /// Looks up one retained trace by id.
    pub fn find(&self, trace_id: TraceId) -> Option<TraceRecord> {
        self.snapshot().into_iter().find(|r| r.trace_id == trace_id)
    }

    /// Drops every retained trace and resets the retention state
    /// (tests and report boundaries).
    pub fn clear(&self) {
        self.kept.clear();
        self.sampled.clear();
        for b in &self.durations {
            b.store(0, Ordering::Relaxed);
        }
        self.observed.store(0, Ordering::Relaxed);
        self.slow_threshold_ns.store(u64::MAX, Ordering::Relaxed);
        self.sample_seq.store(0, Ordering::Relaxed);
    }
}

/// The process-global flight recorder behind `/debug/traces`.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(KEPT_SLOTS, SAMPLED_SLOTS))
}

/// One exemplar: the latest retained trace observed in a histogram
/// bucket, with the observed value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The retained trace's id.
    pub trace_id: TraceId,
    /// The observed value (nanoseconds for `*_ns` histograms).
    pub value: u64,
}

/// Histograms that carry exemplars. Fixed at compile time so the store
/// is a flat array without a registry lookup on the hot path.
const EXEMPLAR_HISTOGRAMS: [&str; 2] = ["serve.latency_ns", "serve.queue_wait_ns"];

fn exemplar_store() -> &'static [[Mutex<Option<Exemplar>>; DURATION_BUCKETS]; 2] {
    static STORE: OnceLock<[[Mutex<Option<Exemplar>>; DURATION_BUCKETS]; 2]> = OnceLock::new();
    STORE.get_or_init(|| std::array::from_fn(|_| std::array::from_fn(|_| Mutex::new(None))))
}

/// Attaches `trace_id` as the exemplar for the bucket of `histogram`
/// that `value` falls into (last write wins). Only call for traces the
/// recorder retained. Unknown histogram names are ignored.
pub fn record_exemplar(histogram: &str, value: u64, trace_id: TraceId) {
    let Some(h) = EXEMPLAR_HISTOGRAMS.iter().position(|n| *n == histogram) else {
        return;
    };
    let bucket = (64 - value.leading_zeros() as usize).min(DURATION_BUCKETS - 1);
    if let Ok(mut cell) = exemplar_store()[h][bucket].lock() {
        *cell = Some(Exemplar { trace_id, value });
    }
}

/// The exemplar for `histogram`'s bucket with the given exclusive
/// upper bound, if one was recorded (`upper` as rendered by
/// [`crate::metrics::HistogramSnapshot`]: 0 for the zero bucket,
/// otherwise a power of two).
pub fn exemplar_for(histogram: &str, upper: u64) -> Option<Exemplar> {
    let h = EXEMPLAR_HISTOGRAMS.iter().position(|n| *n == histogram)?;
    let bucket = if upper == 0 {
        0
    } else if upper.is_power_of_two() {
        (upper.trailing_zeros() as usize).min(DURATION_BUCKETS - 1)
    } else {
        return None;
    };
    *exemplar_store()[h][bucket].lock().ok()?
}

/// Clears every recorded exemplar (report boundaries and tests).
pub fn clear_exemplars() {
    for row in exemplar_store() {
        for cell in row {
            if let Ok(mut slot) = cell.lock() {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(outcome: TraceOutcome, dur_ns: u64, sampled: bool) -> TraceRecord {
        let ctx = TraceCtx::begin(None);
        let mut rec = ctx.finish(outcome, 200);
        rec.dur_ns = dur_ns;
        rec.sampled = sampled;
        rec
    }

    #[test]
    fn traceparent_parses_and_round_trips() {
        let header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let tp = parse_traceparent(header).expect("valid header");
        assert_eq!(tp.trace_id.to_hex(), "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(tp.parent.to_hex(), "00f067aa0ba902b7");
        assert!(tp.sampled);
        assert_eq!(
            format_traceparent(tp.trace_id, tp.parent, tp.sampled),
            header
        );
    }

    #[test]
    fn traceparent_rejects_malformed_headers() {
        for bad in [
            "",
            "00",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
            "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01", // short trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 extras
            "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        ] {
            assert!(parse_traceparent(bad).is_none(), "{bad:?} must not parse");
        }
        // A future version may carry extra fields.
        assert!(parse_traceparent(
            "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"
        )
        .is_some());
    }

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = TraceCtx::begin(None);
        let b = TraceCtx::begin(None);
        assert_ne!(a.trace_id(), b.trace_id());
        assert_ne!(a.root_span(), b.root_span());
        assert_ne!(a.trace_id().0, 0);
        assert!(TraceId::from_hex(&a.trace_id().to_hex()) == Some(a.trace_id()));
    }

    #[test]
    fn finish_synthesizes_the_root_span_and_sorts_children() {
        let ctx = TraceCtx::begin(None);
        let t0 = ctx.start_ns();
        ctx.add_span("respond", t0 + 100, 5);
        ctx.add_span("parse", t0 + 1, 2);
        let rec = ctx.finish(TraceOutcome::Ok, 200);
        let names: Vec<&str> = rec.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["request", "parse", "respond"]);
        assert_eq!(rec.spans[0].id, rec.root);
        assert_eq!(rec.spans[0].parent, None);
        assert_eq!(rec.spans[1].parent, Some(rec.root));
        // Finish drained the spans: a second finish only has the root.
        assert_eq!(ctx.finish(TraceOutcome::Ok, 200).spans.len(), 1);
    }

    #[test]
    fn jsonl_line_carries_ids_attrs_and_links() {
        let ctx = TraceCtx::begin(Some(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        ));
        let other = TraceId(7);
        let batch = ctx.add_span_with(
            "batch",
            Some(ctx.root_span()),
            ctx.start_ns(),
            10,
            vec![("batch", "3".to_string()), ("note", "a\"b".to_string())],
            vec![other],
        );
        ctx.add_span_with(
            "predict",
            Some(batch),
            ctx.start_ns(),
            8,
            Vec::new(),
            Vec::new(),
        );
        let line = ctx.finish(TraceOutcome::Deadline, 504).to_jsonl_line();
        assert!(line.starts_with("{\"type\":\"trace\""), "{line}");
        assert!(
            line.contains("\"trace_id\":\"4bf92f3577b34da6a3ce929d0e0e4736\""),
            "{line}"
        );
        assert!(
            line.contains("\"remote_parent\":\"00f067aa0ba902b7\""),
            "{line}"
        );
        assert!(
            line.contains("\"outcome\":\"deadline\",\"status\":504"),
            "{line}"
        );
        assert!(
            line.contains(&format!("\"links\":[\"{}\"]", other.to_hex())),
            "{line}"
        );
        assert!(
            line.contains("\"attrs\":{\"batch\":\"3\",\"note\":\"a\\\"b\"}"),
            "{line}"
        );
        assert!(line.contains("\"sampled\":true"), "{line}");
    }

    #[test]
    fn retention_keeps_failures_and_the_slow_tail() {
        let rec = FlightRecorder::with_capacity(16, 8);
        // Seed the duration distribution: mostly-fast ok traffic.
        for _ in 0..40 {
            rec.record(record_with(TraceOutcome::Ok, 1_000, false));
        }
        assert!(
            rec.slow_threshold_ns() <= 2048,
            "{}",
            rec.slow_threshold_ns()
        );
        // Failures are always retained, however fast.
        assert!(rec.record(record_with(TraceOutcome::Shed, 10, false)));
        assert!(rec.record(record_with(TraceOutcome::Deadline, 10, false)));
        // Sampled-flag traces are always retained.
        assert!(rec.record(record_with(TraceOutcome::Ok, 10, true)));
        // A slow ok trace is retained.
        assert!(rec.record(record_with(TraceOutcome::Ok, 50_000_000, false)));
        let snap = rec.snapshot();
        assert!(snap.iter().any(|r| r.outcome == TraceOutcome::Shed));
        assert!(snap.iter().any(|r| r.dur_ns == 50_000_000));
    }

    #[test]
    fn ok_traffic_is_sampled_not_stored_wholesale() {
        let rec = FlightRecorder::with_capacity(64, 64);
        // Identical durations: after the first refresh the shared
        // bucket's lower bound is the threshold, so these all count as
        // "slow". Use durations *below* the first bucket's lower bound
        // by spreading: fast ones after a slow seed.
        for _ in 0..32 {
            rec.record(record_with(TraceOutcome::Ok, 1 << 20, false));
        }
        // Threshold now sits near 2^19; these fast traces miss it and
        // only 1 in SAMPLE_EVERY is retained.
        let kept = (0..64)
            .filter(|_| rec.record(record_with(TraceOutcome::Ok, 100, false)))
            .count();
        assert!((2..=8).contains(&kept), "sampled {kept} of 64");
    }

    #[test]
    fn rings_overwrite_oldest_under_contention() {
        let rec = FlightRecorder::with_capacity(8, 4);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        // Errors: always retained, so every push lands
                        // in the kept ring and wrap-around is constant.
                        rec.record(record_with(TraceOutcome::Error, t * 1000 + i, false));
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert!(snap.len() <= 8, "kept ring bounded, got {}", snap.len());
        assert!(!snap.is_empty());
        // Every surviving record is intact (root span present, id well
        // formed) — no torn writes.
        for r in &snap {
            assert_eq!(r.spans[0].name, "request");
            assert_eq!(r.spans[0].id, r.root);
            assert_eq!(r.trace_id.to_hex().len(), 32);
        }
    }

    #[test]
    fn find_and_clear_work() {
        let rec = FlightRecorder::with_capacity(8, 4);
        let record = record_with(TraceOutcome::Error, 42, false);
        let id = record.trace_id;
        rec.record(record);
        assert_eq!(rec.find(id).map(|r| r.dur_ns), Some(42));
        rec.clear();
        assert!(rec.find(id).is_none());
        assert_eq!(rec.slow_threshold_ns(), u64::MAX);
    }

    #[test]
    fn exemplars_land_in_value_buckets_and_clear() {
        let _g = crate::test_lock();
        clear_exemplars();
        let id = TraceId(0xabc);
        record_exemplar("serve.latency_ns", 1500, id);
        // 1500 ∈ [1024, 2048) → upper bound 2048.
        let ex = exemplar_for("serve.latency_ns", 2048).expect("exemplar");
        assert_eq!(ex.trace_id, id);
        assert_eq!(ex.value, 1500);
        assert!(exemplar_for("serve.latency_ns", 4096).is_none());
        assert!(exemplar_for("serve.queue_wait_ns", 2048).is_none());
        assert!(exemplar_for("nope", 2048).is_none());
        // Zero bucket and non-power-of-two uppers.
        record_exemplar("serve.latency_ns", 0, id);
        assert!(exemplar_for("serve.latency_ns", 0).is_some());
        assert!(exemplar_for("serve.latency_ns", 3).is_none());
        clear_exemplars();
        assert!(exemplar_for("serve.latency_ns", 2048).is_none());
    }
}
