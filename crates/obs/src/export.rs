//! Prometheus text exposition of the metrics registry.
//!
//! Renders a [`MetricsSnapshot`] in the Prometheus text format
//! (version 0.0.4) for scraping via the [`crate::http`] endpoint or for
//! dumping to a file. Mapping from the internal dotted names:
//!
//! * every metric is prefixed `rpm_` and dots become underscores;
//! * counters gain the conventional `_total` suffix
//!   (`engine.jobs` → `rpm_engine_jobs_total`);
//! * gauges keep their flattened name (`engine.workers.max` →
//!   `rpm_engine_workers_max`);
//! * cache families collapse into three labeled counters
//!   (`rpm_cache_hits_total{family="words"}`, …misses…, …evictions…);
//! * dynamic labeled counters split their trailing `key=value` segment
//!   into a label (`cfs.survivors.class=3` →
//!   `rpm_cfs_survivors_total{class="3"}`);
//! * histograms render the full conventional triple: cumulative
//!   `_bucket{le="…"}` series ending in `le="+Inf"`, plus `_sum` and
//!   `_count`. Bucket bounds are the registry's log₂ upper bounds,
//!   *inclusive* in Prometheus semantics — the internal buckets are
//!   `[2^(i-1), 2^i)`, so `le="2^i - 1"` would be exact; we emit the
//!   power of two itself, which over-covers each bucket by exactly one
//!   nanosecond and keeps the bounds recognizable.
//!
//! The exposition is pull-model and read-only: rendering never mutates
//! the registry, so scrapes cannot perturb a run.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write;

/// Renders `snap` in Prometheus text exposition format 0.0.4.
///
/// Families with zero activity are skipped (except `_count`-bearing
/// histogram triples, which render whenever they have observations), so
/// a fresh process exposes a short page rather than forty zero lines.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for &(name, value) in &snap.counters {
        if value == 0 {
            continue;
        }
        let flat = flatten(name);
        let _ = writeln!(out, "# TYPE rpm_{flat}_total counter");
        let _ = writeln!(out, "rpm_{flat}_total {value}");
    }

    for &(name, value) in &snap.gauges {
        if value == 0 {
            continue;
        }
        let flat = flatten(name);
        let _ = writeln!(out, "# TYPE rpm_{flat} gauge");
        let _ = writeln!(out, "rpm_{flat} {value}");
    }

    if snap.cache.iter().any(|(_, h, m, e)| h + m + e > 0) {
        for (kind, pick) in [("hits", 0usize), ("misses", 1), ("evictions", 2)] {
            let _ = writeln!(out, "# TYPE rpm_cache_{kind}_total counter");
            for &(family, h, m, e) in &snap.cache {
                if h + m + e == 0 {
                    continue;
                }
                let value = [h, m, e][pick];
                let _ = writeln!(
                    out,
                    "rpm_cache_{kind}_total{{family=\"{}\"}} {value}",
                    escape_label(family)
                );
            }
        }
    }

    // Dynamic labeled counters, grouped so each family gets one TYPE
    // line (the snapshot is sorted by name, so a family's entries are
    // contiguous).
    let mut last_family = String::new();
    for (name, value) in &snap.labeled {
        let (family, label) = split_label(name);
        let flat = flatten(&family);
        if family != last_family {
            let _ = writeln!(out, "# TYPE rpm_{flat}_total counter");
            last_family = family.clone();
        }
        match label {
            Some((key, val)) => {
                let _ = writeln!(
                    out,
                    "rpm_{flat}_total{{{key}=\"{}\"}} {value}",
                    escape_label(&val)
                );
            }
            None => {
                let _ = writeln!(out, "rpm_{flat}_total {value}");
            }
        }
    }

    for (name, hist) in &snap.histograms {
        if hist.count == 0 {
            continue;
        }
        push_histogram(&mut out, name, hist);
    }

    out
}

/// Renders a [`crate::drift::DriftReport`] as `rpm_drift_*` gauges for
/// the same exposition page. Scores are float gauges labeled by metric;
/// `rpm_drift_status` encodes the overall verdict ordinally
/// (0 unavailable, 1 warming, 2 ok, 3 warn, 4 page) so a single alert
/// rule (`rpm_drift_status >= 3`) covers every metric. Renders nothing
/// while no monitor is attached — an offline training run's scrape page
/// stays free of serving-only families.
pub fn drift_to_prometheus(report: &crate::drift::DriftReport) -> String {
    use crate::drift::DriftStatus;
    let mut out = String::new();
    if report.status == DriftStatus::Unavailable {
        return out;
    }
    let status_code = match report.status {
        DriftStatus::Unavailable => 0,
        DriftStatus::Warming => 1,
        DriftStatus::Ok => 2,
        DriftStatus::Warn => 3,
        DriftStatus::Page => 4,
    };
    let _ = writeln!(out, "# TYPE rpm_drift_status gauge");
    let _ = writeln!(out, "rpm_drift_status {status_code}");
    let _ = writeln!(out, "# TYPE rpm_drift_samples gauge");
    let _ = writeln!(out, "rpm_drift_samples {}", report.live_samples);
    if !report.metrics.is_empty() {
        let _ = writeln!(out, "# TYPE rpm_drift_psi gauge");
        for m in &report.metrics {
            let _ = writeln!(
                out,
                "rpm_drift_psi{{metric=\"{}\"}} {:.6}",
                escape_label(m.metric),
                m.psi
            );
        }
        let _ = writeln!(out, "# TYPE rpm_drift_ks gauge");
        for m in &report.metrics {
            if let Some(ks) = m.ks {
                let _ = writeln!(
                    out,
                    "rpm_drift_ks{{metric=\"{}\"}} {ks:.6}",
                    escape_label(m.metric)
                );
            }
        }
    }
    out
}

fn push_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let flat = flatten(name);
    let _ = writeln!(out, "# TYPE rpm_{flat} histogram");
    let mut cumulative = 0u64;
    for &(upper, n) in &hist.buckets {
        cumulative += n;
        let _ = write!(out, "rpm_{flat}_bucket{{le=\"{upper}\"}} {cumulative}");
        // OpenMetrics-style exemplar: the latest *retained* trace whose
        // observation fell in this bucket, so the id always resolves
        // against the flight recorder (`/debug/traces`).
        if let Some(ex) = crate::trace::exemplar_for(name, upper) {
            let _ = write!(
                out,
                " # {{trace_id=\"{}\"}} {}",
                ex.trace_id.to_hex(),
                ex.value
            );
        }
        out.push('\n');
    }
    let _ = writeln!(out, "rpm_{flat}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "rpm_{flat}_sum {}", hist.sum);
    let _ = writeln!(out, "rpm_{flat}_count {}", hist.count);
}

/// `engine.jobs` → `engine_jobs`.
fn flatten(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

/// Splits a labeled-counter name on its trailing `.key=value` segment:
/// `cfs.survivors.class=3` → (`cfs.survivors`, Some(("class", "3"))).
/// Names without a `key=value` tail pass through unlabeled.
fn split_label(name: &str) -> (String, Option<(String, String)>) {
    if let Some(eq) = name.rfind('=') {
        if let Some(dot) = name[..eq].rfind('.') {
            let family = name[..dot].to_string();
            let key = flatten(&name[dot + 1..eq]);
            let value = name[eq + 1..].to_string();
            if !family.is_empty() && !key.is_empty() {
                return (family, Some((key, value)));
            }
        }
    }
    (name.to_string(), None)
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("engine.jobs", 12), ("mine.rules", 0)],
            gauges: vec![("engine.workers.max", 4)],
            cache: vec![("words", 7, 3, 0), ("grammar", 0, 0, 0)],
            histograms: vec![(
                "predict.latency_ns",
                HistogramSnapshot {
                    count: 3,
                    sum: 2100,
                    buckets: vec![(1024, 2), (2048, 1)],
                },
            )],
            labeled: vec![
                ("cfs.survivors.class=0".to_string(), 5),
                ("cfs.survivors.class=1".to_string(), 8),
            ],
        }
    }

    #[test]
    fn counters_gauges_and_caches_render() {
        let text = to_prometheus(&sample_snapshot());
        assert!(
            text.contains("# TYPE rpm_engine_jobs_total counter"),
            "{text}"
        );
        assert!(text.contains("rpm_engine_jobs_total 12"), "{text}");
        // Zero counters and idle cache families are skipped.
        assert!(!text.contains("mine_rules"), "{text}");
        assert!(!text.contains("family=\"grammar\""), "{text}");
        assert!(text.contains("rpm_engine_workers_max 4"), "{text}");
        assert!(
            text.contains("rpm_cache_hits_total{family=\"words\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("rpm_cache_misses_total{family=\"words\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn labeled_counters_split_into_labels() {
        let text = to_prometheus(&sample_snapshot());
        assert!(
            text.contains("rpm_cfs_survivors_total{class=\"0\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("rpm_cfs_survivors_total{class=\"1\"} 8"),
            "{text}"
        );
        // One TYPE line for the family, not one per label.
        assert_eq!(
            text.matches("# TYPE rpm_cfs_survivors_total").count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_and_count() {
        let text = to_prometheus(&sample_snapshot());
        assert!(
            text.contains("# TYPE rpm_predict_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("rpm_predict_latency_ns_bucket{le=\"1024\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("rpm_predict_latency_ns_bucket{le=\"2048\"} 3"),
            "cumulative, not per-bucket: {text}"
        );
        assert!(
            text.contains("rpm_predict_latency_ns_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("rpm_predict_latency_ns_sum 2100"), "{text}");
        assert!(text.contains("rpm_predict_latency_ns_count 3"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty_page() {
        assert_eq!(to_prometheus(&MetricsSnapshot::default()), "");
    }

    #[test]
    fn exemplar_annotations_attach_to_their_bucket() {
        let _g = crate::test_lock();
        crate::trace::clear_exemplars();
        let id = crate::trace::TraceId(0x1234_5678);
        // 5 ns falls in the (4, 8] rendered bucket.
        crate::trace::record_exemplar("serve.latency_ns", 5, id);
        let snap = MetricsSnapshot {
            histograms: vec![(
                "serve.latency_ns",
                HistogramSnapshot {
                    count: 2,
                    sum: 1005,
                    buckets: vec![(8, 1), (1024, 1)],
                },
            )],
            ..MetricsSnapshot::default()
        };
        let text = to_prometheus(&snap);
        assert!(
            text.contains(&format!(
                "rpm_serve_latency_ns_bucket{{le=\"8\"}} 1 # {{trace_id=\"{}\"}} 5",
                id.to_hex()
            )),
            "{text}"
        );
        // The bucket without a recorded exemplar renders bare.
        assert!(
            text.contains("rpm_serve_latency_ns_bucket{le=\"1024\"} 2\n"),
            "{text}"
        );
        crate::trace::clear_exemplars();
    }

    #[test]
    fn drift_reports_render_as_gauges() {
        use crate::drift::{DriftReport, DriftStatus, MetricDrift};
        // Unavailable renders nothing at all.
        assert_eq!(drift_to_prometheus(&DriftReport::unavailable()), "");

        let report = DriftReport {
            status: DriftStatus::Warn,
            live_samples: 120,
            reference_samples: 500,
            window_secs: 240,
            epoch_secs: 30,
            epochs: 8,
            warn: 0.2,
            page: 0.5,
            metrics: vec![
                MetricDrift {
                    metric: "match_distance",
                    psi: 0.31,
                    ks: Some(0.4),
                    verdict: DriftStatus::Warn,
                },
                MetricDrift {
                    metric: "class_mix",
                    psi: 0.01,
                    ks: None,
                    verdict: DriftStatus::Ok,
                },
            ],
        };
        let text = drift_to_prometheus(&report);
        assert!(text.contains("rpm_drift_status 3"), "{text}");
        assert!(text.contains("rpm_drift_samples 120"), "{text}");
        assert!(
            text.contains("rpm_drift_psi{metric=\"match_distance\"} 0.310000"),
            "{text}"
        );
        assert!(
            text.contains("rpm_drift_ks{metric=\"match_distance\"} 0.400000"),
            "{text}"
        );
        // The categorical mix has no KS series.
        assert!(
            !text.contains("rpm_drift_ks{metric=\"class_mix\"}"),
            "{text}"
        );
        assert_eq!(text.matches("# TYPE rpm_drift_psi gauge").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn split_label_handles_plain_names() {
        assert_eq!(
            split_label("plain.counter"),
            ("plain.counter".to_string(), None)
        );
        let (family, label) = split_label("cfs.survivors.class=3");
        assert_eq!(family, "cfs.survivors");
        assert_eq!(label, Some(("class".to_string(), "3".to_string())));
    }
}
