//! Model drift detection: training-time reference profiles and the
//! serving-time [`DriftMonitor`].
//!
//! The serving stack (PRs 3/6/7) watches *latency*; this module watches
//! *what the model is seeing and saying*. At the end of training the
//! classifier builds a [`ReferenceProfile`]: per-class log₂-bucket
//! distributions (the exact [`crate::metrics::Histogram`] bucketing) of
//! the winning match distance, the prediction margin, and input summary
//! statistics over the training set. The profile is persisted as an
//! optional CRC-checked section of the model file, so a served model
//! carries its own baseline.
//!
//! At serve time every classified request becomes a [`DriftSample`] fed
//! into a [`DriftMonitor`] — a ring of time-windowed sketch epochs
//! (default 8 × 30 s) accumulating the same distributions plus the
//! predicted-class mix. The hot path is a handful of relaxed atomic
//! increments; a Mutex is touched only on epoch rotation (once per
//! `epoch_secs` per slot) and never while scoring. On demand (scrapes,
//! `/debug/drift`, run reports) the live window is summed and scored
//! against the reference with PSI and a bucketed KS statistic.
//!
//! ## Scores
//!
//! * **PSI** (population stability index) over the shared buckets:
//!   `Σ (qᵢ − pᵢ)·ln(qᵢ/pᵢ)` with fractions clamped to ε = 1e-6.
//!   Identical distributions score 0; the classic rule of thumb reads
//!   < 0.1 as stable, 0.1–0.25 as moderate shift, and > 0.25 as a
//!   significant shift (our defaults: warn 0.2, page 0.5).
//! * **Bucketed KS**: `max |CDF_p(i) − CDF_q(i)|` over bucket upper
//!   bounds — 0 for identical, 1 for disjoint distributions. Because the
//!   CDFs are only evaluated at bucket boundaries the statistic is a
//!   lower bound on the exact KS distance. Not computed for the
//!   categorical class mix.
//!
//! Both scores are functions of the *summed* window counts, so the order
//! in which epochs are merged can never change a score (proven by
//! proptest in `tests/drift_props.rs`).

use crate::metrics::{bucket_index, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of continuous drift metrics tracked per class.
pub const N_DRIFT_METRICS: usize = 6;

/// Report/export names of the continuous drift metrics, index-aligned
/// with [`DriftSample::bucket_values`].
pub const DRIFT_METRIC_NAMES: [&str; N_DRIFT_METRICS] = [
    "match_distance",
    "margin",
    "length",
    "mean_abs",
    "stddev",
    "z_extreme",
];

/// Name of the categorical predicted-class-mix pseudo-metric.
pub const CLASS_MIX: &str = "class_mix";

const EMPTY_EPOCH: u64 = u64::MAX;
const PSI_EPS: f64 = 1e-6;

/// One classified series, reduced to the quantities the drift sketches
/// track. Produced at train time (over the training set) and at serve
/// time (per request).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftSample {
    /// Predicted class label.
    pub class: usize,
    /// Winning (argmin over all patterns) closest-match distance.
    pub best_distance: f64,
    /// Prediction margin: best distance of the runner-up class minus
    /// best distance of the winning class (≥ 0; small = unsure).
    pub margin: f64,
    /// Input length in samples.
    pub len: usize,
    /// Raw input mean (sketched as |mean|).
    pub mean: f64,
    /// Raw input standard deviation.
    pub stddev: f64,
    /// Largest |z-score| after z-normalization (max of |min z|, |max z|).
    pub z_extreme: f64,
}

/// Scales a non-negative statistic to millionths so unitless values fit
/// the integer log₂ buckets (same convention as the
/// `predict.match_distance` histogram). Negative or non-finite input
/// sketches as 0; the `as` cast saturates for huge values.
#[inline]
fn millionths(v: f64) -> u64 {
    if !v.is_finite() || v <= 0.0 {
        0
    } else {
        (v * 1e6).round() as u64
    }
}

impl DriftSample {
    /// The integer value per continuous metric, index-aligned with
    /// [`DRIFT_METRIC_NAMES`]: distances, moments, and z-extremes in
    /// millionths, the length raw.
    pub fn bucket_values(&self) -> [u64; N_DRIFT_METRICS] {
        [
            millionths(self.best_distance),
            millionths(self.margin),
            self.len as u64,
            millionths(self.mean.abs()),
            millionths(self.stddev),
            millionths(self.z_extreme),
        ]
    }
}

/// Per-class bucket counts of every continuous drift metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassSketch {
    /// Training samples of this (predicted) class.
    pub samples: u64,
    /// `hists[m][b]`: count of metric `m` observations in bucket `b`.
    pub hists: [[u64; HIST_BUCKETS]; N_DRIFT_METRICS],
}

impl ClassSketch {
    fn new() -> Self {
        Self {
            samples: 0,
            hists: [[0; HIST_BUCKETS]; N_DRIFT_METRICS],
        }
    }
}

/// The training-time baseline: per-predicted-class distributions of the
/// drift metrics over the training set. Persisted as the optional
/// `profile` section of model v2 files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReferenceProfile {
    classes: BTreeMap<usize, ClassSketch>,
}

impl ReferenceProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one training-set sample under its predicted class.
    pub fn observe(&mut self, sample: &DriftSample) {
        let sketch = self
            .classes
            .entry(sample.class)
            .or_insert_with(ClassSketch::new);
        sketch.samples += 1;
        for (m, &v) in sample.bucket_values().iter().enumerate() {
            sketch.hists[m][bucket_index(v)] += 1;
        }
    }

    /// Total samples across all classes.
    pub fn total_samples(&self) -> u64 {
        self.classes.values().map(|c| c.samples).sum()
    }

    /// Class labels in ascending order.
    pub fn class_labels(&self) -> Vec<usize> {
        self.classes.keys().copied().collect()
    }

    /// Per-class sketches in label order.
    pub fn sketches(&self) -> impl Iterator<Item = (usize, &ClassSketch)> {
        self.classes.iter().map(|(&l, s)| (l, s))
    }

    /// The all-classes bucket counts of one continuous metric.
    pub fn global_hist(&self, metric: usize) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for sketch in self.classes.values() {
            for (b, &n) in sketch.hists[metric].iter().enumerate() {
                out[b] += n;
            }
        }
        out
    }

    /// Predicted-class sample counts aligned with [`class_labels`]
    /// order, plus a trailing 0 slot for labels outside the reference
    /// (live traffic can predict them, training by construction cannot).
    ///
    /// [`class_labels`]: ReferenceProfile::class_labels
    pub fn class_mix(&self) -> Vec<u64> {
        let mut mix: Vec<u64> = self.classes.values().map(|c| c.samples).collect();
        mix.push(0);
        mix
    }

    /// Serializes the profile as tagged lines for the model-file
    /// `profile` section: one `profile-class` line per class followed by
    /// sparse `profile-hist` lines (`bucket:count` pairs, empty
    /// histograms omitted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, sketch) in &self.classes {
            let _ = writeln!(out, "profile-class {label} {}", sketch.samples);
            for (m, hist) in sketch.hists.iter().enumerate() {
                if hist.iter().all(|&n| n == 0) {
                    continue;
                }
                let _ = write!(out, "profile-hist {label} {}", DRIFT_METRIC_NAMES[m]);
                for (b, &n) in hist.iter().enumerate() {
                    if n > 0 {
                        let _ = write!(out, " {b}:{n}");
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parses what [`render`] produced. Unknown tags, malformed pairs,
    /// out-of-range buckets, and hist lines for undeclared classes are
    /// errors (the payload is CRC-protected, so damage means a bug, not
    /// line noise).
    ///
    /// [`render`]: ReferenceProfile::render
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut profile = Self::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_ascii_whitespace();
            match fields.next() {
                Some("profile-class") => {
                    let label: usize = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("profile-class without a label: {line}"))?;
                    let samples: u64 = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("profile-class without a count: {line}"))?;
                    let sketch = profile
                        .classes
                        .entry(label)
                        .or_insert_with(ClassSketch::new);
                    sketch.samples = samples;
                }
                Some("profile-hist") => {
                    let label: usize = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("profile-hist without a label: {line}"))?;
                    let name = fields
                        .next()
                        .ok_or_else(|| format!("profile-hist without a metric: {line}"))?;
                    let metric = DRIFT_METRIC_NAMES
                        .iter()
                        .position(|n| *n == name)
                        .ok_or_else(|| format!("unknown drift metric {name:?}"))?;
                    let sketch = profile
                        .classes
                        .get_mut(&label)
                        .ok_or_else(|| format!("profile-hist for undeclared class {label}"))?;
                    for pair in fields {
                        let (b, n) = pair
                            .split_once(':')
                            .ok_or_else(|| format!("malformed bucket pair {pair:?}"))?;
                        let b: usize = b
                            .parse()
                            .map_err(|_| format!("malformed bucket index {pair:?}"))?;
                        let n: u64 = n
                            .parse()
                            .map_err(|_| format!("malformed bucket count {pair:?}"))?;
                        if b >= HIST_BUCKETS {
                            return Err(format!("bucket index {b} out of range"));
                        }
                        sketch.hists[metric][b] = n;
                    }
                }
                Some(other) => return Err(format!("unknown profile tag {other:?}")),
                None => {}
            }
        }
        Ok(profile)
    }

    /// True when no class holds any sample (nothing to score against).
    pub fn is_empty(&self) -> bool {
        self.total_samples() == 0
    }
}

// --- scores ---------------------------------------------------------------

/// Population stability index between two bucket-count vectors
/// (reference `p`, live `q`). Fractions are clamped to ε = 1e-6 so
/// empty buckets contribute a finite penalty. Returns 0 when either
/// side is entirely empty (no evidence, no drift).
pub fn psi(p: &[u64], q: &[u64]) -> f64 {
    let tp: u64 = p.iter().sum();
    let tq: u64 = q.iter().sum();
    if tp == 0 || tq == 0 {
        return 0.0;
    }
    let n = p.len().max(q.len());
    let mut score = 0.0;
    for i in 0..n {
        let pi = (p.get(i).copied().unwrap_or(0) as f64 / tp as f64).max(PSI_EPS);
        let qi = (q.get(i).copied().unwrap_or(0) as f64 / tq as f64).max(PSI_EPS);
        score += (qi - pi) * (qi / pi).ln();
    }
    score
}

/// Bucketed Kolmogorov–Smirnov statistic: the largest absolute CDF
/// difference evaluated at bucket boundaries. In [0, 1]; 0 when either
/// side is empty.
pub fn ks(p: &[u64], q: &[u64]) -> f64 {
    let tp: u64 = p.iter().sum();
    let tq: u64 = q.iter().sum();
    if tp == 0 || tq == 0 {
        return 0.0;
    }
    let n = p.len().max(q.len());
    let (mut cp, mut cq, mut worst) = (0u64, 0u64, 0.0f64);
    for i in 0..n {
        cp += p.get(i).copied().unwrap_or(0);
        cq += q.get(i).copied().unwrap_or(0);
        let d = (cp as f64 / tp as f64 - cq as f64 / tq as f64).abs();
        worst = worst.max(d);
    }
    worst
}

// --- monitor --------------------------------------------------------------

/// Drift-monitor knobs: window shape and PSI thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftConfig {
    /// Ring slots: the live window covers `epochs × epoch_secs`.
    pub epochs: usize,
    /// Seconds per epoch slot.
    pub epoch_secs: u64,
    /// PSI at or above this on any metric → verdict `warn`.
    pub warn: f64,
    /// PSI at or above this on any metric → verdict `page` and a
    /// `degraded` `/healthz` payload (liveness still 200).
    pub page: f64,
    /// Below this many live samples in the window the monitor reports
    /// `warming` instead of scoring noise.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            epoch_secs: 30,
            warn: 0.2,
            page: 0.5,
            min_samples: 50,
        }
    }
}

/// One ring slot: the sketches of a single `epoch_secs` time window.
struct Epoch {
    /// Epoch sequence number occupying this slot ([`EMPTY_EPOCH`] =
    /// never written).
    seq: AtomicU64,
    samples: AtomicU64,
    hists: [[AtomicU64; HIST_BUCKETS]; N_DRIFT_METRICS],
    /// Reference-class order plus one trailing slot for labels the
    /// reference never saw.
    class_counts: Vec<AtomicU64>,
}

impl Epoch {
    fn new(n_classes: usize) -> Self {
        Self {
            seq: AtomicU64::new(EMPTY_EPOCH),
            samples: AtomicU64::new(0),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            class_counts: (0..n_classes + 1).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn clear(&self) {
        self.samples.store(0, Ordering::Relaxed);
        for hist in &self.hists {
            for b in hist {
                b.store(0, Ordering::Relaxed);
            }
        }
        for c in &self.class_counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Drift state of one metric (or of the whole monitor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftStatus {
    /// No monitor attached / model carries no reference profile.
    Unavailable,
    /// Too few live samples in the window to score.
    Warming,
    /// All scores below the warn threshold.
    Ok,
    /// Some PSI at or above the warn threshold.
    Warn,
    /// Some PSI at or above the page threshold (`/healthz` degrades).
    Page,
}

impl DriftStatus {
    /// Stable lowercase name used in JSON, exposition, and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Unavailable => "unavailable",
            Self::Warming => "warming",
            Self::Ok => "ok",
            Self::Warn => "warn",
            Self::Page => "page",
        }
    }

    /// Parses what [`as_str`] produced.
    ///
    /// [`as_str`]: DriftStatus::as_str
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "unavailable" => Some(Self::Unavailable),
            "warming" => Some(Self::Warming),
            "ok" => Some(Self::Ok),
            "warn" => Some(Self::Warn),
            "page" => Some(Self::Page),
            _ => None,
        }
    }
}

impl std::fmt::Display for DriftStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scored metric in a [`DriftReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDrift {
    /// Metric name ([`DRIFT_METRIC_NAMES`] or [`CLASS_MIX`]).
    pub metric: &'static str,
    /// PSI of live vs. reference.
    pub psi: f64,
    /// Bucketed KS statistic (absent for the categorical class mix).
    pub ks: Option<f64>,
    /// Per-metric verdict from the PSI thresholds.
    pub verdict: DriftStatus,
}

/// Point-in-time drift assessment: the live window scored against the
/// reference profile.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftReport {
    /// Overall verdict (worst per-metric verdict, or
    /// `Warming`/`Unavailable`).
    pub status: DriftStatus,
    /// Live samples inside the scoring window.
    pub live_samples: u64,
    /// Training samples behind the reference profile.
    pub reference_samples: u64,
    /// Window span in seconds (`epochs × epoch_secs`).
    pub window_secs: u64,
    /// Seconds per epoch slot.
    pub epoch_secs: u64,
    /// Ring slots.
    pub epochs: usize,
    /// Configured warn threshold.
    pub warn: f64,
    /// Configured page threshold.
    pub page: f64,
    /// Per-metric scores (empty while unavailable).
    pub metrics: Vec<MetricDrift>,
}

impl DriftReport {
    /// The report emitted when no monitor (or no profile) is attached.
    pub fn unavailable() -> Self {
        Self {
            status: DriftStatus::Unavailable,
            live_samples: 0,
            reference_samples: 0,
            window_secs: 0,
            epoch_secs: 0,
            epochs: 0,
            warn: 0.0,
            page: 0.0,
            metrics: Vec::new(),
        }
    }

    /// Largest PSI across metrics (0 when none).
    pub fn max_psi(&self) -> f64 {
        self.metrics.iter().map(|m| m.psi).fold(0.0, f64::max)
    }

    /// Whether this verdict should degrade `/healthz`.
    pub fn degraded(&self) -> bool {
        self.status == DriftStatus::Page
    }

    /// The report's JSON fields, brace-less, for embedding (the
    /// `/debug/drift` body and the run report's `drift` line share it).
    pub fn to_json_fields(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "\"status\":\"{}\",\"live_samples\":{},\"reference_samples\":{},\
             \"window_secs\":{},\"epoch_secs\":{},\"epochs\":{},\
             \"warn\":{:.6},\"page\":{:.6},\"metrics\":[",
            self.status,
            self.live_samples,
            self.reference_samples,
            self.window_secs,
            self.epoch_secs,
            self.epochs,
            self.warn,
            self.page,
        );
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"metric\":\"{}\",\"psi\":{:.6},", m.metric, m.psi);
            match m.ks {
                Some(ks) => {
                    let _ = write!(out, "\"ks\":{ks:.6},");
                }
                None => out.push_str("\"ks\":null,"),
            }
            let _ = write!(out, "\"verdict\":\"{}\"}}", m.verdict);
        }
        out.push(']');
        out
    }

    /// The full JSON object served by `GET /debug/drift`.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.to_json_fields())
    }
}

/// Lock-light online drift sketcher: a ring of [`Epoch`] slots fed by
/// every classified request and scored on demand against a
/// [`ReferenceProfile`].
pub struct DriftMonitor {
    reference_samples: u64,
    ref_hists: [[u64; HIST_BUCKETS]; N_DRIFT_METRICS],
    ref_mix: Vec<u64>,
    classes: Vec<usize>,
    config: DriftConfig,
    start_ns: u64,
    epoch_ns: u64,
    ring: Vec<Epoch>,
    rotate: Mutex<()>,
}

impl DriftMonitor {
    /// Builds a monitor scoring against `reference` with the given
    /// window shape and thresholds.
    pub fn new(reference: &ReferenceProfile, config: DriftConfig) -> Self {
        let classes = reference.class_labels();
        let epochs = config.epochs.max(1);
        Self {
            reference_samples: reference.total_samples(),
            ref_hists: std::array::from_fn(|m| reference.global_hist(m)),
            ref_mix: reference.class_mix(),
            ring: (0..epochs).map(|_| Epoch::new(classes.len())).collect(),
            classes,
            config: DriftConfig { epochs, ..config },
            start_ns: crate::now_ns(),
            epoch_ns: config.epoch_secs.max(1).saturating_mul(1_000_000_000),
            rotate: Mutex::new(()),
        }
    }

    /// The thresholds and window shape this monitor runs with.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Records one classified request (a few relaxed atomic adds; the
    /// rotation lock is taken only on the first observation of a new
    /// epoch per slot).
    pub fn observe(&self, sample: &DriftSample) {
        self.observe_at(sample, crate::now_ns());
    }

    /// [`observe`] with an explicit clock — the test/replay seam.
    ///
    /// A straggler that loads a slot's sequence just before rotation can
    /// land its counts in the successor epoch; drift sketches tolerate
    /// that off-by-one-window blur by design.
    ///
    /// [`observe`]: DriftMonitor::observe
    pub fn observe_at(&self, sample: &DriftSample, now_ns: u64) {
        let seq = now_ns.saturating_sub(self.start_ns) / self.epoch_ns;
        let slot = (seq % self.ring.len() as u64) as usize;
        let epoch = &self.ring[slot];
        if epoch.seq.load(Ordering::Acquire) != seq {
            let _g = self.rotate.lock().unwrap_or_else(|e| e.into_inner());
            if epoch.seq.load(Ordering::Acquire) != seq {
                epoch.clear();
                epoch.seq.store(seq, Ordering::Release);
            }
        }
        epoch.samples.fetch_add(1, Ordering::Relaxed);
        for (m, &v) in sample.bucket_values().iter().enumerate() {
            epoch.hists[m][bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
        let class_idx = self
            .classes
            .iter()
            .position(|&c| c == sample.class)
            .unwrap_or(self.classes.len());
        epoch.class_counts[class_idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Scores the current live window against the reference.
    pub fn report(&self) -> DriftReport {
        self.report_at(crate::now_ns())
    }

    /// [`report`] with an explicit clock — the test/replay seam.
    ///
    /// [`report`]: DriftMonitor::report
    pub fn report_at(&self, now_ns: u64) -> DriftReport {
        let now_seq = now_ns.saturating_sub(self.start_ns) / self.epoch_ns;
        let mut live = [[0u64; HIST_BUCKETS]; N_DRIFT_METRICS];
        let mut mix = vec![0u64; self.classes.len() + 1];
        let mut samples = 0u64;
        for epoch in &self.ring {
            let seq = epoch.seq.load(Ordering::Acquire);
            if seq == EMPTY_EPOCH || now_seq.saturating_sub(seq) >= self.ring.len() as u64 {
                continue;
            }
            samples += epoch.samples.load(Ordering::Relaxed);
            for (m, hist) in epoch.hists.iter().enumerate() {
                for (b, n) in hist.iter().enumerate() {
                    live[m][b] += n.load(Ordering::Relaxed);
                }
            }
            for (c, n) in epoch.class_counts.iter().enumerate() {
                mix[c] += n.load(Ordering::Relaxed);
            }
        }
        let mut report = DriftReport {
            status: DriftStatus::Ok,
            live_samples: samples,
            reference_samples: self.reference_samples,
            window_secs: self.ring.len() as u64 * self.config.epoch_secs,
            epoch_secs: self.config.epoch_secs,
            epochs: self.ring.len(),
            warn: self.config.warn,
            page: self.config.page,
            metrics: Vec::with_capacity(N_DRIFT_METRICS + 1),
        };
        if self.reference_samples == 0 {
            report.status = DriftStatus::Unavailable;
            return report;
        }
        if samples < self.config.min_samples {
            report.status = DriftStatus::Warming;
            return report;
        }
        let verdict_of = |score: f64| {
            if score >= self.config.page {
                DriftStatus::Page
            } else if score >= self.config.warn {
                DriftStatus::Warn
            } else {
                DriftStatus::Ok
            }
        };
        for m in 0..N_DRIFT_METRICS {
            let score = psi(&self.ref_hists[m], &live[m]);
            report.metrics.push(MetricDrift {
                metric: DRIFT_METRIC_NAMES[m],
                psi: score,
                ks: Some(ks(&self.ref_hists[m], &live[m])),
                verdict: verdict_of(score),
            });
        }
        let mix_psi = psi(&self.ref_mix, &mix);
        report.metrics.push(MetricDrift {
            metric: CLASS_MIX,
            psi: mix_psi,
            ks: None,
            verdict: verdict_of(mix_psi),
        });
        report.status = report
            .metrics
            .iter()
            .map(|m| m.verdict)
            .max()
            .unwrap_or(DriftStatus::Ok);
        report
    }
}

// --- process-global monitor -----------------------------------------------

fn monitor_slot() -> &'static Mutex<Option<Arc<DriftMonitor>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<DriftMonitor>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Attaches `monitor` process-globally so the HTTP endpoints, the
/// Prometheus exposition, and run reports can reach it.
pub fn install_monitor(monitor: Arc<DriftMonitor>) {
    if let Ok(mut slot) = monitor_slot().lock() {
        *slot = Some(monitor);
    }
}

/// Detaches the global monitor (drift reports `unavailable` again).
pub fn clear_monitor() {
    if let Ok(mut slot) = monitor_slot().lock() {
        *slot = None;
    }
}

/// The globally attached monitor, if any.
pub fn monitor() -> Option<Arc<DriftMonitor>> {
    monitor_slot().lock().ok().and_then(|slot| slot.clone())
}

/// Scores the global monitor, or [`DriftReport::unavailable`] when none
/// is attached.
pub fn current_report() -> DriftReport {
    monitor().map_or_else(DriftReport::unavailable, |m| m.report())
}

fn fingerprint_slot() -> &'static Mutex<Option<String>> {
    static SLOT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Publishes the served model's fingerprint (the CRC-32 of its file)
/// for `/healthz`; `None` clears it.
pub fn set_model_fingerprint(fingerprint: Option<String>) {
    if let Ok(mut slot) = fingerprint_slot().lock() {
        *slot = fingerprint;
    }
}

/// The published model fingerprint, if a server set one.
pub fn model_fingerprint() -> Option<String> {
    fingerprint_slot().lock().ok().and_then(|slot| slot.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(class: usize, distance: f64) -> DriftSample {
        DriftSample {
            class,
            best_distance: distance,
            margin: distance / 2.0,
            len: 96,
            mean: 0.1,
            stddev: 1.0,
            z_extreme: 2.5,
        }
    }

    #[test]
    fn psi_closed_forms() {
        // Identical distributions score exactly 0.
        assert_eq!(psi(&[10, 30, 60], &[10, 30, 60]), 0.0);
        // Same shape, different mass: still 0.
        assert!(psi(&[1, 3, 6], &[10, 30, 60]).abs() < 1e-12);
        // Hand-computed: p = [.5, .5], q = [.25, .75] →
        // (.25-.5)ln(.25/.5) + (.75-.5)ln(.75/.5) = .25·ln3 ≈ 0.274653.
        let got = psi(&[50, 50], &[25, 75]);
        assert!((got - 0.25 * 3.0f64.ln()).abs() < 1e-12, "psi = {got}");
        // Disjoint distributions blow past any sane threshold.
        assert!(psi(&[100, 0], &[0, 100]) > 10.0);
        // Either side empty: no evidence, no drift.
        assert_eq!(psi(&[0, 0], &[5, 5]), 0.0);
        assert_eq!(psi(&[5, 5], &[0, 0]), 0.0);
        // Symmetric in magnitude for swapped arguments (PSI is symmetric).
        let a = psi(&[50, 50], &[25, 75]);
        let b = psi(&[25, 75], &[50, 50]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn ks_closed_forms() {
        assert_eq!(ks(&[10, 30, 60], &[10, 30, 60]), 0.0);
        // p = [.5, .5], q = [.25, .75]: CDF gap after bucket 0 is 0.25.
        assert!((ks(&[50, 50], &[25, 75]) - 0.25).abs() < 1e-12);
        // Disjoint → 1.
        assert_eq!(ks(&[100, 0], &[0, 100]), 1.0);
        assert_eq!(ks(&[0], &[7]), 0.0);
    }

    #[test]
    fn profile_render_parse_round_trip() {
        let mut profile = ReferenceProfile::new();
        for i in 0..40 {
            profile.observe(&sample(i % 3, 0.5 + i as f64 * 0.01));
        }
        assert_eq!(profile.total_samples(), 40);
        assert_eq!(profile.class_labels(), vec![0, 1, 2]);
        let text = profile.render();
        let parsed = ReferenceProfile::parse(&text).expect("round trip");
        assert_eq!(parsed, profile);
        // The mix carries a trailing slot for unseen labels.
        assert_eq!(profile.class_mix(), vec![14, 13, 13, 0]);
    }

    #[test]
    fn profile_parse_rejects_damage() {
        assert!(ReferenceProfile::parse("profile-what 1 2").is_err());
        assert!(ReferenceProfile::parse("profile-class x 2").is_err());
        assert!(ReferenceProfile::parse("profile-hist 1 match_distance 0:1").is_err());
        assert!(ReferenceProfile::parse("profile-class 1 2\nprofile-hist 1 bogus 0:1").is_err());
        assert!(ReferenceProfile::parse("profile-class 1 2\nprofile-hist 1 margin 99:1").is_err());
        assert!(ReferenceProfile::parse("").unwrap().is_empty());
    }

    #[test]
    fn monitor_scores_clean_traffic_ok_and_shifted_traffic_page() {
        let mut profile = ReferenceProfile::new();
        for i in 0..200 {
            profile.observe(&sample(i % 2, 0.5 + (i % 10) as f64 * 0.01));
        }
        let config = DriftConfig {
            min_samples: 50,
            ..DriftConfig::default()
        };
        let monitor = DriftMonitor::new(&profile, config);
        let t0 = crate::now_ns();

        // Clean replay: same distribution → ok, PSI ~ 0.
        for i in 0..100 {
            monitor.observe_at(&sample(i % 2, 0.5 + (i % 10) as f64 * 0.01), t0);
        }
        let report = monitor.report_at(t0);
        assert_eq!(report.status, DriftStatus::Ok, "{report:?}");
        assert!(report.max_psi() < 0.05, "max psi = {}", report.max_psi());
        assert_eq!(report.live_samples, 100);
        assert_eq!(report.metrics.len(), N_DRIFT_METRICS + 1);

        // Amplitude-shifted traffic: distances land buckets away.
        let monitor = DriftMonitor::new(&profile, config);
        for i in 0..100 {
            monitor.observe_at(&sample(i % 2, 40.0 + (i % 10) as f64), t0);
        }
        let report = monitor.report_at(t0);
        assert_eq!(report.status, DriftStatus::Page, "{report:?}");
        let dist = report
            .metrics
            .iter()
            .find(|m| m.metric == "match_distance")
            .expect("match_distance scored");
        assert!(dist.psi > config.page, "psi = {}", dist.psi);
        assert!(dist.ks.unwrap() > 0.9);
        assert!(report.degraded());
    }

    #[test]
    fn monitor_warms_up_and_expires_old_epochs() {
        let mut profile = ReferenceProfile::new();
        for _ in 0..100 {
            profile.observe(&sample(0, 1.0));
        }
        let config = DriftConfig {
            epochs: 4,
            epoch_secs: 1,
            min_samples: 10,
            ..DriftConfig::default()
        };
        let monitor = DriftMonitor::new(&profile, config);
        let t0 = crate::now_ns();
        for _ in 0..9 {
            monitor.observe_at(&sample(0, 1.0), t0);
        }
        assert_eq!(monitor.report_at(t0).status, DriftStatus::Warming);
        monitor.observe_at(&sample(0, 1.0), t0);
        assert_eq!(monitor.report_at(t0).status, DriftStatus::Ok);

        // Four epoch lengths later the window has slid past every
        // sample: back to warming with zero live samples.
        let later = t0 + 5 * 1_000_000_000;
        let report = monitor.report_at(later);
        assert_eq!(report.status, DriftStatus::Warming);
        assert_eq!(report.live_samples, 0);

        // A slot is recycled for a new epoch without leaking old counts.
        monitor.observe_at(&sample(0, 1.0), later);
        let report = monitor.report_at(later);
        assert_eq!(report.live_samples, 1);
    }

    #[test]
    fn unseen_class_labels_shift_the_mix() {
        let mut profile = ReferenceProfile::new();
        for _ in 0..100 {
            profile.observe(&sample(3, 1.0));
        }
        let monitor = DriftMonitor::new(
            &profile,
            DriftConfig {
                min_samples: 10,
                ..DriftConfig::default()
            },
        );
        let t0 = crate::now_ns();
        // Live traffic predicts a label the reference never produced.
        for _ in 0..50 {
            monitor.observe_at(&sample(7, 1.0), t0);
        }
        let report = monitor.report_at(t0);
        let mix = report
            .metrics
            .iter()
            .find(|m| m.metric == CLASS_MIX)
            .expect("class mix scored");
        assert!(mix.psi > 1.0, "mix psi = {}", mix.psi);
        assert_eq!(mix.ks, None);
    }

    #[test]
    fn empty_reference_reports_unavailable() {
        let monitor = DriftMonitor::new(&ReferenceProfile::new(), DriftConfig::default());
        monitor.observe(&sample(0, 1.0));
        assert_eq!(monitor.report().status, DriftStatus::Unavailable);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = DriftReport::unavailable();
        assert_eq!(
            report.to_json(),
            "{\"status\":\"unavailable\",\"live_samples\":0,\"reference_samples\":0,\
             \"window_secs\":0,\"epoch_secs\":0,\"epochs\":0,\
             \"warn\":0.000000,\"page\":0.000000,\"metrics\":[]}"
        );
        let mut profile = ReferenceProfile::new();
        for _ in 0..100 {
            profile.observe(&sample(0, 1.0));
        }
        let monitor = DriftMonitor::new(
            &profile,
            DriftConfig {
                min_samples: 1,
                ..DriftConfig::default()
            },
        );
        monitor.observe(&sample(0, 1.0));
        let json = monitor.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"metric\":\"match_distance\""), "{json}");
        assert!(json.contains("\"ks\":null"), "{json}");
        assert!(json.contains("\"status\":\"ok\""), "{json}");
    }

    #[test]
    fn global_monitor_install_and_clear() {
        let _g = crate::test_lock();
        clear_monitor();
        assert_eq!(current_report().status, DriftStatus::Unavailable);
        let mut profile = ReferenceProfile::new();
        for _ in 0..100 {
            profile.observe(&sample(0, 1.0));
        }
        install_monitor(Arc::new(DriftMonitor::new(
            &profile,
            DriftConfig::default(),
        )));
        assert_eq!(current_report().status, DriftStatus::Warming);
        clear_monitor();
        assert_eq!(current_report().status, DriftStatus::Unavailable);

        set_model_fingerprint(Some("deadbeef".into()));
        assert_eq!(model_fingerprint().as_deref(), Some("deadbeef"));
        set_model_fingerprint(None);
        assert_eq!(model_fingerprint(), None);
    }
}
