//! Structured progress logging: the replacement for ad-hoc
//! `println!`/`eprintln!` progress lines in binaries and the bench
//! harness. Events go to stderr immediately (result tables keep stdout to
//! themselves) and into a bounded in-memory buffer so the end-of-run
//! JSONL report can replay them.

use std::sync::{Mutex, OnceLock};

/// Events kept for the JSONL report; beyond this the buffer stops
/// growing (stderr output continues) so unbounded streaming loops cannot
/// exhaust memory.
const BUFFER_CAP: usize = 65_536;

/// One structured log event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEvent {
    /// Nanoseconds since the observability epoch.
    pub t_ns: u64,
    /// `"info"` or `"debug"`.
    pub level: &'static str,
    /// Component emitting the event (e.g. `suite`, `repro`, `cli`).
    pub target: String,
    /// Formatted message.
    pub message: String,
    /// The request trace this event belongs to (32-hex trace id), when
    /// it was emitted on a traced serving path.
    pub trace: Option<String>,
}

fn buffer() -> &'static Mutex<Vec<LogEvent>> {
    static BUFFER: OnceLock<Mutex<Vec<LogEvent>>> = OnceLock::new();
    BUFFER.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one event: prints it to stderr and buffers it for the run
/// report. Callers normally go through the [`info!`](crate::info) /
/// [`debug!`](crate::debug) macros, which also gate on the level.
pub fn log(level: &'static str, target: &str, message: String) {
    log_traced(level, target, None, message);
}

/// [`log`] with a request trace id attached; the serving path uses this
/// so a grep for one trace id finds its log lines, its `/debug/traces`
/// record, and its report `"trace"` line together.
pub fn log_traced(level: &'static str, target: &str, trace: Option<String>, message: String) {
    if !crate::enabled() {
        return;
    }
    let t_ns = crate::now_ns();
    match &trace {
        Some(id) => eprintln!(
            "[{:9.3}s {level}] {target}: {message} trace={id}",
            t_ns as f64 / 1e9
        ),
        None => eprintln!("[{:9.3}s {level}] {target}: {message}", t_ns as f64 / 1e9),
    }
    if let Ok(mut events) = buffer().lock() {
        if events.len() < BUFFER_CAP {
            events.push(LogEvent {
                t_ns,
                level,
                target: target.to_string(),
                message,
                trace,
            });
        }
    }
}

/// Drains the buffered events (used by `report::finish`).
pub fn take() -> Vec<LogEvent> {
    buffer()
        .lock()
        .map(|mut events| std::mem::take(&mut *events))
        .unwrap_or_default()
}

/// Copies the buffered events without draining.
pub fn peek() -> Vec<LogEvent> {
    buffer()
        .lock()
        .map(|events| events.clone())
        .unwrap_or_default()
}

/// Logs a progress event at summary level:
/// `rpm_obs::info!("suite", "dataset {} done", name)`. No-op while
/// observability is off.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::logger::log("info", $target, format!($($arg)*));
        }
    };
}

/// Logs a debug event, recorded only at [`ObsLevel::Debug`](crate::ObsLevel).
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::debug_enabled() {
            $crate::logger::log("debug", $target, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, ObsLevel};

    #[test]
    fn events_gate_on_level_and_buffer() {
        let _g = crate::test_lock();
        ObsConfig::default().install();
        take();
        crate::info!("test", "invisible {}", 1);
        assert!(take().is_empty());

        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        crate::info!("test", "visible {}", 2);
        crate::debug!("test", "still invisible");
        let events = peek();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].level, "info");
        assert_eq!(events[0].target, "test");
        assert_eq!(events[0].message, "visible 2");

        ObsConfig {
            level: ObsLevel::Debug,
            json_path: None,
            http_addr: None,
        }
        .install();
        crate::debug!("test", "now visible");
        let events = take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].level, "debug");
        assert!(take().is_empty(), "take drains");
        ObsConfig::default().install();
    }

    #[test]
    fn traced_events_carry_the_trace_id() {
        let _g = crate::test_lock();
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        take();
        log_traced(
            "info",
            "serve",
            Some("4bf92f3577b34da6a3ce929d0e0e4736".to_string()),
            "deadline missed".to_string(),
        );
        crate::info!("serve", "untraced");
        let events = take();
        assert_eq!(
            events[0].trace.as_deref(),
            Some("4bf92f3577b34da6a3ce929d0e0e4736")
        );
        assert_eq!(events[1].trace, None);
        ObsConfig::default().install();
    }
}
