//! Span timers: RAII guards measuring one pipeline stage each.
//!
//! A span is entered with [`enter`] (or the `span!` macro) and recorded
//! when its guard drops. Nesting is tracked per thread: each thread keeps
//! its own stack of open span names, so a stage entered inside another
//! stage records the path `outer/inner`. Finished records accumulate in a
//! per-thread buffer and are flushed to the global collector whenever the
//! thread's stack unwinds to empty — one lock acquisition per top-level
//! stage, never one per span. The report layer merges records *by path*,
//! which is commutative, so the aggregated stage tree is identical no
//! matter how the scoped worker threads interleave. Spans only observe;
//! they never feed back into the computation, so instrumented training
//! runs stay bit-identical to uninstrumented ones.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Full nesting path, `/`-joined (e.g. `train/params/eval`).
    pub path: String,
    /// The span's own name (last path segment).
    pub name: &'static str,
    /// Nesting depth on its thread (0 = top-level stage).
    pub depth: u32,
    /// Ordinal of the recording thread (0 = first thread that recorded).
    pub thread: u64,
    /// Start, in nanoseconds since the observability epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End timestamp (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct ThreadState {
    ordinal: u64,
    stack: Vec<&'static str>,
    done: Vec<SpanRecord>,
}

impl ThreadState {
    fn new() -> Self {
        Self {
            ordinal: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            done: Vec::new(),
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // A worker thread exiting with buffered records (possible only if
        // a guard was leaked) still contributes them.
        if !self.done.is_empty() {
            flush(&mut self.done);
        }
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn flush(buffer: &mut Vec<SpanRecord>) {
    if let Ok(mut all) = collector().lock() {
        all.append(buffer);
    } else {
        buffer.clear();
    }
}

/// RAII guard for one span; the stage is recorded when it drops. Guards
/// must drop in LIFO order on their thread (the natural order of nested
/// scopes) — do not `mem::forget` one or move it to another thread.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

/// Opens a span named `name`. Returns an inert guard (no clock read, no
/// allocation, no lock) unless span recording is enabled.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::spans_enabled() {
        return SpanGuard {
            name,
            start_ns: 0,
            active: false,
        };
    }
    let start_ns = crate::now_ns();
    STATE.with(|s| s.borrow_mut().stack.push(name));
    SpanGuard {
        name,
        start_ns,
        active: true,
    }
}

/// Opens a span: `let _guard = rpm_obs::span!("stage");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = crate::now_ns();
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            // Unwind to this guard's own frame; intermediate names can
            // only linger if a nested guard was leaked.
            while let Some(top) = st.stack.pop() {
                if top == self.name {
                    break;
                }
            }
            let depth = st.stack.len() as u32;
            let path = if st.stack.is_empty() {
                self.name.to_string()
            } else {
                let mut p = st.stack.join("/");
                p.push('/');
                p.push_str(self.name);
                p
            };
            let record = SpanRecord {
                path,
                name: self.name,
                depth,
                thread: st.ordinal,
                start_ns: self.start_ns,
                dur_ns: end_ns.saturating_sub(self.start_ns),
            };
            st.done.push(record);
            if st.stack.is_empty() {
                let mut drained = std::mem::take(&mut st.done);
                flush(&mut drained);
            }
        });
    }
}

/// Copies every recorded span without draining (used by
/// `report::snapshot`).
pub fn peek_records() -> Vec<SpanRecord> {
    let mut out = collector().lock().map(|v| v.clone()).unwrap_or_default();
    STATE.with(|s| {
        out.extend(s.borrow().done.iter().cloned());
    });
    out
}

/// Drains every recorded span: the global collector plus the calling
/// thread's unflushed buffer (useful when the caller still holds open
/// spans). Called by `report::finish`.
pub fn take_records() -> Vec<SpanRecord> {
    let mut out = collector()
        .lock()
        .map(|mut v| std::mem::take(&mut *v))
        .unwrap_or_default();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        out.append(&mut st.done);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, ObsLevel};

    fn with_spans_on<T>(f: impl FnOnce() -> T) -> T {
        // Tests in this crate share the global level; serialize them.
        let _g = crate::test_lock();
        ObsConfig {
            level: ObsLevel::Spans,
            json_path: None,
            http_addr: None,
        }
        .install();
        take_records(); // drop stale records from other tests
        let out = f();
        ObsConfig::default().install();
        out
    }

    #[test]
    fn nested_spans_record_paths_and_order() {
        let records = with_spans_on(|| {
            {
                let _a = enter("outer");
                {
                    let _b = enter("inner");
                    let _c = enter("leaf");
                }
                let _d = enter("sibling");
            }
            take_records()
        });
        let paths: Vec<&str> = records.iter().map(|r| r.path.as_str()).collect();
        // Completion (drop) order: leaf, inner, sibling, outer.
        assert_eq!(
            paths,
            vec!["outer/inner/leaf", "outer/inner", "outer/sibling", "outer"]
        );
        let outer = records.last().unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(records[0].depth, 2);
        // A parent starts no later and ends no earlier than its children.
        for child in &records[..3] {
            assert!(outer.start_ns <= child.start_ns, "{child:?}");
            assert!(outer.end_ns() >= child.end_ns(), "{child:?}");
            assert_eq!(child.thread, outer.thread);
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        // Default level is Off in this scope.
        let records = with_spans_on(|| {
            ObsConfig::default().install();
            {
                let _a = enter("ghost");
            }
            take_records()
        });
        assert!(records.is_empty(), "{records:?}");
    }

    #[test]
    fn worker_threads_record_independent_stacks() {
        let records = with_spans_on(|| {
            let _root = enter("root");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _w = enter("worker");
                        let _j = enter("job");
                    });
                }
            });
            drop(_root);
            take_records()
        });
        // Worker spans are their own roots — thread stacks are private.
        let workers = records.iter().filter(|r| r.path == "worker").count();
        let jobs = records.iter().filter(|r| r.path == "worker/job").count();
        assert_eq!(workers, 4);
        assert_eq!(jobs, 4);
        assert!(records.iter().any(|r| r.path == "root" && r.depth == 0));
        // Per-thread ordinals distinguish the four workers.
        let threads: std::collections::BTreeSet<u64> = records
            .iter()
            .filter(|r| r.path == "worker")
            .map(|r| r.thread)
            .collect();
        assert_eq!(threads.len(), 4);
    }

    #[test]
    fn durations_are_monotone_and_bounded() {
        let records = with_spans_on(|| {
            {
                let _a = enter("timed");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            take_records()
        });
        assert_eq!(records.len(), 1);
        assert!(records[0].dur_ns >= 1_000_000, "{:?}", records[0]);
    }
}
