//! Run reports: aggregation of spans + metrics + logs into a stage tree,
//! the human-readable stderr summary, the JSONL export, and the
//! validator CI runs against emitted reports.
//!
//! ## JSONL schema (one object per line)
//!
//! | `type`      | fields                                                              |
//! |-------------|---------------------------------------------------------------------|
//! | `meta`      | `version`, `wall_ns`, `level`                                       |
//! | `span`      | `path`, `name`, `depth`, `thread`, `start_ns`, `dur_ns`             |
//! | `stage`     | `path`, `calls`, `total_ns` (aggregated over same-path spans)       |
//! | `counter`   | `name`, `value` (includes gauges and labeled counters)              |
//! | `cache`     | `family`, `hits`, `misses`, `evictions`, `lookups`, `hit_rate`      |
//! | `histogram` | `name`, `count`, `sum_ns`, `mean_ns`, `p50`, `p90`, `p99`, `buckets` (`[upper, n]` pairs) |
//! | `log`       | `t_ns`, `level`, `target`, `message`, optional `trace`              |
//! | `trace`     | `trace_id`, `root`, optional `remote_parent`, `outcome`, `status`, `sampled`, `start_ns`, `dur_ns`, `spans` (each `name`, `id`, `parent`, `start_ns`, `dur_ns`, optional `attrs`/`links`) |
//! | `drift`     | `status`, `live_samples`, `reference_samples`, window shape, thresholds, `metrics` (each `metric`, `psi`, `ks` (null for the class mix), `verdict`) |
//!
//! Version history: v1 had no quantile fields on `histogram` lines; v2
//! added `p50`/`p90`/`p99` estimated from the log₂ buckets (see
//! [`crate::metrics::HistogramSnapshot::quantile`] for the
//! interpolation and its error bound); v3 added `trace` lines
//! — the flight recorder's retained request traces, with batch links
//! filtered to traces present in the same report so they always
//! resolve — and the optional `trace` field on `log` lines; v4
//! (current) adds the `drift` line — the attached
//! [`crate::drift::DriftMonitor`]'s verdict at report time, emitted
//! only when a monitor is attached. Readers that skip unknown line
//! types and fields (as [`crate::diff`] does) consume any version.

use crate::logger::{self, LogEvent};
use crate::metrics::{self, MetricsSnapshot};
use crate::span::{self, SpanRecord};
use crate::ObsLevel;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Report schema version emitted in the `meta` line.
pub const REPORT_VERSION: u64 = 4;

/// All same-path spans merged into one stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageAgg {
    /// Full `/`-joined stage path.
    pub path: String,
    /// Last path segment.
    pub name: String,
    /// Nesting depth (0 = root stage).
    pub depth: u32,
    /// Spans merged into this stage.
    pub calls: u64,
    /// Summed duration (can exceed wall time when calls overlap across
    /// worker threads).
    pub total_ns: u64,
    /// Earliest start among merged spans.
    pub min_start_ns: u64,
    /// Latest end among merged spans.
    pub max_end_ns: u64,
}

/// Everything one run recorded.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Nanoseconds from the observability epoch to report creation.
    pub wall_ns: u64,
    /// Level the run recorded at.
    pub level: ObsLevel,
    /// Aggregated stages in tree order (parents before children,
    /// siblings by first start).
    pub stages: Vec<StageAgg>,
    /// Raw span records, sorted by start time.
    pub records: Vec<SpanRecord>,
    /// Snapshot of the metrics registry.
    pub metrics: MetricsSnapshot,
    /// Buffered structured log events.
    pub logs: Vec<LogEvent>,
    /// Request traces retained by the flight recorder, newest first,
    /// with batch links filtered to the retained set.
    pub traces: Vec<crate::trace::TraceRecord>,
    /// Drift verdict at report time ([`DriftStatus::Unavailable`] when
    /// no monitor is attached — the usual case for training runs).
    ///
    /// [`DriftStatus::Unavailable`]: crate::drift::DriftStatus::Unavailable
    pub drift: crate::drift::DriftReport,
}

impl RunReport {
    /// Fraction of wall time covered by root stages of the main thread
    /// (the thread that opened the earliest span). The acceptance target
    /// for an instrumented training run is ≥ 0.9.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        let main_thread = match self.records.iter().min_by_key(|r| r.start_ns) {
            Some(first) => first.thread,
            None => return 0.0,
        };
        let covered: u64 = self
            .records
            .iter()
            .filter(|r| r.depth == 0 && r.thread == main_thread)
            .map(|r| r.dur_ns)
            .sum();
        covered as f64 / self.wall_ns as f64
    }

    /// The human-readable end-of-run summary: a stage tree with time, %
    /// of wall, and call counts, followed by engine and cache totals.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[rpm-obs] run report — wall {}, level {}",
            fmt_ns(self.wall_ns),
            self.level
        );
        let name_width = self
            .stages
            .iter()
            .map(|s| 2 * s.depth as usize + s.name.len())
            .max()
            .unwrap_or(0)
            .max(12);
        for stage in &self.stages {
            let indent = "  ".repeat(stage.depth as usize);
            let pct = if self.wall_ns > 0 {
                100.0 * stage.total_ns as f64 / self.wall_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:name_width$}  {:>9}  {:5.1}%  {:>6}×",
                format!("{indent}{}", stage.name),
                fmt_ns(stage.total_ns),
                pct,
                stage.calls,
            );
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "  (root stages cover {:.1}% of wall time)",
                100.0 * self.coverage()
            );
        }
        let jobs = self.metrics.counter("engine.jobs").unwrap_or(0);
        if jobs > 0 {
            let runs = self.metrics.counter("engine.runs").unwrap_or(0);
            match self.metrics.engine_utilization() {
                Some(u) => {
                    let _ = writeln!(
                        out,
                        "  engine: {jobs} jobs / {runs} runs, worker utilization {:.1}%",
                        100.0 * u
                    );
                }
                None => {
                    let _ = writeln!(out, "  engine: {jobs} jobs / {runs} runs (serial)");
                }
            }
        }
        let cache_lines: Vec<String> = self
            .metrics
            .cache
            .iter()
            .filter(|(_, h, m, _)| h + m > 0)
            .map(|(family, h, m, _)| {
                format!(
                    "{family} {:.1}% of {}",
                    100.0 * *h as f64 / (h + m) as f64,
                    h + m
                )
            })
            .collect();
        if !cache_lines.is_empty() {
            let _ = writeln!(out, "  cache hit-rates: {}", cache_lines.join(" | "));
        }
        for (name, h) in &self.metrics.histograms {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {name}: {} obs, mean {}, p50 {}, p90 {}, p99 {}",
                h.count,
                fmt_hist_value(name, h.mean()),
                fmt_hist_value(name, h.p50()),
                fmt_hist_value(name, h.p90()),
                fmt_hist_value(name, h.p99()),
            );
        }
        out
    }

    /// Serializes the full report to JSONL (see the module docs for the
    /// schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"version\":{REPORT_VERSION},\"wall_ns\":{},\"level\":\"{}\"}}",
            self.wall_ns, self.level
        );
        for r in &self.records {
            out.push_str("{\"type\":\"span\",\"path\":");
            push_json_str(&mut out, &r.path);
            out.push_str(",\"name\":");
            push_json_str(&mut out, r.name);
            let _ = writeln!(
                out,
                ",\"depth\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                r.depth, r.thread, r.start_ns, r.dur_ns
            );
        }
        for s in &self.stages {
            out.push_str("{\"type\":\"stage\",\"path\":");
            push_json_str(&mut out, &s.path);
            let _ = writeln!(out, ",\"calls\":{},\"total_ns\":{}}}", s.calls, s.total_ns);
        }
        let named = self
            .metrics
            .counters
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .chain(self.metrics.gauges.iter().map(|(n, v)| (n.to_string(), *v)))
            .chain(self.metrics.labeled.iter().cloned());
        for (name, value) in named {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, &name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (family, hits, misses, evictions) in &self.metrics.cache {
            let lookups = hits + misses;
            let hit_rate = if lookups > 0 {
                *hits as f64 / lookups as f64
            } else {
                0.0
            };
            out.push_str("{\"type\":\"cache\",\"family\":");
            push_json_str(&mut out, family);
            let _ = writeln!(
                out,
                ",\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\"lookups\":{lookups},\"hit_rate\":{hit_rate:.6}}}"
            );
        }
        for (name, h) in &self.metrics.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_json_str(&mut out, name);
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(upper, n)| format!("[{upper},{n}]"))
                .collect();
            let _ = writeln!(
                out,
                ",\"count\":{},\"sum_ns\":{},\"mean_ns\":{:.1},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"buckets\":[{}]}}",
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                buckets.join(",")
            );
        }
        for event in &self.logs {
            let _ = write!(
                out,
                "{{\"type\":\"log\",\"t_ns\":{},\"level\":\"{}\",\"target\":",
                event.t_ns, event.level
            );
            push_json_str(&mut out, &event.target);
            out.push_str(",\"message\":");
            push_json_str(&mut out, &event.message);
            if let Some(trace) = &event.trace {
                out.push_str(",\"trace\":");
                push_json_str(&mut out, trace);
            }
            out.push_str("}\n");
        }
        for trace in &self.traces {
            out.push_str(&trace.to_jsonl_line());
            out.push('\n');
        }
        if self.drift.status != crate::drift::DriftStatus::Unavailable {
            let _ = writeln!(
                out,
                "{{\"type\":\"drift\",{}}}",
                self.drift.to_json_fields()
            );
        }
        out
    }
}

fn build(mut records: Vec<SpanRecord>, logs: Vec<LogEvent>) -> RunReport {
    records.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then_with(|| a.path.cmp(&b.path))
    });
    let mut aggs: BTreeMap<String, StageAgg> = BTreeMap::new();
    for r in &records {
        let agg = aggs.entry(r.path.clone()).or_insert_with(|| StageAgg {
            path: r.path.clone(),
            name: r.name.to_string(),
            depth: r.path.matches('/').count() as u32,
            calls: 0,
            total_ns: 0,
            min_start_ns: u64::MAX,
            max_end_ns: 0,
        });
        agg.calls += 1;
        agg.total_ns += r.dur_ns;
        agg.min_start_ns = agg.min_start_ns.min(r.start_ns);
        agg.max_end_ns = agg.max_end_ns.max(r.end_ns());
    }
    // The retained traces, with each batch span's links narrowed to
    // trace ids that are themselves in the report — the recorder may
    // have dropped a linked sibling, and a link that cannot be followed
    // is noise the validator would (rightly) reject.
    let mut traces = crate::trace::recorder().snapshot();
    let retained: std::collections::HashSet<crate::trace::TraceId> =
        traces.iter().map(|r| r.trace_id).collect();
    for record in &mut traces {
        for span in &mut record.spans {
            span.links.retain(|l| retained.contains(l));
        }
    }
    RunReport {
        wall_ns: crate::now_ns(),
        level: crate::level(),
        stages: tree_order(aggs),
        records,
        metrics: metrics::snapshot(),
        logs,
        traces,
        drift: crate::drift::current_report(),
    }
}

/// Orders aggregated stages parents-first, siblings by earliest start.
/// Deterministic for a given record set no matter how worker threads
/// interleaved at run time.
fn tree_order(aggs: BTreeMap<String, StageAgg>) -> Vec<StageAgg> {
    let mut children: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut roots: Vec<String> = Vec::new();
    for path in aggs.keys() {
        let parent = path.rsplit_once('/').map(|(p, _)| p);
        match parent {
            Some(p) if aggs.contains_key(p) => {
                children
                    .entry(p.to_string())
                    .or_default()
                    .push(path.clone());
            }
            _ => roots.push(path.clone()),
        }
    }
    let by_start = |paths: &mut Vec<String>| {
        paths.sort_by_key(|p| (aggs[p].min_start_ns, p.clone()));
    };
    by_start(&mut roots);
    for siblings in children.values_mut() {
        by_start(siblings);
    }
    let mut out = Vec::with_capacity(aggs.len());
    let mut stack: Vec<String> = roots.into_iter().rev().collect();
    while let Some(path) = stack.pop() {
        if let Some(kids) = children.get(&path) {
            stack.extend(kids.iter().rev().cloned());
        }
        out.push(aggs[&path].clone());
    }
    out
}

/// Closes out the run: drains spans and logs, snapshots metrics, prints
/// the stage tree to stderr, writes the JSONL report when a path is
/// configured, and resets the metrics registry for the next run. Returns
/// `None` while observability is off.
pub fn finish() -> Option<RunReport> {
    if !crate::enabled() {
        return None;
    }
    let report = build(span::take_records(), logger::take());
    eprint!("{}", report.render_tree());
    if let Some(path) = crate::json_path() {
        match std::fs::write(&path, report.to_jsonl()) {
            Ok(()) => eprintln!("[rpm-obs] wrote run report to {path}"),
            Err(e) => eprintln!("[rpm-obs] failed to write {path}: {e}"),
        }
    }
    metrics::reset();
    crate::trace::recorder().clear();
    crate::trace::clear_exemplars();
    Some(report)
}

/// A non-destructive [`finish`]: copies the current spans, metrics, and
/// logs without draining or printing anything.
pub fn snapshot() -> RunReport {
    build(span::peek_records(), logger::peek())
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats one histogram statistic for the stderr tree: `*_ns`
/// histograms hold nanoseconds, `*distance*` histograms hold millionths
/// of the unitless match distance, anything else prints raw.
fn fmt_hist_value(name: &str, v: f64) -> String {
    if name.ends_with("_ns") {
        fmt_ns(v as u64)
    } else if name.contains("distance") {
        format!("{:.3}", v / 1e6)
    } else {
        format!("{v:.1}")
    }
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

// --- JSONL validation -----------------------------------------------------
// The reports are emitted by this crate, so a full JSON parser is not
// needed: minimal field extraction over our own single-line objects.

pub(crate) fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let digits: String = line[i..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

pub(crate) fn f64_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let number: String = line[i..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number.parse().ok()
}

pub(crate) fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let i = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[i..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// What [`validate_jsonl`] verified about a report file.
#[derive(Clone, Debug, Default)]
pub struct ReportCheck {
    /// Total JSONL lines.
    pub lines: usize,
    /// `span` lines (must be > 0 for a spans-level report).
    pub spans: usize,
    /// `stage` aggregate lines.
    pub stages: usize,
    /// `counter` lines as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// `cache` lines (each verified `hits + misses == lookups`).
    pub caches: usize,
    /// `histogram` lines (each verified against the bucket invariants).
    pub histograms: usize,
    /// `log` lines.
    pub logs: usize,
    /// `trace` lines (each verified against the span-tree invariants:
    /// well-formed ids, parents resolving within the trace, batch
    /// links resolving to trace lines in the same report).
    pub traces: usize,
    /// `drift` lines (each verified against the score invariants:
    /// known status/verdict names, finite PSI ≥ 0, KS in [0, 1]).
    pub drifts: usize,
    /// Recording level from the `meta` line.
    pub level: String,
    /// Wall time from the `meta` line.
    pub wall_ns: u64,
    /// Root-stage coverage of wall time (main recording thread).
    pub coverage: f64,
}

impl ReportCheck {
    /// Looks up a validated counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Splits the `"spans":[{…},{…}]` array of a trace line into its
/// top-level `{…}` blocks by brace depth. Sufficient for our own
/// emitter: span names are static identifiers and attribute values are
/// numbers-as-strings, so no brace ever appears inside a JSON string
/// on these lines.
fn trace_span_blocks(line: &str) -> Option<Vec<&str>> {
    array_blocks(line, "spans")
}

/// Splits the `"<key>":[{…},{…}]` array of a line into its top-level
/// `{…}` blocks by brace depth (same emitter caveats as
/// [`trace_span_blocks`]).
fn array_blocks<'a>(line: &'a str, key: &str) -> Option<Vec<&'a str>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut blocks = Vec::new();
    let mut depth = 0usize;
    let mut block_start = 0usize;
    for (i, b) in rest.bytes().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    block_start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    blocks.push(&rest[block_start..=i]);
                }
            }
            b']' if depth == 0 => return Some(blocks),
            _ => {}
        }
    }
    None
}

/// Extracts the `"links":["…",…]` ids of one span block (empty when the
/// span has no links).
fn link_ids(block: &str) -> Vec<String> {
    let pat = "\"links\":[";
    let Some(i) = block.find(pat) else {
        return Vec::new();
    };
    let rest = &block[i + pat.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|s| {
            let s = s.trim().trim_matches('"');
            (!s.is_empty()).then(|| s.to_string())
        })
        .collect()
}

/// Parses the `"buckets":[[upper,n],…]` array of a histogram line.
pub(crate) fn bucket_pairs(line: &str) -> Option<Vec<(u64, u64)>> {
    let pat = "\"buckets\":[";
    let i = line.find(pat)? + pat.len();
    let rest = &line[i..];
    if rest.starts_with(']') {
        return Some(Vec::new());
    }
    let content = &rest[..rest.find("]]")? + 1]; // "[0,1],[4,2]"
    let trimmed = content.trim_start_matches('[').trim_end_matches(']');
    let mut out = Vec::new();
    for pair in trimmed.split("],[") {
        let (a, b) = pair.split_once(',')?;
        out.push((a.trim().parse().ok()?, b.trim().parse().ok()?));
    }
    Some(out)
}

/// Validates a JSONL run report: a `meta` line exists, spans carry
/// monotone start timestamps and end within wall time (and are present
/// at all for a spans-level report), every cache line satisfies
/// `hits + misses == lookups`, and every histogram line satisfies the
/// bucket invariants (`count == Σ bucket counts`, buckets sorted by
/// ascending upper bound, `sum_ns ≤ count × max bucket upper`). Returns
/// what was checked, or a description of the first violation.
pub fn validate_jsonl(path: &str) -> Result<ReportCheck, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut check = ReportCheck::default();
    let mut last_start = 0u64;
    let mut main_thread: Option<u64> = None;
    let mut covered_ns = 0u64;
    let mut trace_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut pending_links: Vec<(usize, String)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        check.lines += 1;
        let kind =
            str_field(line, "type").ok_or_else(|| format!("line {lineno}: no \"type\" field"))?;
        match kind.as_str() {
            "meta" => {
                check.wall_ns = u64_field(line, "wall_ns")
                    .ok_or_else(|| format!("line {lineno}: meta without wall_ns"))?;
                check.level = str_field(line, "level")
                    .ok_or_else(|| format!("line {lineno}: meta without level"))?;
            }
            "span" => {
                let start = u64_field(line, "start_ns")
                    .ok_or_else(|| format!("line {lineno}: span without start_ns"))?;
                let dur = u64_field(line, "dur_ns")
                    .ok_or_else(|| format!("line {lineno}: span without dur_ns"))?;
                let depth = u64_field(line, "depth")
                    .ok_or_else(|| format!("line {lineno}: span without depth"))?;
                let thread = u64_field(line, "thread")
                    .ok_or_else(|| format!("line {lineno}: span without thread"))?;
                if start < last_start {
                    return Err(format!(
                        "line {lineno}: span start_ns {start} < previous {last_start} (not monotone)"
                    ));
                }
                last_start = start;
                if check.wall_ns > 0 && start + dur > check.wall_ns {
                    return Err(format!(
                        "line {lineno}: span ends at {} beyond wall_ns {}",
                        start + dur,
                        check.wall_ns
                    ));
                }
                let main = *main_thread.get_or_insert(thread);
                if depth == 0 && thread == main {
                    covered_ns += dur;
                }
                check.spans += 1;
            }
            "counter" => {
                let name = str_field(line, "name")
                    .ok_or_else(|| format!("line {lineno}: counter without name"))?;
                let value = u64_field(line, "value")
                    .ok_or_else(|| format!("line {lineno}: counter without value"))?;
                check.counters.push((name, value));
            }
            "cache" => {
                let hits = u64_field(line, "hits")
                    .ok_or_else(|| format!("line {lineno}: cache without hits"))?;
                let misses = u64_field(line, "misses")
                    .ok_or_else(|| format!("line {lineno}: cache without misses"))?;
                let lookups = u64_field(line, "lookups")
                    .ok_or_else(|| format!("line {lineno}: cache without lookups"))?;
                if hits + misses != lookups {
                    return Err(format!(
                        "line {lineno}: cache invariant broken: {hits} + {misses} != {lookups}"
                    ));
                }
                check.caches += 1;
            }
            "log" => check.logs += 1,
            "stage" => {
                str_field(line, "path")
                    .ok_or_else(|| format!("line {lineno}: stage without path"))?;
                let calls = u64_field(line, "calls")
                    .ok_or_else(|| format!("line {lineno}: stage without calls"))?;
                u64_field(line, "total_ns")
                    .ok_or_else(|| format!("line {lineno}: stage without total_ns"))?;
                if calls == 0 {
                    return Err(format!("line {lineno}: stage aggregate with zero calls"));
                }
                check.stages += 1;
            }
            "histogram" => {
                let name = str_field(line, "name")
                    .ok_or_else(|| format!("line {lineno}: histogram without name"))?;
                let count = u64_field(line, "count")
                    .ok_or_else(|| format!("line {lineno}: histogram without count"))?;
                let sum_ns = u64_field(line, "sum_ns")
                    .ok_or_else(|| format!("line {lineno}: histogram without sum_ns"))?;
                let buckets = bucket_pairs(line)
                    .ok_or_else(|| format!("line {lineno}: histogram without buckets"))?;
                let total: u64 = buckets.iter().map(|(_, n)| n).sum();
                if total != count {
                    return Err(format!(
                        "line {lineno}: histogram {name}: count {count} != sum of bucket counts {total}"
                    ));
                }
                if buckets.windows(2).any(|w| w[0].0 >= w[1].0) {
                    return Err(format!(
                        "line {lineno}: histogram {name}: bucket upper bounds not ascending"
                    ));
                }
                let max_upper = buckets.last().map_or(0, |&(u, _)| u);
                // Every observation is strictly below its bucket's upper
                // bound (bucket 0 holds exactly 0), bounding the sum.
                if sum_ns > count.saturating_mul(max_upper) {
                    return Err(format!(
                        "line {lineno}: histogram {name}: sum_ns {sum_ns} exceeds count {count} × max upper {max_upper}"
                    ));
                }
                check.histograms += 1;
            }
            "trace" => {
                let trace_id = str_field(line, "trace_id")
                    .ok_or_else(|| format!("line {lineno}: trace without trace_id"))?;
                if crate::trace::TraceId::from_hex(&trace_id).is_none() {
                    return Err(format!(
                        "line {lineno}: trace_id {trace_id:?} is not 32 lowercase hex digits"
                    ));
                }
                let root = str_field(line, "root")
                    .ok_or_else(|| format!("line {lineno}: trace without root"))?;
                let start = u64_field(line, "start_ns")
                    .ok_or_else(|| format!("line {lineno}: trace without start_ns"))?;
                let dur = u64_field(line, "dur_ns")
                    .ok_or_else(|| format!("line {lineno}: trace without dur_ns"))?;
                str_field(line, "outcome")
                    .ok_or_else(|| format!("line {lineno}: trace without outcome"))?;
                let blocks = trace_span_blocks(line)
                    .ok_or_else(|| format!("line {lineno}: trace without a spans array"))?;
                if blocks.is_empty() {
                    return Err(format!("line {lineno}: trace with no spans"));
                }
                // First pass: collect span ids (and reject duplicates).
                let mut span_ids: std::collections::HashSet<String> =
                    std::collections::HashSet::new();
                for block in &blocks {
                    let id = str_field(block, "id")
                        .ok_or_else(|| format!("line {lineno}: span without id"))?;
                    if crate::trace::SpanId::from_hex(&id).is_none() {
                        return Err(format!(
                            "line {lineno}: span id {id:?} is not 16 lowercase hex digits"
                        ));
                    }
                    if !span_ids.insert(id.clone()) {
                        return Err(format!("line {lineno}: duplicate span id {id}"));
                    }
                }
                // Second pass: parents resolve, the parentless span is
                // the declared root, spans sit inside the trace window,
                // links are well-formed and deferred for resolution.
                for block in &blocks {
                    let id = str_field(block, "id").unwrap_or_default();
                    match str_field(block, "parent") {
                        Some(parent) => {
                            if !span_ids.contains(&parent) {
                                return Err(format!(
                                    "line {lineno}: span {id} has parent {parent} not in the trace"
                                ));
                            }
                        }
                        None => {
                            if id != root {
                                return Err(format!(
                                    "line {lineno}: parentless span {id} is not the root {root}"
                                ));
                            }
                        }
                    }
                    let s_start = u64_field(block, "start_ns")
                        .ok_or_else(|| format!("line {lineno}: span without start_ns"))?;
                    let s_dur = u64_field(block, "dur_ns")
                        .ok_or_else(|| format!("line {lineno}: span without dur_ns"))?;
                    if s_start < start || s_start + s_dur > start + dur {
                        return Err(format!(
                            "line {lineno}: span {id} [{s_start}, {}] outside its trace [{start}, {}]",
                            s_start + s_dur,
                            start + dur
                        ));
                    }
                    for link in link_ids(block) {
                        if crate::trace::TraceId::from_hex(&link).is_none() {
                            return Err(format!(
                                "line {lineno}: link {link:?} is not 32 lowercase hex digits"
                            ));
                        }
                        if link == trace_id {
                            return Err(format!("line {lineno}: span {id} links its own trace"));
                        }
                        pending_links.push((lineno, link));
                    }
                }
                trace_ids.insert(trace_id);
                check.traces += 1;
            }
            "drift" => {
                let status = str_field(line, "status")
                    .ok_or_else(|| format!("line {lineno}: drift without status"))?;
                if crate::drift::DriftStatus::parse(&status).is_none() {
                    return Err(format!("line {lineno}: unknown drift status {status:?}"));
                }
                u64_field(line, "live_samples")
                    .ok_or_else(|| format!("line {lineno}: drift without live_samples"))?;
                let blocks = array_blocks(line, "metrics")
                    .ok_or_else(|| format!("line {lineno}: drift without a metrics array"))?;
                for block in &blocks {
                    let metric = str_field(block, "metric")
                        .ok_or_else(|| format!("line {lineno}: drift metric without a name"))?;
                    let psi = f64_field(block, "psi")
                        .ok_or_else(|| format!("line {lineno}: drift {metric} without psi"))?;
                    if !psi.is_finite() || psi < 0.0 {
                        return Err(format!(
                            "line {lineno}: drift {metric}: psi {psi} not finite and ≥ 0"
                        ));
                    }
                    if !block.contains("\"ks\":null") {
                        let ks = f64_field(block, "ks")
                            .ok_or_else(|| format!("line {lineno}: drift {metric} without ks"))?;
                        if !(0.0..=1.0).contains(&ks) {
                            return Err(format!(
                                "line {lineno}: drift {metric}: ks {ks} outside [0, 1]"
                            ));
                        }
                    }
                    let verdict = str_field(block, "verdict")
                        .ok_or_else(|| format!("line {lineno}: drift {metric} without verdict"))?;
                    if crate::drift::DriftStatus::parse(&verdict).is_none() {
                        return Err(format!("line {lineno}: unknown drift verdict {verdict:?}"));
                    }
                }
                check.drifts += 1;
            }
            other => return Err(format!("line {lineno}: unknown type {other:?}")),
        }
    }
    if check.wall_ns == 0 {
        return Err("no meta line with wall_ns".to_string());
    }
    // Summary-level runs legitimately record no spans; a spans-level
    // report without any is broken.
    if check.spans == 0 && matches!(check.level.as_str(), "spans" | "debug") {
        return Err("no span lines in a spans-level report".to_string());
    }
    // Batch links are only useful if they can be followed: every link
    // must name a trace line present in this report (the report builder
    // guarantees it by filtering to the retained set).
    for (lineno, link) in pending_links {
        if !trace_ids.contains(&link) {
            return Err(format!(
                "line {lineno}: batch link {link} does not resolve to a trace in this report"
            ));
        }
    }
    check.coverage = covered_ns as f64 / check.wall_ns as f64;
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, ObsLevel};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rpm_obs_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn finish_aggregates_and_round_trips_through_jsonl() {
        let _g = crate::test_lock();
        let path = temp_path("round_trip");
        ObsConfig {
            level: ObsLevel::Spans,
            json_path: Some(path.display().to_string()),
            http_addr: None,
        }
        .install();
        span::take_records();
        logger::take();
        metrics::reset();

        crate::trace::recorder().clear();

        {
            let _train = crate::span!("train");
            {
                let _mine = crate::span!("mine");
                crate::metrics().mine_rules.add(10);
            }
            let _svm = crate::span!("svm");
            crate::metrics().cache_words.hits.add(7);
            crate::metrics().cache_words.misses.add(3);
            crate::info!("test", "stage done");
        }
        // One retained request trace (sampled inbound context forces
        // retention) so the report carries a "trace" line.
        let ctx = crate::trace::TraceCtx::begin(Some(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        ));
        ctx.add_span("queue_wait", ctx.start_ns(), 5);
        crate::trace::recorder().record(ctx.finish(crate::trace::TraceOutcome::Ok, 200));
        let report = finish().expect("enabled");
        assert_eq!(report.level, ObsLevel::Spans);
        let paths: Vec<&str> = report.stages.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["train", "train/mine", "train/svm"]);
        assert_eq!(report.stages[0].depth, 0);
        assert_eq!(report.stages[1].depth, 1);
        assert_eq!(report.metrics.counter("mine.rules"), Some(10));
        assert_eq!(report.logs.len(), 1);
        let tree = report.render_tree();
        assert!(tree.contains("train"), "{tree}");
        assert!(tree.contains("cache hit-rates"), "{tree}");

        assert_eq!(report.traces.len(), 1);
        assert_eq!(
            report.traces[0].trace_id.to_hex(),
            "4bf92f3577b34da6a3ce929d0e0e4736"
        );

        let check = validate_jsonl(&path.display().to_string()).expect("valid report");
        assert_eq!(check.spans, 3);
        assert_eq!(check.caches, 4);
        assert_eq!(check.logs, 1);
        assert_eq!(check.traces, 1);
        assert_eq!(check.counter("mine.rules"), Some(10));
        assert!(check.coverage > 0.0);
        std::fs::remove_file(&path).ok();
        ObsConfig::default().install();
    }

    #[test]
    fn validator_rejects_broken_invariants() {
        let path = temp_path("invalid");
        let bad_cache = "{\"type\":\"meta\",\"version\":1,\"wall_ns\":100,\"level\":\"spans\"}\n\
             {\"type\":\"span\",\"path\":\"a\",\"name\":\"a\",\"depth\":0,\"thread\":0,\"start_ns\":1,\"dur_ns\":2}\n\
             {\"type\":\"cache\",\"family\":\"words\",\"hits\":3,\"misses\":3,\"evictions\":0,\"lookups\":5,\"hit_rate\":0.6}\n";
        std::fs::write(&path, bad_cache).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("cache invariant"), "{err}");

        let non_monotone = "{\"type\":\"meta\",\"version\":1,\"wall_ns\":100,\"level\":\"spans\"}\n\
             {\"type\":\"span\",\"path\":\"a\",\"name\":\"a\",\"depth\":0,\"thread\":0,\"start_ns\":50,\"dur_ns\":2}\n\
             {\"type\":\"span\",\"path\":\"b\",\"name\":\"b\",\"depth\":0,\"thread\":0,\"start_ns\":10,\"dur_ns\":2}\n";
        std::fs::write(&path, non_monotone).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");

        // A spans-level report must contain spans; a summary-level one
        // need not (e.g. an empty run with spans disabled).
        let no_spans = "{\"type\":\"meta\",\"version\":1,\"wall_ns\":100,\"level\":\"spans\"}\n";
        std::fs::write(&path, no_spans).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("no span lines"), "{err}");

        let summary_no_spans =
            "{\"type\":\"meta\",\"version\":1,\"wall_ns\":100,\"level\":\"summary\"}\n";
        std::fs::write(&path, summary_no_spans).unwrap();
        let check =
            validate_jsonl(&path.display().to_string()).expect("summary level needs no spans");
        assert_eq!(check.spans, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_checks_histogram_invariants() {
        let path = temp_path("hist_invariants");
        let meta = "{\"type\":\"meta\",\"version\":2,\"wall_ns\":100,\"level\":\"summary\"}\n";

        // count != Σ bucket counts
        let bad_count = format!(
            "{meta}{{\"type\":\"histogram\",\"name\":\"h\",\"count\":3,\"sum_ns\":10,\
             \"mean_ns\":3.3,\"p50\":5.0,\"p90\":5.0,\"p99\":5.0,\"buckets\":[[8,2]]}}\n"
        );
        std::fs::write(&path, &bad_count).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("sum of bucket counts"), "{err}");

        // bucket upper bounds out of order
        let unsorted = format!(
            "{meta}{{\"type\":\"histogram\",\"name\":\"h\",\"count\":2,\"sum_ns\":10,\
             \"mean_ns\":5.0,\"p50\":5.0,\"p90\":5.0,\"p99\":5.0,\"buckets\":[[16,1],[8,1]]}}\n"
        );
        std::fs::write(&path, &unsorted).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("not ascending"), "{err}");

        // sum_ns exceeds what the buckets could hold
        let impossible_sum = format!(
            "{meta}{{\"type\":\"histogram\",\"name\":\"h\",\"count\":2,\"sum_ns\":100,\
             \"mean_ns\":50.0,\"p50\":5.0,\"p90\":5.0,\"p99\":5.0,\"buckets\":[[8,2]]}}\n"
        );
        std::fs::write(&path, &impossible_sum).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("exceeds count"), "{err}");

        // A well-formed histogram line passes and is counted.
        let good = format!(
            "{meta}{{\"type\":\"histogram\",\"name\":\"h\",\"count\":3,\"sum_ns\":14,\
             \"mean_ns\":4.7,\"p50\":6.0,\"p90\":7.6,\"p99\":7.9,\"buckets\":[[4,1],[8,2]]}}\n"
        );
        std::fs::write(&path, &good).unwrap();
        let check = validate_jsonl(&path.display().to_string()).expect("valid histogram");
        assert_eq!(check.histograms, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_checks_trace_span_trees_and_links() {
        let path = temp_path("trace_invariants");
        let meta = "{\"type\":\"meta\",\"version\":3,\"wall_ns\":100,\"level\":\"summary\"}\n";
        let tid_a = "4bf92f3577b34da6a3ce929d0e0e4736";
        let tid_b = "0af7651916cd43dd8448eb211c80319c";

        // A well-formed pair of traces whose batch links resolve to each
        // other is accepted and counted.
        let good = format!(
            "{meta}\
             {{\"type\":\"trace\",\"trace_id\":\"{tid_a}\",\"root\":\"00f067aa0ba902b7\",\
             \"outcome\":\"ok\",\"status\":200,\"sampled\":true,\"start_ns\":10,\"dur_ns\":50,\
             \"spans\":[{{\"name\":\"request\",\"id\":\"00f067aa0ba902b7\",\"parent\":null,\
             \"start_ns\":10,\"dur_ns\":50}},{{\"name\":\"batch\",\"id\":\"00f067aa0ba902b8\",\
             \"parent\":\"00f067aa0ba902b7\",\"start_ns\":20,\"dur_ns\":30,\
             \"links\":[\"{tid_b}\"]}}]}}\n\
             {{\"type\":\"trace\",\"trace_id\":\"{tid_b}\",\"root\":\"00f067aa0ba902c1\",\
             \"outcome\":\"deadline\",\"status\":504,\"sampled\":false,\"start_ns\":12,\"dur_ns\":40,\
             \"spans\":[{{\"name\":\"request\",\"id\":\"00f067aa0ba902c1\",\"parent\":null,\
             \"start_ns\":12,\"dur_ns\":40,\"attrs\":{{\"outcome\":\"deadline\"}},\
             \"links\":[\"{tid_a}\"]}}]}}\n"
        );
        std::fs::write(&path, &good).unwrap();
        let check = validate_jsonl(&path.display().to_string()).expect("valid traces");
        assert_eq!(check.traces, 2);

        // A span whose parent is not in the trace is rejected.
        let orphan = format!(
            "{meta}\
             {{\"type\":\"trace\",\"trace_id\":\"{tid_a}\",\"root\":\"00f067aa0ba902b7\",\
             \"outcome\":\"ok\",\"status\":200,\"sampled\":false,\"start_ns\":10,\"dur_ns\":50,\
             \"spans\":[{{\"name\":\"request\",\"id\":\"00f067aa0ba902b7\",\"parent\":null,\
             \"start_ns\":10,\"dur_ns\":50}},{{\"name\":\"predict\",\"id\":\"00f067aa0ba902b8\",\
             \"parent\":\"deadbeefdeadbeef\",\"start_ns\":20,\"dur_ns\":5}}]}}\n"
        );
        std::fs::write(&path, &orphan).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("not in the trace"), "{err}");

        // A batch link naming a trace absent from the report is rejected.
        let dangling = format!(
            "{meta}\
             {{\"type\":\"trace\",\"trace_id\":\"{tid_a}\",\"root\":\"00f067aa0ba902b7\",\
             \"outcome\":\"ok\",\"status\":200,\"sampled\":false,\"start_ns\":10,\"dur_ns\":50,\
             \"spans\":[{{\"name\":\"request\",\"id\":\"00f067aa0ba902b7\",\"parent\":null,\
             \"start_ns\":10,\"dur_ns\":50,\"links\":[\"{tid_b}\"]}}]}}\n"
        );
        std::fs::write(&path, &dangling).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("does not resolve"), "{err}");

        // A span sticking out past the end of its trace is rejected.
        let overhang = format!(
            "{meta}\
             {{\"type\":\"trace\",\"trace_id\":\"{tid_a}\",\"root\":\"00f067aa0ba902b7\",\
             \"outcome\":\"ok\",\"status\":200,\"sampled\":false,\"start_ns\":10,\"dur_ns\":50,\
             \"spans\":[{{\"name\":\"request\",\"id\":\"00f067aa0ba902b7\",\"parent\":null,\
             \"start_ns\":10,\"dur_ns\":500}}]}}\n"
        );
        std::fs::write(&path, &overhang).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("outside its trace"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drift_line_round_trips_and_validates() {
        let _g = crate::test_lock();
        let path = temp_path("drift_line");
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: Some(path.display().to_string()),
            http_addr: None,
        }
        .install();
        span::take_records();
        logger::take();
        metrics::reset();

        // An attached (warming) monitor puts a drift line in the report.
        let mut profile = crate::drift::ReferenceProfile::new();
        for _ in 0..100 {
            profile.observe(&crate::drift::DriftSample {
                class: 0,
                best_distance: 1.0,
                margin: 0.5,
                len: 96,
                mean: 0.0,
                stddev: 1.0,
                z_extreme: 2.0,
            });
        }
        crate::drift::install_monitor(std::sync::Arc::new(crate::drift::DriftMonitor::new(
            &profile,
            crate::drift::DriftConfig::default(),
        )));
        let report = finish().expect("enabled");
        assert_eq!(
            report.drift.status,
            crate::drift::DriftStatus::Warming,
            "{:?}",
            report.drift
        );
        assert!(report.to_jsonl().contains("\"type\":\"drift\""));
        let check = validate_jsonl(&path.display().to_string()).expect("valid report");
        assert_eq!(check.drifts, 1);
        crate::drift::clear_monitor();

        // Without a monitor the line is absent entirely.
        let report = finish().expect("enabled");
        assert!(!report.to_jsonl().contains("\"type\":\"drift\""));
        let check = validate_jsonl(&path.display().to_string()).expect("valid report");
        assert_eq!(check.drifts, 0);
        std::fs::remove_file(&path).ok();
        ObsConfig::default().install();
    }

    #[test]
    fn validator_checks_drift_invariants() {
        let path = temp_path("drift_invariants");
        let meta = "{\"type\":\"meta\",\"version\":4,\"wall_ns\":100,\"level\":\"summary\"}\n";

        let good = format!(
            "{meta}{{\"type\":\"drift\",\"status\":\"warn\",\"live_samples\":80,\
             \"reference_samples\":200,\"window_secs\":240,\"epoch_secs\":30,\"epochs\":8,\
             \"warn\":0.200000,\"page\":0.500000,\"metrics\":[\
             {{\"metric\":\"match_distance\",\"psi\":0.310000,\"ks\":0.400000,\"verdict\":\"warn\"}},\
             {{\"metric\":\"class_mix\",\"psi\":0.010000,\"ks\":null,\"verdict\":\"ok\"}}]}}\n"
        );
        std::fs::write(&path, &good).unwrap();
        let check = validate_jsonl(&path.display().to_string()).expect("valid drift line");
        assert_eq!(check.drifts, 1);

        let bad_status = good.replace("\"status\":\"warn\"", "\"status\":\"panic\"");
        std::fs::write(&path, &bad_status).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("unknown drift status"), "{err}");

        let bad_psi = good.replace("\"psi\":0.310000", "\"psi\":-0.400000");
        std::fs::write(&path, &bad_psi).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("not finite and ≥ 0"), "{err}");

        let bad_ks = good.replace("\"ks\":0.400000", "\"ks\":1.500000");
        std::fs::write(&path, &bad_ks).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");

        let bad_verdict = good.replace("\"verdict\":\"ok\"", "\"verdict\":\"meh\"");
        std::fs::write(&path, &bad_verdict).unwrap();
        let err = validate_jsonl(&path.display().to_string()).unwrap_err();
        assert!(err.contains("unknown drift verdict"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_run_renders_and_validates_cleanly() {
        let _g = crate::test_lock();
        let path = temp_path("empty_run");
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: Some(path.display().to_string()),
            http_addr: None,
        }
        .install();
        span::take_records();
        logger::take();
        metrics::reset();

        // No spans, no counters, no histograms: the degenerate run.
        let report = finish().expect("enabled");
        assert!(report.stages.is_empty());
        assert!(report.records.is_empty());
        let tree = report.render_tree();
        assert!(tree.contains("run report"), "{tree}");

        let check = validate_jsonl(&path.display().to_string()).expect("empty run is valid");
        assert_eq!(check.spans, 0);
        assert_eq!(check.stages, 0);
        std::fs::remove_file(&path).ok();
        ObsConfig::default().install();
    }

    #[test]
    fn coverage_of_zero_duration_run_is_zero() {
        let report = RunReport {
            wall_ns: 0,
            level: ObsLevel::Spans,
            stages: Vec::new(),
            records: Vec::new(),
            metrics: MetricsSnapshot::default(),
            logs: Vec::new(),
            traces: Vec::new(),
            drift: crate::drift::DriftReport::unavailable(),
        };
        assert_eq!(report.coverage(), 0.0);
        // Rendering a zero-duration report must not divide by zero either.
        let tree = report.render_tree();
        assert!(tree.contains("run report"), "{tree}");
    }

    #[test]
    fn tree_order_is_parents_first_siblings_by_start() {
        let mut aggs = BTreeMap::new();
        for (path, start) in [
            ("train", 0),
            ("train/svm", 900),
            ("train/mine", 10),
            ("predict", 1000),
        ] {
            aggs.insert(
                path.to_string(),
                StageAgg {
                    path: path.to_string(),
                    name: path.rsplit('/').next().unwrap().to_string(),
                    depth: path.matches('/').count() as u32,
                    calls: 1,
                    total_ns: 5,
                    min_start_ns: start,
                    max_end_ns: start + 5,
                },
            );
        }
        let order: Vec<String> = tree_order(aggs).into_iter().map(|s| s.path).collect();
        assert_eq!(order, vec!["train", "train/mine", "train/svm", "predict"]);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
