//! # rpm-obs — pipeline observability for the RPM training engine
//!
//! A std-only (offline-build-compatible) instrumentation layer shared by
//! every crate in the workspace:
//!
//! * **Spans** ([`span`]) — RAII stage timers (`span!("cfs")`) with
//!   nesting, monotonic-clock timestamps, and per-thread recording that
//!   merges deterministically by stage path. Instrumentation never feeds
//!   back into the computation, so instrumented runs stay bit-identical
//!   to uninstrumented ones.
//! * **Metrics** ([`metrics`]) — a static registry of atomic counters,
//!   gauges, and log₂-bucket histograms fed by the training engine, the
//!   memoization caches, the candidate/CFS pipeline, and the optimizers.
//! * **Sinks** ([`report`]) — a human-readable end-of-run stage tree
//!   (time, %, calls) on stderr and a JSONL event/report export, plus a
//!   structured progress logger ([`logger`]) replacing ad-hoc prints.
//!
//! Everything is gated by a single global [`ObsLevel`], set either
//! programmatically ([`ObsConfig::install`], reachable through
//! `RpmConfig { obs }` in `rpm-core`) or from the `RPM_LOG` environment
//! variable ([`init_env`]) for binaries and examples. At
//! [`ObsLevel::Off`] (the default) every probe is a no-op behind one
//! relaxed atomic load — the disabled path allocates nothing, takes no
//! lock, and never reads the clock (benchmarked in
//! `rpm-bench/benches/kernels.rs`).
//!
//! ```
//! use rpm_obs::{ObsConfig, ObsLevel};
//!
//! ObsConfig { level: ObsLevel::Spans, ..ObsConfig::default() }.install();
//! {
//!     let _train = rpm_obs::span!("train");
//!     let _mine = rpm_obs::span!("mine");
//!     rpm_obs::metrics().engine_jobs.add(3);
//! } // guards record "train" and "train/mine" on drop
//! let report = rpm_obs::finish().expect("observability is on");
//! assert_eq!(report.stages.len(), 2);
//! assert_eq!(report.metrics.counter("engine.jobs"), Some(3));
//! ```

pub mod diff;
pub mod drift;
pub mod export;
pub mod fault;
pub mod http;
pub mod logger;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use diff::{diff_reports, load_summary, DiffOptions, DiffReport, ReportSummary};
pub use drift::{
    DriftConfig, DriftMonitor, DriftReport, DriftSample, DriftStatus, MetricDrift, ReferenceProfile,
};
pub use export::{drift_to_prometheus, to_prometheus};
pub use fault::{FaultKind, FaultSpec};
pub use http::{
    metrics_routes, serve, serve_router, serve_with, MetricsServer, Request, Response, Router,
    ServeLimits,
};
pub use logger::LogEvent;
pub use metrics::{metrics, CacheFamilyMetrics, Counter, Gauge, Histogram, MetricsSnapshot};
pub use report::{finish, snapshot, validate_jsonl, ReportCheck, RunReport, StageAgg};
pub use span::{enter, SpanGuard, SpanRecord};
pub use trace::{
    parse_traceparent, record_exemplar, recorder, FlightRecorder, SpanId, TraceCtx, TraceId,
    TraceOutcome, TraceRecord, TraceSpan,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How much the instrumentation layer records. Levels are cumulative.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Nothing is recorded; every probe is a no-op (the default).
    #[default]
    Off = 0,
    /// Metrics and progress logs, no span timing.
    Summary = 1,
    /// Everything: metrics, logs, and the span/stage tree.
    Spans = 2,
    /// Spans plus debug-level log events.
    Debug = 3,
}

impl ObsLevel {
    /// Parses a level name (`off`, `summary`, `spans`, `debug`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Self::Off),
            "summary" | "1" | "info" => Some(Self::Summary),
            "spans" | "2" => Some(Self::Spans),
            "debug" | "3" => Some(Self::Debug),
            _ => None,
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Summary => "summary",
            Self::Spans => "spans",
            Self::Debug => "debug",
        }
    }
}

impl std::fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Observability knobs carried by `RpmConfig { obs }` (and parsed from
/// `RPM_LOG` for binaries): the recording level and an optional JSONL
/// report path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Recording level; [`ObsLevel::Off`] disables everything.
    pub level: ObsLevel,
    /// Where [`finish`] writes the JSONL run report (`None` = no export).
    pub json_path: Option<String>,
    /// Address for the Prometheus `/metrics` endpoint (`None` = no
    /// server). Started process-globally on the first [`install`] that
    /// sets it; see [`http::serve_global`].
    ///
    /// [`install`]: ObsConfig::install
    pub http_addr: Option<String>,
}

impl ObsConfig {
    /// Parses the `RPM_LOG` directive syntax: a comma-separated list of a
    /// level name, `json=PATH`, and/or `http=ADDR`, e.g.
    /// `spans,json=run.jsonl,http=127.0.0.1:9898`. Unknown directives are
    /// ignored; a bare path-less `json`/addr-less `http` is ignored.
    pub fn parse(s: &str) -> Self {
        let mut config = Self::default();
        for directive in s.split(',') {
            let directive = directive.trim();
            if let Some(path) = directive.strip_prefix("json=") {
                if !path.is_empty() {
                    config.json_path = Some(path.to_string());
                    // A JSON export implies at least metric recording.
                    if config.level == ObsLevel::Off {
                        config.level = ObsLevel::Spans;
                    }
                }
            } else if let Some(addr) = directive.strip_prefix("http=") {
                if !addr.is_empty() {
                    config.http_addr = Some(addr.to_string());
                    // A scrape endpoint needs metrics to be recorded.
                    if config.level == ObsLevel::Off {
                        config.level = ObsLevel::Summary;
                    }
                }
            } else if let Some(level) = ObsLevel::parse(directive) {
                config.level = level;
            }
        }
        config
    }

    /// Installs this configuration globally: sets the recording level and
    /// the JSONL report path, pins the monotonic epoch, and (once per
    /// process) starts the `/metrics` endpoint when `http_addr` is set.
    pub fn install(&self) {
        let _ = epoch();
        if let Ok(mut p) = json_path_slot().lock() {
            p.clone_from(&self.json_path);
        }
        LEVEL.store(self.level as u8, Ordering::Relaxed);
        if let Some(addr) = &self.http_addr {
            http::serve_global(addr);
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(ObsLevel::Off as u8);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn json_path_slot() -> &'static Mutex<Option<String>> {
    static SLOT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// The configured JSONL export path, if any.
pub fn json_path() -> Option<String> {
    json_path_slot().lock().ok().and_then(|p| p.clone())
}

/// The current global recording level.
pub fn level() -> ObsLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Summary,
        2 => ObsLevel::Spans,
        _ => ObsLevel::Debug,
    }
}

/// Whether anything at all is being recorded (metrics + logs).
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Summary as u8
}

/// Whether span timing is being recorded.
#[inline]
pub fn spans_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Spans as u8
}

/// Whether debug-level log events are being recorded.
#[inline]
pub fn debug_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Debug as u8
}

/// The process-wide monotonic epoch all timestamps are relative to.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the observability epoch (monotonic clock).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Initializes the global configuration from the `RPM_LOG` environment
/// variable (see [`ObsConfig::parse`]); leaves everything off when the
/// variable is unset. Returns the installed configuration.
pub fn init_env() -> ObsConfig {
    init_env_default(ObsLevel::Off)
}

/// [`init_env`], but falling back to `default_level` when `RPM_LOG` is
/// unset — binaries that want progress output by default use
/// `init_env_default(ObsLevel::Summary)` so `RPM_LOG=off` can silence
/// them.
pub fn init_env_default(default_level: ObsLevel) -> ObsConfig {
    fault::init_env();
    let config = match std::env::var("RPM_LOG") {
        Ok(s) if !s.trim().is_empty() => ObsConfig::parse(&s),
        _ => ObsConfig {
            level: default_level,
            ..ObsConfig::default()
        },
    };
    config.install();
    config
}

/// Serializes tests across this crate's modules: they all mutate the
/// global level and the shared span/log/metric state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for l in [
            ObsLevel::Off,
            ObsLevel::Summary,
            ObsLevel::Spans,
            ObsLevel::Debug,
        ] {
            assert_eq!(ObsLevel::parse(&l.to_string()), Some(l));
        }
        assert_eq!(ObsLevel::parse("bogus"), None);
    }

    #[test]
    fn config_parse_directives() {
        let c = ObsConfig::parse("spans,json=run.jsonl");
        assert_eq!(c.level, ObsLevel::Spans);
        assert_eq!(c.json_path.as_deref(), Some("run.jsonl"));

        let c = ObsConfig::parse("summary");
        assert_eq!(c.level, ObsLevel::Summary);
        assert_eq!(c.json_path, None);

        // json alone implies span recording.
        let c = ObsConfig::parse("json=x.jsonl");
        assert_eq!(c.level, ObsLevel::Spans);

        // http alone implies metric recording.
        let c = ObsConfig::parse("http=127.0.0.1:9898");
        assert_eq!(c.level, ObsLevel::Summary);
        assert_eq!(c.http_addr.as_deref(), Some("127.0.0.1:9898"));

        // an explicit level combines with an endpoint.
        let c = ObsConfig::parse("spans,http=0.0.0.0:9000");
        assert_eq!(c.level, ObsLevel::Spans);
        assert_eq!(c.http_addr.as_deref(), Some("0.0.0.0:9000"));

        // unknown directives and an addr-less http are ignored.
        let c = ObsConfig::parse("verbose,wat,http=");
        assert_eq!(c, ObsConfig::default());
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
