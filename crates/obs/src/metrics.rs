//! The metrics registry: atomic counters, gauges, and histograms.
//!
//! Every metric is a static inside the global [`Metrics`] struct, so an
//! increment is one predictable branch (the enabled check) plus one
//! relaxed `fetch_add` — no registry lookup on the hot path. Disabled
//! (the default), increments compile down to a relaxed load and a
//! not-taken branch. Low-frequency per-label counts (e.g. CFS survivors
//! per class) go through the dynamic [`labeled_add`] map instead.
//!
//! Metrics observe; they never influence scheduling or results, so
//! counter totals are reproducible wherever the underlying quantity is
//! deterministic (jobs executed, lookups issued, rectangles split). Only
//! the hit/miss *split* of a racing cache double-compute can vary — the
//! lookup total never does.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (no-op while observability is off).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge (no-op while observability is off).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if crate::enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets every histogram (and drift sketch) carries.
pub const HIST_BUCKETS: usize = 40;

/// The bucket index an observation falls into: bucket 0 holds exactly 0,
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, everything ≥ 2^38 lands in the
/// last bucket. Shared by [`Histogram`] and the drift sketches in
/// [`crate::drift`] so reference and live distributions bucket
/// identically.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// The exclusive upper bound of bucket `i` (0 for bucket 0, else `2^i`),
/// matching [`Histogram::snapshot`]'s `(upper, count)` pairs.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// A log₂-bucket histogram: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 holds zero). Tracks count and
/// sum exactly, distribution to a factor of two — enough to separate a
/// microsecond drain from a millisecond one without a lock.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// Records one observation (no-op while observability is off).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_upper(i), n))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Non-empty buckets as `(exclusive upper bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`) by linear interpolation
    /// inside the log₂ bucket holding the target rank.
    ///
    /// **Error bound.** The exact quantile and this estimate always fall
    /// in the same bucket `[2^(i-1), 2^i)`, so the estimate is within a
    /// factor of two of the exact value (absolute error < the bucket
    /// width `2^(i-1)`); under the in-bucket uniformity assumption the
    /// expected error is far smaller. Bucket 0 holds only the value 0,
    /// where the estimate is exact. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank in 1..=count, then mid-rank interpolation within
        // the bucket (a 1-observation bucket estimates its midpoint).
        let rank = (q * self.count as f64)
            .ceil()
            .max(1.0)
            .min(self.count as f64);
        let mut below = 0u64;
        for &(upper, n) in &self.buckets {
            if rank <= (below + n) as f64 {
                if upper == 0 {
                    return 0.0;
                }
                let lower = (upper / 2) as f64;
                let fraction = (rank - below as f64 - 0.5) / n as f64;
                return lower + fraction * (upper as f64 - lower);
            }
            below += n;
        }
        // Unreachable when count == Σ bucket counts; degrade gracefully.
        self.buckets.last().map_or(0.0, |&(upper, _)| upper as f64)
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Hit/miss/eviction counters of one cache family.
#[derive(Debug)]
pub struct CacheFamilyMetrics {
    /// Lookups answered from memory.
    pub hits: Counter,
    /// Lookups that had to compute.
    pub misses: Counter,
    /// Entries dropped to reclaim capacity (the training caches are
    /// currently unbounded per run, so this stays 0 until a capacity
    /// policy lands — the field keeps the report schema stable).
    pub evictions: Counter,
}

impl CacheFamilyMetrics {
    const fn new() -> Self {
        Self {
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
    }
}

/// Every static metric the pipeline feeds. Names in reports are the
/// dotted forms listed per field.
#[derive(Debug)]
pub struct Metrics {
    /// `engine.runs` — engine fan-out calls executed.
    pub engine_runs: Counter,
    /// `engine.jobs` — jobs executed across all engine runs.
    pub engine_jobs: Counter,
    /// `engine.busy_ns` — summed per-worker time spent inside jobs.
    pub engine_busy_ns: Counter,
    /// `engine.span_ns` — summed `workers × wall` of parallel engine
    /// runs; `busy_ns / span_ns` is the worker utilization.
    pub engine_span_ns: Counter,
    /// `engine.workers.max` — widest parallel fan-out seen.
    pub engine_workers_max: Gauge,
    /// `engine.drain_ns` — queue drain (fan-out wall) time distribution.
    pub engine_drain: Histogram,
    /// `params.evals` — distinct SAX combinations scored.
    pub params_evals: Counter,
    /// `params.folds` — validation folds evaluated (Algorithm 3's inner
    /// loop, fed from the fold runner in `rpm-core::params`).
    pub params_folds: Counter,
    /// `params.eval_ns` — per-combination scoring time distribution.
    pub params_eval: Histogram,
    /// `mine.rules` — grammar rules inspected by Algorithm 1.
    pub mine_rules: Counter,
    /// `mine.candidates` — candidates surviving the γ filter.
    pub mine_candidates: Counter,
    /// `prune.pool_in` — candidates entering Algorithm 2.
    pub prune_pool_in: Counter,
    /// `prune.kept` — candidates surviving τ dedup + the pool cap.
    pub prune_kept: Counter,
    /// `cfs.features_in` — features offered to CFS selection.
    pub cfs_features_in: Counter,
    /// `cfs.survivors` — features CFS kept (per-class counts go to the
    /// labeled map as `cfs.survivors.class=<label>`).
    pub cfs_survivors: Counter,
    /// `transform.columns` — pattern-distance columns computed or fetched.
    pub transform_columns: Counter,
    /// `transform.series_ns` — per-series feature-transform latency
    /// (the classification bottleneck: K closest-match scans).
    pub transform_series: Histogram,
    /// `predict.series` — series classified through the trained model.
    pub predict_series: Counter,
    /// `predict.batches` — predict-batch calls (serial or parallel).
    pub predict_batches: Counter,
    /// `predict.latency_ns` — end-to-end single-prediction latency
    /// (transform + SVM argmax), fed by `RpmClassifier::predict`.
    pub predict_latency: Histogram,
    /// `predict.match_distance` — winning (argmin) closest-match distance
    /// per prediction, in millionths (distance × 10⁶ rounded down) so the
    /// unitless z-normalized distance fits the integer histogram.
    pub predict_match_distance: Histogram,
    /// `match.searches` — closest-match scans executed (`best_match`).
    pub match_searches: Counter,
    /// `match.windows` — candidate windows considered across all
    /// closest-match scans (before early abandoning).
    pub match_windows: Counter,
    /// `match.abandoned` — candidate windows cut short by early
    /// abandoning; `abandoned / windows` is the kernel's cumulative
    /// early-abandon rate.
    pub match_abandoned: Counter,
    /// `match.pruned_first_last` — windows killed by the batched
    /// cascade's O(1) first/last z-value bound (tier 1).
    pub match_pruned_first_last: Counter,
    /// `match.pruned_envelope` — windows killed by the PAA envelope
    /// bound (tier 2).
    pub match_pruned_envelope: Counter,
    /// `match.pruned_sax` — windows killed by the optional SAX MINDIST
    /// bound (tier 3).
    pub match_pruned_sax: Counter,
    /// `match.stats_builds` — `RollingStats` constructions; the batched
    /// kernel's sharing shows up as `stats_builds ≪ searches`.
    pub match_stats_builds: Counter,
    /// `cache.frames.*` — PAA-frame cache family.
    pub cache_frames: CacheFamilyMetrics,
    /// `cache.words.*` — word-sequence cache family.
    pub cache_words: CacheFamilyMetrics,
    /// `cache.evals.*` — combination-score cache family.
    pub cache_evals: CacheFamilyMetrics,
    /// `cache.columns.*` — transform-column cache family.
    pub cache_columns: CacheFamilyMetrics,
    /// `ml.svm_trains` — linear SVM trainings.
    pub ml_svm_trains: Counter,
    /// `ml.cv_splits` — stratified folds/splits drawn.
    pub ml_cv_splits: Counter,
    /// `ml.cfs_runs` — CFS best-first searches executed.
    pub ml_cfs_runs: Counter,
    /// `opt.direct.splits` — DIRECT rectangle divisions.
    pub opt_direct_splits: Counter,
    /// `opt.direct.evals` — DIRECT objective evaluations.
    pub opt_direct_evals: Counter,
    /// `fault.injected` — faults fired by the [`crate::fault`] layer.
    pub faults_injected: Counter,
    /// `train.degraded` — searches stopped early by an exhausted
    /// `TrainBudget` (best-so-far parameters returned, model flagged).
    pub train_degraded: Counter,
    /// `data.quarantined` — input rows skipped by the lenient loaders
    /// (NaN/Inf values, ragged lengths, unparseable fields).
    pub data_quarantined: Counter,
    /// `http.rejected` — metrics-endpoint connections refused or cut
    /// short by the serving limits (concurrency bound, oversized or
    /// timed-out requests).
    pub http_rejected: Counter,
    /// `serve.requests` — classify requests accepted by `rpm-serve`
    /// (parsed and enqueued; sheds and parse rejections not included).
    pub serve_requests: Counter,
    /// `serve.shed` — classify requests refused with `429` because the
    /// bounded queue was full (load shedding, not failure).
    pub serve_shed: Counter,
    /// `serve.deadline_exceeded` — classify requests dropped because
    /// their per-request deadline passed before prediction finished.
    pub serve_deadline_exceeded: Counter,
    /// `serve.batches` — micro-batches dispatched to `predict_batch`.
    pub serve_batches: Counter,
    /// `serve.errors` — classify requests answered with `5xx` (injected
    /// faults, engine failures), excluding sheds and deadline drops.
    pub serve_errors: Counter,
    /// `serve.reloads` — model reloads accepted through the canary gate
    /// and swapped into the serving slot.
    pub serve_reloads: Counter,
    /// `serve.reload_rejected` — reload attempts refused by the canary
    /// gate (CRC, schema, drift, or replay failure); the serving
    /// generation is untouched.
    pub serve_reload_rejected: Counter,
    /// `serve.rollbacks` — swaps back to the previous warm generation
    /// (manual `/admin/rollback` or probation auto-rollback).
    pub serve_rollbacks: Counter,
    /// `serve.worker_restarts` — batch workers respawned by the
    /// supervisor after a panic.
    pub serve_worker_restarts: Counter,
    /// `serve.quarantined` — classify requests answered `500` because
    /// their batch was poisoned by a worker panic.
    pub serve_quarantined: Counter,
    /// `serve.generation` — the model generation currently serving
    /// (1-based, bumped by every swap including rollbacks).
    pub serve_generation: Gauge,
    /// `serve.queue_depth` — series currently queued for batching.
    pub serve_queue_depth: Gauge,
    /// `serve.batch_fill` — series per dispatched micro-batch.
    pub serve_batch_fill: Histogram,
    /// `serve.queue_wait_ns` — time requests spent queued before their
    /// batch was formed.
    pub serve_queue_wait: Histogram,
    /// `serve.latency_ns` — end-to-end request latency as measured by
    /// the server (parse + queue + batch + predict + reply).
    pub serve_latency: Histogram,
    /// `trace.recorded` — finished request traces retained by the
    /// flight recorder (forensic, slow-decile, or sampled).
    pub trace_recorded: Counter,
    /// `trace.dropped` — finished request traces the retention policy
    /// discarded (healthy, fast, and not sampled).
    pub trace_dropped: Counter,
}

impl Metrics {
    const fn new() -> Self {
        Self {
            engine_runs: Counter::new(),
            engine_jobs: Counter::new(),
            engine_busy_ns: Counter::new(),
            engine_span_ns: Counter::new(),
            engine_workers_max: Gauge::new(),
            engine_drain: Histogram::new(),
            params_evals: Counter::new(),
            params_folds: Counter::new(),
            params_eval: Histogram::new(),
            mine_rules: Counter::new(),
            mine_candidates: Counter::new(),
            prune_pool_in: Counter::new(),
            prune_kept: Counter::new(),
            cfs_features_in: Counter::new(),
            cfs_survivors: Counter::new(),
            transform_columns: Counter::new(),
            transform_series: Histogram::new(),
            predict_series: Counter::new(),
            predict_batches: Counter::new(),
            predict_latency: Histogram::new(),
            predict_match_distance: Histogram::new(),
            match_searches: Counter::new(),
            match_windows: Counter::new(),
            match_abandoned: Counter::new(),
            match_pruned_first_last: Counter::new(),
            match_pruned_envelope: Counter::new(),
            match_pruned_sax: Counter::new(),
            match_stats_builds: Counter::new(),
            cache_frames: CacheFamilyMetrics::new(),
            cache_words: CacheFamilyMetrics::new(),
            cache_evals: CacheFamilyMetrics::new(),
            cache_columns: CacheFamilyMetrics::new(),
            ml_svm_trains: Counter::new(),
            ml_cv_splits: Counter::new(),
            ml_cfs_runs: Counter::new(),
            opt_direct_splits: Counter::new(),
            opt_direct_evals: Counter::new(),
            faults_injected: Counter::new(),
            train_degraded: Counter::new(),
            data_quarantined: Counter::new(),
            http_rejected: Counter::new(),
            serve_requests: Counter::new(),
            serve_shed: Counter::new(),
            serve_deadline_exceeded: Counter::new(),
            serve_batches: Counter::new(),
            serve_errors: Counter::new(),
            serve_reloads: Counter::new(),
            serve_reload_rejected: Counter::new(),
            serve_rollbacks: Counter::new(),
            serve_worker_restarts: Counter::new(),
            serve_quarantined: Counter::new(),
            serve_generation: Gauge::new(),
            serve_queue_depth: Gauge::new(),
            serve_batch_fill: Histogram::new(),
            serve_queue_wait: Histogram::new(),
            serve_latency: Histogram::new(),
            trace_recorded: Counter::new(),
            trace_dropped: Counter::new(),
        }
    }

    fn counter_entries(&self) -> [(&'static str, &Counter); 41] {
        [
            ("engine.runs", &self.engine_runs),
            ("engine.jobs", &self.engine_jobs),
            ("engine.busy_ns", &self.engine_busy_ns),
            ("engine.span_ns", &self.engine_span_ns),
            ("params.evals", &self.params_evals),
            ("params.folds", &self.params_folds),
            ("mine.rules", &self.mine_rules),
            ("mine.candidates", &self.mine_candidates),
            ("prune.pool_in", &self.prune_pool_in),
            ("prune.kept", &self.prune_kept),
            ("cfs.features_in", &self.cfs_features_in),
            ("cfs.survivors", &self.cfs_survivors),
            ("transform.columns", &self.transform_columns),
            ("predict.series", &self.predict_series),
            ("predict.batches", &self.predict_batches),
            ("match.searches", &self.match_searches),
            ("match.windows", &self.match_windows),
            ("match.abandoned", &self.match_abandoned),
            ("match.pruned_first_last", &self.match_pruned_first_last),
            ("match.pruned_envelope", &self.match_pruned_envelope),
            ("match.pruned_sax", &self.match_pruned_sax),
            ("match.stats_builds", &self.match_stats_builds),
            ("ml.svm_trains", &self.ml_svm_trains),
            ("ml.cv_splits", &self.ml_cv_splits),
            ("ml.cfs_runs", &self.ml_cfs_runs),
            ("fault.injected", &self.faults_injected),
            ("train.degraded", &self.train_degraded),
            ("data.quarantined", &self.data_quarantined),
            ("http.rejected", &self.http_rejected),
            ("serve.requests", &self.serve_requests),
            ("serve.shed", &self.serve_shed),
            ("serve.deadline_exceeded", &self.serve_deadline_exceeded),
            ("serve.batches", &self.serve_batches),
            ("serve.errors", &self.serve_errors),
            ("serve.reloads", &self.serve_reloads),
            ("serve.reload_rejected", &self.serve_reload_rejected),
            ("serve.rollbacks", &self.serve_rollbacks),
            ("serve.worker_restarts", &self.serve_worker_restarts),
            ("serve.quarantined", &self.serve_quarantined),
            ("trace.recorded", &self.trace_recorded),
            ("trace.dropped", &self.trace_dropped),
        ]
    }

    fn opt_entries(&self) -> [(&'static str, &Counter); 2] {
        [
            ("opt.direct.splits", &self.opt_direct_splits),
            ("opt.direct.evals", &self.opt_direct_evals),
        ]
    }

    fn cache_entries(&self) -> [(&'static str, &CacheFamilyMetrics); 4] {
        [
            ("frames", &self.cache_frames),
            ("words", &self.cache_words),
            ("evals", &self.cache_evals),
            ("columns", &self.cache_columns),
        ]
    }

    fn histogram_entries(&self) -> [(&'static str, &Histogram); 8] {
        [
            ("engine.drain_ns", &self.engine_drain),
            ("params.eval_ns", &self.params_eval),
            ("transform.series_ns", &self.transform_series),
            ("predict.latency_ns", &self.predict_latency),
            ("predict.match_distance", &self.predict_match_distance),
            ("serve.batch_fill", &self.serve_batch_fill),
            ("serve.queue_wait_ns", &self.serve_queue_wait),
            ("serve.latency_ns", &self.serve_latency),
        ]
    }
}

static METRICS: Metrics = Metrics::new();

/// The global metrics registry.
pub fn metrics() -> &'static Metrics {
    &METRICS
}

fn labeled() -> &'static Mutex<BTreeMap<String, u64>> {
    static LABELED: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    LABELED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Adds `n` to the dynamic counter `name` (e.g.
/// `cfs.survivors.class=3`). Takes a lock — keep off hot paths.
pub fn labeled_add(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    if let Ok(mut map) = labeled().lock() {
        *map.entry(name.to_string()).or_insert(0) += n;
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Static counters as `(name, value)`, report order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges as `(name, value)`.
    pub gauges: Vec<(&'static str, u64)>,
    /// Cache families as `(family, hits, misses, evictions)`.
    pub cache: Vec<(&'static str, u64, u64, u64)>,
    /// Histograms as `(name, snapshot)`.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Dynamic labeled counters.
    pub labeled: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Looks up a static counter by report name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Summed cache lookups/hits across all families.
    pub fn cache_totals(&self) -> (u64, u64) {
        let hits: u64 = self.cache.iter().map(|(_, h, _, _)| h).sum();
        let lookups: u64 = self.cache.iter().map(|(_, h, m, _)| h + m).sum();
        (lookups, hits)
    }

    /// Worker utilization of the parallel engine runs (`busy / span`),
    /// or `None` when no parallel run happened.
    pub fn engine_utilization(&self) -> Option<f64> {
        let busy = self.counter("engine.busy_ns")?;
        let span = self.counter("engine.span_ns")?;
        (span > 0).then(|| busy as f64 / span as f64)
    }
}

/// Snapshots every metric.
pub fn snapshot() -> MetricsSnapshot {
    let m = metrics();
    MetricsSnapshot {
        counters: m
            .counter_entries()
            .iter()
            .chain(m.opt_entries().iter())
            .map(|(n, c)| (*n, c.get()))
            .collect(),
        gauges: vec![
            ("engine.workers.max", m.engine_workers_max.get()),
            ("serve.generation", m.serve_generation.get()),
            ("serve.queue_depth", m.serve_queue_depth.get()),
        ],
        cache: m
            .cache_entries()
            .iter()
            .map(|(n, f)| (*n, f.hits.get(), f.misses.get(), f.evictions.get()))
            .collect(),
        histograms: m
            .histogram_entries()
            .iter()
            .map(|(n, h)| (*n, h.snapshot()))
            .collect(),
        labeled: labeled()
            .lock()
            .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default(),
    }
}

/// Zeroes every metric (start of a fresh run / after a report).
pub fn reset() {
    let m = metrics();
    for (_, c) in m.counter_entries().iter().chain(m.opt_entries().iter()) {
        c.reset();
    }
    m.engine_workers_max.reset();
    m.serve_generation.reset();
    m.serve_queue_depth.reset();
    for (_, f) in m.cache_entries() {
        f.reset();
    }
    for (_, h) in m.histogram_entries() {
        h.reset();
    }
    if let Ok(mut map) = labeled().lock() {
        map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, ObsLevel};

    #[test]
    fn counters_gate_on_level_and_accumulate_concurrently() {
        let _g = crate::test_lock();
        ObsConfig::default().install();
        reset();
        metrics().engine_jobs.add(5);
        assert_eq!(metrics().engine_jobs.get(), 0, "off = no-op");

        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        metrics().engine_jobs.inc();
                    }
                });
            }
        });
        assert_eq!(metrics().engine_jobs.get(), 8000);
        ObsConfig::default().install();
        reset();
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let _g = crate::test_lock();
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        let h = Histogram::new();
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 6 + (1 << 20));
        assert_eq!(s.buckets, vec![(0, 1), (4, 2), (1 << 21, 1)]);
        assert!(s.mean() > 0.0);
        ObsConfig::default().install();
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let _g = crate::test_lock();
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        let h = Histogram::new();
        // 90 fast observations around 1µs, 10 slow around 1ms.
        for _ in 0..90 {
            h.observe(1_000);
        }
        for _ in 0..10 {
            h.observe(1 << 20);
        }
        let s = h.snapshot();
        // p50 must land in the [512, 1024) bucket holding the 1µs mass.
        let p50 = s.p50();
        assert!((512.0..1024.0).contains(&p50), "p50 = {p50}");
        // p99 must land in the [2^20, 2^21) bucket holding the slow tail.
        let p99 = s.p99();
        assert!(
            ((1u64 << 20) as f64..(1u64 << 21) as f64).contains(&p99),
            "p99 = {p99}"
        );
        // Quantiles are monotone in q.
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        ObsConfig::default().install();
    }

    #[test]
    fn quantiles_on_empty_and_single_observation() {
        let _g = crate::test_lock();
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.p99(), 0.0);

        let h = Histogram::new();
        h.observe(700);
        let s = h.snapshot();
        // One observation: every quantile is the same in-bucket estimate,
        // within a factor of two of the true value.
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            assert!((512.0..1024.0).contains(&est), "q={q}: {est}");
        }
        // A single zero observation is estimated exactly.
        let z = Histogram::new();
        z.observe(0);
        assert_eq!(z.snapshot().p50(), 0.0);
        ObsConfig::default().install();
    }

    #[test]
    fn snapshot_and_labeled_round_trip() {
        let _g = crate::test_lock();
        ObsConfig {
            level: ObsLevel::Summary,
            json_path: None,
            http_addr: None,
        }
        .install();
        reset();
        metrics().cache_words.hits.add(3);
        metrics().cache_words.misses.add(1);
        labeled_add("cfs.survivors.class=2", 4);
        let s = snapshot();
        assert_eq!(
            s.cache.iter().find(|(n, ..)| *n == "words"),
            Some(&("words", 3, 1, 0))
        );
        assert_eq!(s.cache_totals(), (4, 3));
        assert_eq!(s.labeled, vec![("cfs.survivors.class=2".to_string(), 4)]);
        reset();
        let s = snapshot();
        assert_eq!(s.cache_totals(), (0, 0));
        assert!(s.labeled.is_empty());
        ObsConfig::default().install();
    }
}
