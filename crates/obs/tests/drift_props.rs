//! Property tests for the drift scores.
//!
//! The monitor sums epoch sketches into one live window before scoring,
//! so the scores must be invariant under any permutation of the epochs
//! (slots rotate, threads race, replays arrive out of order — none of
//! it may move a verdict). PSI and KS must also stay finite and within
//! their documented ranges on arbitrary bucket counts.

use proptest::prelude::*;
use rpm_obs::drift::{ks, psi};

/// Sums per-epoch bucket counts in the given order (the monitor's
/// window aggregation, extracted).
fn sum_epochs(epochs: &[Vec<u64>], order: &[usize]) -> Vec<u64> {
    let width = epochs.iter().map(|e| e.len()).max().unwrap_or(0);
    let mut out = vec![0u64; width];
    for &i in order {
        for (b, &n) in epochs[i].iter().enumerate() {
            out[b] += n;
        }
    }
    out
}

fn epoch_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..10_000, 1..40), 1..12)
}

proptest! {
    #[test]
    fn epoch_order_never_changes_the_scores(
        epochs in epoch_strategy(),
        reference in proptest::collection::vec(0u64..10_000, 1..40),
        seed in 0u64..u64::MAX,
    ) {
        // A deterministic shuffle of the epoch order from the seed.
        let n = epochs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let in_order: Vec<usize> = (0..n).collect();

        let live_sorted = sum_epochs(&epochs, &in_order);
        let live_shuffled = sum_epochs(&epochs, &order);
        // Integer counts sum exactly, so the scores are bit-identical —
        // not merely close.
        prop_assert_eq!(&live_sorted, &live_shuffled);
        prop_assert_eq!(
            psi(&reference, &live_sorted).to_bits(),
            psi(&reference, &live_shuffled).to_bits()
        );
        prop_assert_eq!(
            ks(&reference, &live_sorted).to_bits(),
            ks(&reference, &live_shuffled).to_bits()
        );
    }

    #[test]
    fn scores_stay_in_range_on_arbitrary_counts(
        p in proptest::collection::vec(0u64..1_000_000, 1..40),
        q in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let s = psi(&p, &q);
        prop_assert!(s.is_finite(), "psi = {s}");
        // Each PSI term (q'-p')·ln(q'/p') is non-negative by sign
        // agreement, so the clamped sum never dips below zero.
        prop_assert!(s >= 0.0, "psi = {s}");
        let d = ks(&p, &q);
        prop_assert!((0.0..=1.0).contains(&d), "ks = {d}");
    }

    #[test]
    fn psi_is_symmetric_and_zero_on_identity(
        p in proptest::collection::vec(0u64..1_000_000, 1..40),
        q in proptest::collection::vec(0u64..1_000_000, 1..40),
        scale in 1u64..50,
    ) {
        prop_assert_eq!(psi(&p, &p), 0.0);
        prop_assert_eq!(ks(&p, &p), 0.0);
        // PSI and KS compare *fractions*: uniformly scaling one side's
        // counts changes nothing beyond float rounding.
        let scaled: Vec<u64> = p.iter().map(|&n| n * scale).collect();
        prop_assert!(psi(&p, &scaled).abs() < 1e-9);
        prop_assert!(ks(&p, &scaled).abs() < 1e-12);
        // Symmetry: PSI's terms are symmetric under argument swap.
        prop_assert!((psi(&p, &q) - psi(&q, &p)).abs() < 1e-9);
        prop_assert!((ks(&p, &q) - ks(&q, &p)).abs() < 1e-12);
    }
}
