//! Property tests for the W3C `traceparent` codec.
//!
//! The serving path ingests this header from arbitrary clients, so the
//! parser must (a) round-trip everything the formatter can emit, (b)
//! accept the W3C-shaped inputs it should (future versions with extra
//! fields), and (c) reject malformed inputs without panicking — a bad
//! header falls back to a generated trace id, never a crash.

use proptest::prelude::*;
use rpm_obs::trace::format_traceparent;
use rpm_obs::{parse_traceparent, SpanId, TraceId};

/// Nonzero 128-bit id from two bounded 64-bit halves (the vendored
/// strategy set has no u128 ranges).
fn trace_id(hi: u64, lo: u64) -> TraceId {
    TraceId(((hi as u128) << 64) | lo.max(1) as u128)
}

proptest! {
    #[test]
    fn format_then_parse_round_trips(
        hi in 0u64..u64::MAX,
        lo in 1u64..u64::MAX,
        span in 1u64..u64::MAX,
        sampled in 0u8..2,
    ) {
        let (trace, sampled) = (trace_id(hi, lo), sampled == 1);
        let header = format_traceparent(trace, SpanId(span), sampled);
        let parsed = parse_traceparent(&header).expect("own output must parse");
        prop_assert_eq!(parsed.trace_id, trace);
        prop_assert_eq!(parsed.parent, SpanId(span));
        prop_assert_eq!(parsed.sampled, sampled);
    }

    #[test]
    fn id_hex_round_trips(hi in 0u64..u64::MAX, lo in 1u64..u64::MAX, span in 1u64..u64::MAX) {
        let t = trace_id(hi, lo);
        prop_assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        let s = SpanId(span);
        prop_assert_eq!(SpanId::from_hex(&s.to_hex()), Some(s));
    }

    #[test]
    fn arbitrary_input_never_panics(
        bytes in proptest::collection::vec(32u8..127, 0..80),
    ) {
        let header = String::from_utf8(bytes).expect("printable ascii");
        // Any outcome is fine; panicking (or accepting zero ids) is not.
        if let Some(tp) = parse_traceparent(&header) {
            prop_assert!(tp.trace_id.0 != 0);
            prop_assert!(tp.parent.0 != 0);
        }
    }

    #[test]
    fn valid_shaped_input_parses_exactly(
        hi in 0u64..u64::MAX,
        lo in 1u64..u64::MAX,
        span in 1u64..u64::MAX,
        flags in 0u8..u8::MAX,
    ) {
        // Hand-built version-00 header with arbitrary flags: only bit 0
        // (sampled) is interpreted; the rest must not break parsing.
        let trace = trace_id(hi, lo);
        let header = format!("00-{:032x}-{span:016x}-{flags:02x}", trace.0);
        let parsed = parse_traceparent(&header).expect("well-formed v00");
        prop_assert_eq!(parsed.trace_id, trace);
        prop_assert_eq!(parsed.sampled, flags & 1 == 1);
    }

    #[test]
    fn future_versions_tolerate_extra_fields(
        version in 1u8..0xff,
        hi in 0u64..u64::MAX,
        lo in 1u64..u64::MAX,
        span in 1u64..u64::MAX,
        extra in proptest::collection::vec(0u8..16, 1..17),
    ) {
        // Per the W3C spec, versions above 00 may append fields; the
        // parser takes the prefix it understands.
        let trace = trace_id(hi, lo);
        let extra: String = extra
            .into_iter()
            .map(|d| char::from_digit(d as u32, 16).expect("hex digit"))
            .collect();
        let header = format!("{version:02x}-{:032x}-{span:016x}-01-{extra}", trace.0);
        let parsed = parse_traceparent(&header).expect("future version with extras");
        prop_assert_eq!(parsed.trace_id, trace);
        prop_assert_eq!(parsed.parent, SpanId(span));
        prop_assert!(parsed.sampled);
    }

    #[test]
    fn corrupting_one_byte_never_widens_acceptance(
        hi in 0u64..u64::MAX,
        lo in 1u64..u64::MAX,
        span in 1u64..u64::MAX,
        at in 0usize..55,
        pick in 0usize..8,
    ) {
        // Replacing any byte with a non-hex, non-separator one must kill
        // the parse (the header is exactly 55 bytes of hex and dashes).
        let header = format_traceparent(trace_id(hi, lo), SpanId(span), true);
        let mut bytes = header.into_bytes();
        bytes[at] = b"GZgz@#%~"[pick];
        let corrupted = String::from_utf8(bytes).expect("ascii");
        prop_assert_eq!(parse_traceparent(&corrupted), None);
    }
}

#[test]
fn rejects_the_documented_invalids() {
    // Version ff is forbidden; v00 takes exactly four fields; zero ids
    // mean "absent"; uppercase hex is not in the W3C grammar.
    for bad in [
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
        "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
        "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
        "",
        "garbage",
    ] {
        assert_eq!(parse_traceparent(bad), None, "{bad:?} must not parse");
    }
    // And the canonical W3C example does parse.
    let tp = parse_traceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01").unwrap();
    assert_eq!(tp.trace_id.to_hex(), "4bf92f3577b34da6a3ce929d0e0e4736");
    assert_eq!(tp.parent.to_hex(), "00f067aa0ba902b7");
    assert!(tp.sampled);
}
