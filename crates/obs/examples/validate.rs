//! Validates a JSONL run report emitted by `rpm_obs::finish()`.
//!
//! Used by CI after running the quickstart example with
//! `RPM_LOG=spans,json=rpm-report.jsonl`:
//!
//! ```sh
//! cargo run --release -p rpm-obs --example validate -- rpm-report.jsonl
//! ```
//!
//! Exits non-zero unless the report has a meta line, non-empty spans with
//! monotone timestamps inside wall time, every cache line satisfying
//! `hits + misses == lookups`, every histogram line satisfying the bucket
//! invariants (`count == Σ bucket counts`, ascending bucket bounds,
//! `sum_ns ≤ count × max upper bound` — all enforced inside
//! `validate_jsonl`), and a populated `engine.jobs` counter.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate <report.jsonl>");
        return ExitCode::from(2);
    };
    match rpm_obs::validate_jsonl(&path) {
        Ok(check) => {
            println!(
                "{path}: OK — {} lines, {} spans, {} stages, {} counters, {} cache families, \
                 {} histograms, {} logs, {} traces, wall {:.3}s, root-stage coverage {:.1}%",
                check.lines,
                check.spans,
                check.stages,
                check.counters.len(),
                check.caches,
                check.histograms,
                check.logs,
                check.traces,
                check.wall_ns as f64 / 1e9,
                100.0 * check.coverage,
            );
            if check.traces > 0 {
                println!(
                    "{path}: {} trace(s) passed the span-tree invariants \
                     (parents resolve, batch links resolve, spans inside their trace)",
                    check.traces
                );
            }
            if check.histograms > 0 {
                println!(
                    "{path}: {} histogram(s) passed the bucket invariants \
                     (count == Σ buckets, ascending bounds, bounded sum)",
                    check.histograms
                );
            }
            match check.counter("engine.jobs") {
                Some(jobs) if jobs > 0 => {
                    println!("{path}: engine.jobs = {jobs}");
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("{path}: engine.jobs not populated (got {other:?})");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
