//! Crash-only worker supervision: panics are quarantined, workers are
//! respawned, and the pool never wedges.
//!
//! The old server trusted `catch_unwind` inside [`process_batch`] to
//! contain prediction panics — but a panic *outside* that inner guard
//! (batch bookkeeping, an armed `serve.worker` fault, a future bug)
//! silently killed the worker thread and shrank the pool until nothing
//! drained the queue. The supervisor makes worker death a handled
//! event instead of an invisible one:
//!
//! * every worker runs under its own `catch_unwind`; before a batch is
//!   processed the worker snapshots each request's reply channel and
//!   trace id, so when the batch panics every caught request gets a
//!   typed `500` (**quarantined** — logged with its trace id, counted
//!   in `serve.quarantined`) instead of a hung connection;
//! * the supervisor thread watches an exit channel, joins dead
//!   workers, and respawns panicked ones with exponential backoff
//!   (rapid repeat deaths back off harder);
//! * a **restart-storm breaker** rate-limits respawns: more than
//!   [`SuperviseSettings::storm_limit`] restarts inside
//!   [`SuperviseSettings::storm_window`] delays further respawns until
//!   the window drains, so a poisoned model cannot melt the host with
//!   a spawn loop;
//! * clean exits (closed queue) are never respawned — that is the
//!   drain path.
//!
//! The supervisor loop doubles as the lifecycle's probation watchdog:
//! every wakeup calls [`Lifecycle::tick`], which auto-rolls-back a
//! freshly swapped model that starts failing.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rpm_ts::Parallelism;

use crate::batch::{process_batch, BatchQueue, Reply};
use crate::lifecycle::{Lifecycle, SlotReader};

/// Worker-pool supervision knobs.
#[derive(Clone, Copy, Debug)]
pub struct SuperviseSettings {
    /// Backoff before respawning a panicked worker; doubles per
    /// consecutive rapid death.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Restarts allowed inside `storm_window` before the breaker
    /// delays further respawns.
    pub storm_limit: usize,
    /// Sliding window for the restart-storm breaker.
    pub storm_window: Duration,
}

impl Default for SuperviseSettings {
    fn default() -> Self {
        Self {
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(2),
            storm_limit: 8,
            storm_window: Duration::from_secs(10),
        }
    }
}

/// A worker lifetime shorter than this marks its panic as part of a
/// *consecutive* failure run and doubles the backoff.
const RAPID_DEATH: Duration = Duration::from_secs(1);

/// Supervisor wakeup cadence: bounds respawn-schedule latency and the
/// probation-tick interval.
const WAKEUP: Duration = Duration::from_millis(100);

struct WorkerExit {
    id: u64,
    panicked: bool,
}

/// Everything a worker thread needs; cloned per spawn.
struct WorkerContext {
    queue: Arc<BatchQueue>,
    lifecycle: Arc<Lifecycle>,
    max_batch: usize,
    window: Duration,
    parallelism: Parallelism,
    exits: Sender<WorkerExit>,
}

impl WorkerContext {
    fn clone_for(&self) -> Self {
        Self {
            queue: Arc::clone(&self.queue),
            lifecycle: Arc::clone(&self.lifecycle),
            max_batch: self.max_batch,
            window: self.window,
            parallelism: self.parallelism,
            exits: self.exits.clone(),
        }
    }
}

/// The supervised worker pool. Owns the supervisor thread; workers are
/// owned (and joined) by the supervisor.
pub(crate) struct Supervisor {
    thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Supervisor {
    /// Spawns `workers` supervised batch workers plus the supervisor
    /// thread itself.
    pub fn start(
        queue: Arc<BatchQueue>,
        lifecycle: Arc<Lifecycle>,
        workers: usize,
        max_batch: usize,
        window: Duration,
        parallelism: Parallelism,
        settings: SuperviseSettings,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rpm-supervisor".to_string())
            .spawn(move || {
                supervise(
                    queue,
                    lifecycle,
                    workers.max(1),
                    max_batch,
                    window,
                    parallelism,
                    settings,
                    stop2,
                )
            })
            .expect("spawn supervisor thread");
        Self {
            thread: Some(thread),
            stop,
        }
    }

    /// Drain-and-join: callers close the queue first so workers exit
    /// cleanly; the stop flag tells the supervisor those exits are the
    /// drain, not crashes.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn supervise(
    queue: Arc<BatchQueue>,
    lifecycle: Arc<Lifecycle>,
    workers: usize,
    max_batch: usize,
    window: Duration,
    parallelism: Parallelism,
    settings: SuperviseSettings,
    stop: Arc<AtomicBool>,
) {
    let (exit_tx, exit_rx): (Sender<WorkerExit>, Receiver<WorkerExit>) = channel();
    let ctx = WorkerContext {
        queue,
        lifecycle: Arc::clone(&lifecycle),
        max_batch,
        window,
        parallelism,
        exits: exit_tx,
    };

    let mut next_id: u64 = 0;
    let mut pool: HashMap<u64, (JoinHandle<()>, Instant)> = HashMap::new();
    for _ in 0..workers {
        let id = next_id;
        next_id += 1;
        pool.insert(id, (spawn_worker(id, ctx.clone_for()), Instant::now()));
    }

    // Respawns are *scheduled*, never slept on: the supervisor must
    // keep draining exits (and ticking probation) while a backoff or
    // the storm breaker holds a slot back.
    let mut pending: VecDeque<Instant> = VecDeque::new();
    let mut consecutive: u32 = 0;
    let mut restarts: VecDeque<Instant> = VecDeque::new();
    let m = rpm_obs::metrics();

    loop {
        let stopping = stop.load(Ordering::Acquire);
        if stopping && pool.is_empty() {
            break;
        }

        match exit_rx.recv_timeout(WAKEUP) {
            Ok(WorkerExit { id, panicked }) => {
                let spawned = pool.remove(&id).map(|(handle, spawned)| {
                    let _ = handle.join();
                    spawned
                });
                if panicked && !stopping {
                    let lived = spawned.map_or(Duration::ZERO, |s| s.elapsed());
                    consecutive = if lived < RAPID_DEATH {
                        consecutive.saturating_add(1)
                    } else {
                        1
                    };
                    let backoff = settings
                        .backoff_base
                        .saturating_mul(1u32 << (consecutive - 1).min(16))
                        .min(settings.backoff_max);
                    rpm_obs::logger::log(
                        "error",
                        "serve.worker",
                        format!(
                            "worker {id} panicked after {lived:?}; respawning in {backoff:?} \
                             (consecutive rapid deaths: {consecutive})"
                        ),
                    );
                    pending.push_back(Instant::now() + backoff);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Due respawns, rate-limited by the storm breaker.
        let now = Instant::now();
        while restarts
            .front()
            .is_some_and(|&t| now - t > settings.storm_window)
        {
            restarts.pop_front();
        }
        while pending.front().is_some_and(|&due| due <= now) {
            if stop.load(Ordering::Acquire) {
                pending.clear();
                break;
            }
            if restarts.len() >= settings.storm_limit {
                // Breaker open: hold every pending respawn until the
                // oldest restart ages out of the window.
                let resume = *restarts.front().expect("non-empty") + settings.storm_window;
                rpm_obs::logger::log(
                    "error",
                    "serve.worker",
                    format!(
                        "restart storm: {} respawns in {:?}; holding further respawns",
                        restarts.len(),
                        settings.storm_window
                    ),
                );
                let head = pending.front_mut().expect("non-empty");
                *head = (*head).max(resume);
                break;
            }
            pending.pop_front();
            restarts.push_back(now);
            let id = next_id;
            next_id += 1;
            m.serve_worker_restarts.inc();
            rpm_obs::logger::log("info", "serve.worker", format!("worker {id} respawned"));
            pool.insert(id, (spawn_worker(id, ctx.clone_for()), Instant::now()));
        }

        // Probation watchdog rides the supervisor's wakeup cadence.
        lifecycle.tick();
    }

    for (_, (handle, _)) in pool {
        let _ = handle.join();
    }
}

fn spawn_worker(id: u64, ctx: WorkerContext) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("rpm-worker-{id}"))
        .spawn(move || {
            let exits = ctx.exits.clone();
            // The outer guard makes *any* worker panic a reported exit;
            // a panicking hook path can never silently shrink the pool.
            let panicked = catch_unwind(AssertUnwindSafe(|| worker_loop(&ctx))).unwrap_or(true);
            let _ = exits.send(WorkerExit { id, panicked });
        })
        .expect("spawn worker thread")
}

/// The worker body: pop a micro-batch, pin the current model
/// generation, process, repeat. Returns `true` when a batch panicked —
/// the caught requests were already quarantined; the worker exits and
/// the supervisor respawns a clean replacement (crash-only: no attempt
/// to keep running on a stack that just unwound).
fn worker_loop(ctx: &WorkerContext) -> bool {
    let mut reader = SlotReader::new(ctx.lifecycle.slot());
    while let Some(batch) = ctx.queue.pop_batch(ctx.max_batch, ctx.window) {
        // Pin the generation for the whole batch: a swap mid-predict
        // does not retarget in-flight work, and the reply carries the
        // generation that actually served it.
        let generation = Arc::clone(reader.current());
        ctx.lifecycle.offer_canary(&batch);

        // Quarantine stubs, snapshotted *before* the batch can panic:
        // enough to answer and attribute every caught request.
        let stubs: Vec<(String, std::sync::mpsc::Sender<Reply>)> = batch
            .iter()
            .map(|p| (p.trace.trace_id().to_hex(), p.reply.clone()))
            .collect();

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The chaos hook: an armed serve.worker fault kills the
            // worker mid-batch, *outside* process_batch's inner guard —
            // exactly the class of panic the supervisor exists for.
            rpm_obs::fault::fire("serve.worker");
            process_batch(&generation, ctx.parallelism, batch);
        }));

        if outcome.is_err() {
            let m = rpm_obs::metrics();
            for (trace, reply) in stubs {
                m.serve_quarantined.inc();
                rpm_obs::logger::log_traced(
                    "error",
                    "serve.worker",
                    Some(trace),
                    "worker panicked; request quarantined".to_string(),
                );
                let _ = reply.send(Reply::Failed(
                    "worker panicked; request quarantined".to_string(),
                ));
            }
            return true;
        }
    }
    false
}
