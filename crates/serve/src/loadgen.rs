//! Open-loop load generation against a running classify server.
//!
//! The generator is *open-loop*: request `k` is scheduled at
//! `start + k / qps` regardless of how earlier requests fared, which is
//! how real arrival processes behave — clients do not politely slow
//! down because the server is struggling. That makes the measured p99
//! honest under overload (a closed-loop generator would hide queueing
//! collapse by self-throttling) and makes the `429` shed rate visible
//! as exactly the traffic the bounded queue refused.
//!
//! Each sender thread owns every `senders`-th tick, sleeps until the
//! tick is due, POSTs one pre-rendered JSONL body over a fresh
//! connection, and records `(status, latency)`. Bodies cycle
//! round-robin by tick index, so offering `n × bodies.len()` requests
//! replays each body exactly `n` times — a uniform replay of the
//! source distribution, which is what the drift monitor compares
//! against its training-time reference. Senders stop issuing
//! once the configured duration has elapsed: ticks the client could
//! not send in time are counted as [`LoadReport::missed`] rather than
//! silently stretching the run into a closed loop, so `achieved_qps`
//! versus `offered_qps` shows exactly how far the client fell behind.
//! Percentiles are exact (sorted samples, no buckets) since a load run
//! holds a few thousand points at most.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One load-generation run against `/classify`.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Offered (not achieved) request rate.
    pub qps: f64,
    /// How long to keep offering.
    pub duration: Duration,
    /// Sender threads sharing the schedule.
    pub senders: usize,
    /// Pre-rendered JSONL request bodies, cycled round-robin by tick
    /// index. Must be non-empty; a single-element vector reproduces
    /// the fixed-body behaviour.
    pub bodies: Vec<String>,
}

/// What a load run observed.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The rate the schedule offered.
    pub offered_qps: f64,
    /// Completed requests (any status) over the wall-clock the run took.
    pub achieved_qps: f64,
    /// Requests sent.
    pub sent: usize,
    /// Scheduled ticks the client could not send before the run's
    /// duration elapsed (sender threads saturated). Zero means the
    /// offered rate was genuinely offered.
    pub missed: usize,
    /// `200` responses.
    pub ok: usize,
    /// `429` sheds (backpressure).
    pub shed: usize,
    /// `504` deadline misses.
    pub deadline: usize,
    /// Everything else: other statuses and connect/IO failures.
    pub errors: usize,
    /// Latency percentiles over the `200` responses, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile over the `200` responses, milliseconds.
    pub p99_ms: f64,
    /// Mean over the `200` responses, milliseconds.
    pub mean_ms: f64,
    /// 99th percentile over the `429` sheds, milliseconds: overload
    /// rejections must stay cheap, and this is the receipt.
    pub shed_p99_ms: f64,
}

impl LoadReport {
    /// One row of the BENCH.md latency-vs-QPS table.
    pub fn markdown_row(&self, label: &str) -> String {
        format!(
            "| {label} | {:.0} | {:.0} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} |",
            self.offered_qps,
            self.achieved_qps,
            self.ok,
            self.shed,
            self.deadline,
            self.errors,
            self.p50_ms,
            self.p99_ms,
            self.shed_p99_ms,
        )
    }

    /// JSON object for machine-readable benchmark artifacts.
    pub fn to_json(&self, label: &str) -> String {
        format!(
            "{{\"label\":\"{label}\",\"offered_qps\":{:.1},\"achieved_qps\":{:.1},\
             \"sent\":{},\"missed\":{},\"ok\":{},\"shed\":{},\"deadline\":{},\"errors\":{},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"mean_ms\":{:.3},\"shed_p99_ms\":{:.3}}}",
            self.offered_qps,
            self.achieved_qps,
            self.sent,
            self.missed,
            self.ok,
            self.shed,
            self.deadline,
            self.errors,
            self.p50_ms,
            self.p99_ms,
            self.mean_ms,
            self.shed_p99_ms,
        )
    }
}

/// Runs one open-loop load generation pass and reports what came back.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    assert!(!config.bodies.is_empty(), "LoadConfig.bodies is empty");
    let total = ((config.qps * config.duration.as_secs_f64()).round() as usize).max(1);
    let senders = config.senders.max(1);
    let tick = Duration::from_secs_f64(1.0 / config.qps.max(0.001));
    // A short runway so every sender is up before tick 0 is due.
    let start = Instant::now() + Duration::from_millis(20);

    // Senders that fall behind stop at the schedule's end rather than
    // stretching the run: an overloaded client is itself a measurement
    // (`missed`), not license to turn the open loop closed.
    let stop_at = start + config.duration;

    let begun = Instant::now();
    let (samples, missed): (Vec<(u16, Duration)>, usize) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..senders {
            let bodies = config.bodies.as_slice();
            let addr = config.addr;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                let mut k = t;
                while k < total {
                    let due = start + tick * (k as u32);
                    let now = Instant::now();
                    if now >= stop_at {
                        // Remaining ticks this sender owns were never
                        // offered; report them instead of sending late.
                        return (local, (total - k).div_ceil(senders));
                    }
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let sent_at = Instant::now();
                    let status = post_once(addr, &bodies[k % bodies.len()]);
                    local.push((status, sent_at.elapsed()));
                    k += senders;
                }
                (local, 0)
            }));
        }
        let mut samples = Vec::new();
        let mut missed = 0usize;
        for handle in handles {
            let (local, local_missed) = handle.join().expect("sender thread");
            samples.extend(local);
            missed += local_missed;
        }
        (samples, missed)
    });
    let wall = begun.elapsed();

    let mut ok_ms: Vec<f64> = Vec::new();
    let mut shed_ms: Vec<f64> = Vec::new();
    let (mut ok, mut shed, mut deadline, mut errors) = (0usize, 0usize, 0usize, 0usize);
    for (status, latency) in &samples {
        let ms = latency.as_secs_f64() * 1e3;
        match status {
            200 => {
                ok += 1;
                ok_ms.push(ms);
            }
            429 => {
                shed += 1;
                shed_ms.push(ms);
            }
            504 => deadline += 1,
            _ => errors += 1,
        }
    }
    LoadReport {
        offered_qps: config.qps,
        achieved_qps: samples.len() as f64 / wall.as_secs_f64().max(1e-9),
        sent: samples.len(),
        missed,
        ok,
        shed,
        deadline,
        errors,
        p50_ms: percentile(&mut ok_ms, 0.50),
        p99_ms: percentile(&mut ok_ms, 0.99),
        mean_ms: if ok_ms.is_empty() {
            0.0
        } else {
            ok_ms.iter().sum::<f64>() / ok_ms.len() as f64
        },
        shed_p99_ms: percentile(&mut shed_ms, 0.99),
    }
}

/// Exact nearest-rank percentile; 0.0 for an empty sample set.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// One POST /classify over a fresh connection; returns the response
/// status, or `0` for connect/IO failures.
fn post_once(addr: SocketAddr, body: &str) -> u16 {
    use std::io::{Read, Write};
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(5)) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    if write!(
        stream,
        "POST /classify HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .is_err()
    {
        return 0;
    }
    let mut response = String::new();
    if stream.read_to_string(&mut response).is_err() {
        return 0;
    }
    // "HTTP/1.0 200 OK" → 200.
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&mut s, 0.50), 50.0);
        assert_eq!(percentile(&mut s, 0.99), 99.0);
        assert_eq!(percentile(&mut s, 1.0), 100.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
        let mut one = [7.5];
        assert_eq!(percentile(&mut one, 0.99), 7.5);
    }

    #[test]
    fn reports_render_rows_and_json() {
        let report = LoadReport {
            offered_qps: 100.0,
            achieved_qps: 98.5,
            sent: 500,
            missed: 2,
            ok: 480,
            shed: 15,
            deadline: 5,
            errors: 0,
            p50_ms: 1.2,
            p99_ms: 4.8,
            mean_ms: 1.5,
            shed_p99_ms: 0.3,
        };
        let row = report.markdown_row("micro-batch");
        assert!(row.starts_with("| micro-batch | 100 |"), "{row}");
        let json = report.to_json("micro-batch");
        assert!(json.contains("\"ok\":480"), "{json}");
        assert!(json.contains("\"shed\":15"), "{json}");
        assert!(json.contains("\"missed\":2"), "{json}");
    }
}
