//! Zero-downtime model lifecycle: the generation slot, the canary-gated
//! reload path, and probation-window rollback.
//!
//! The serving model lives in a [`ModelSlot`] — an Arc-swap idiom built
//! from a `Mutex<Arc<_>>` plus an atomic version counter. The predict
//! hot path never touches the mutex: each worker holds a [`SlotReader`]
//! that caches the current generation and re-reads the slot only when
//! the version counter says a swap happened, so steady-state cost is
//! one relaxed atomic load per batch. A batch that popped before a swap
//! finishes on the generation it started with — its `Arc` pins the old
//! model until the last in-flight batch drops it.
//!
//! Reloads go through a **canary gate** before any traffic sees the
//! candidate:
//!
//! 1. CRC verification via [`crate::load_verified`] (v1 streams refused
//!    unless the policy opts in);
//! 2. schema compatibility ([`rpm_core::ModelSchema::check_compat`]) —
//!    the class vocabulary is part of the `/classify` contract;
//! 3. reference-profile divergence: PSI between the incumbent's and the
//!    candidate's training profiles, per drift metric, capped by
//!    [`ReloadPolicy::canary_psi`];
//! 4. live replay: a sampled ring of recent request series is predicted
//!    through the candidate (panic or error rejects it), and the
//!    resulting drift samples are scored against the candidate's own
//!    profile — a candidate that would page on today's traffic never
//!    gets swapped in.
//!
//! An accepted swap keeps the previous generation warm and opens a
//! **probation window**: if the post-swap error rate spikes or the
//! drift monitor pages before the window closes, [`Lifecycle::tick`]
//! rolls back automatically. `POST /admin/rollback` does the same on
//! demand. Rollback is an involution — the rolled-back-from model
//! becomes the new warm "previous", so a mistaken rollback can itself
//! be rolled back.
//!
//! ```text
//!                    reload(candidate)
//!        ┌───────┐  ──────────────────▶  ┌────────┐ reject (CRC/schema/
//!        │serving│                       │ canary │ drift/replay)
//!        │ gen N │  ◀──────────────────  │  gate  │───▶ 409, gen N intact
//!        └───────┘      swap: gen N+1    └────────┘
//!            ▲          (gen N kept warm)
//!            │ auto-rollback (error spike | drift page, within
//!            │ probation) or POST /admin/rollback: swap back, gen N+2
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rpm_core::{PersistError, RpmClassifier, SchemaMismatch, VerifyReport};
use rpm_obs::drift::{psi, ReferenceProfile, DRIFT_METRIC_NAMES};
use rpm_obs::DriftConfig;
use rpm_ts::Parallelism;

use crate::batch::Pending;
use crate::ServeError;

/// Recent request series kept for canary replay (one sampled per
/// dispatched batch, ring-buffered).
const CANARY_RING: usize = 64;

/// Below this many ringed series the replay drift score is noise and
/// only the panic/error check runs.
const MIN_REPLAY_SCORE: usize = 8;

/// Reload, canary, and probation knobs.
#[derive(Clone, Copy, Debug)]
pub struct ReloadPolicy {
    /// Canary gate threshold: a candidate whose training profile
    /// diverges from the incumbent's (or whose replay of live traffic
    /// diverges from its own profile) beyond this PSI on any drift
    /// metric is rejected. `f64::INFINITY` disables the drift gates.
    pub canary_psi: f64,
    /// Post-swap observation window; zero disables auto-rollback.
    pub probation: Duration,
    /// Auto-rollback when post-swap errors exceed this fraction of
    /// post-swap requests (and `probation_min_errors` is met).
    pub probation_error_pct: f64,
    /// Minimum post-swap errors before the rate triggers — a lone 500
    /// against two requests is not a signal.
    pub probation_min_errors: u64,
    /// Accept v1 (checksum-free) candidate streams.
    pub allow_unverified: bool,
}

impl Default for ReloadPolicy {
    fn default() -> Self {
        Self {
            canary_psi: 1.0,
            probation: Duration::from_secs(60),
            probation_error_pct: 0.2,
            probation_min_errors: 5,
            allow_unverified: false,
        }
    }
}

/// One immutable model generation: what a worker pins for the lifetime
/// of a batch.
#[derive(Debug)]
pub struct ModelGeneration {
    /// The model itself, shared immutably.
    pub model: Arc<RpmClassifier>,
    /// 1-based logical clock; every swap (reloads *and* rollbacks)
    /// takes the next value, so `generation` on a response header
    /// always identifies which swap served it.
    pub generation: u64,
    /// CRC-32 identity of the model's serialized stream, as on
    /// `/healthz`.
    pub fingerprint: String,
}

/// The atomic model slot: Arc-swap semantics from std parts. Readers
/// ([`SlotReader`]) check the version counter (one atomic load) and
/// take the mutex only in the epoch after a swap.
pub struct ModelSlot {
    current: Mutex<Arc<ModelGeneration>>,
    version: AtomicU64,
}

impl ModelSlot {
    fn new(initial: Arc<ModelGeneration>) -> Self {
        Self {
            current: Mutex::new(initial),
            version: AtomicU64::new(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Arc<ModelGeneration>> {
        self.current.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Cold-path read: clones the current generation handle.
    pub fn load(&self) -> Arc<ModelGeneration> {
        Arc::clone(&self.lock())
    }

    /// The swap counter readers compare against their cache.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publishes `next` and returns the displaced generation.
    fn swap(&self, next: Arc<ModelGeneration>) -> Arc<ModelGeneration> {
        let mut slot = self.lock();
        let old = std::mem::replace(&mut *slot, next);
        self.version.fetch_add(1, Ordering::Release);
        old
    }
}

/// A worker's cached view of the [`ModelSlot`]: one atomic load per
/// batch in steady state, a mutex acquisition only right after a swap.
pub struct SlotReader {
    slot: Arc<ModelSlot>,
    seen: u64,
    cached: Arc<ModelGeneration>,
}

impl SlotReader {
    /// A reader primed with the slot's current generation.
    pub fn new(slot: Arc<ModelSlot>) -> Self {
        let seen = slot.version();
        let cached = slot.load();
        Self { slot, seen, cached }
    }

    /// The generation to serve the next batch with.
    pub fn current(&mut self) -> &Arc<ModelGeneration> {
        let version = self.slot.version();
        if version != self.seen {
            self.cached = self.slot.load();
            self.seen = version;
        }
        &self.cached
    }
}

/// Why a reload or rollback was refused. The serving generation is
/// untouched in every case.
#[derive(Debug)]
pub enum ReloadError {
    /// An armed `serve.reload` fault or candidate-file I/O failure.
    Io(std::io::Error),
    /// The candidate stream failed CRC verification.
    Verify(PersistError),
    /// The candidate is a v1 stream and the policy does not allow
    /// unverified models.
    Unverified(VerifyReport),
    /// The candidate's class vocabulary differs from the incumbent's.
    Schema(SchemaMismatch),
    /// The candidate's training profile diverges from the incumbent's
    /// beyond the canary threshold.
    ProfileDivergence {
        /// Drift metric with the worst divergence.
        metric: &'static str,
        /// Its PSI score.
        psi: f64,
        /// The policy threshold it exceeded.
        threshold: f64,
    },
    /// The candidate panicked or errored replaying recent live traffic.
    Replay(String),
    /// The candidate's replay of recent live traffic drifts from its
    /// own training profile beyond the canary threshold.
    ReplayDrift {
        /// Drift metric with the worst divergence.
        metric: &'static str,
        /// Its PSI score.
        psi: f64,
        /// The policy threshold it exceeded.
        threshold: f64,
    },
    /// Rollback requested with no warm previous generation.
    NoPrevious,
}

impl ReloadError {
    /// Stable machine-readable code for admin responses and logs.
    pub fn code(&self) -> &'static str {
        match self {
            Self::Io(_) => "io",
            Self::Verify(_) => "verify_failed",
            Self::Unverified(_) => "unverified",
            Self::Schema(_) => "schema_mismatch",
            Self::ProfileDivergence { .. } => "profile_divergence",
            Self::Replay(_) => "replay_failed",
            Self::ReplayDrift { .. } => "replay_drift",
            Self::NoPrevious => "no_previous_generation",
        }
    }
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "candidate I/O failed: {e}"),
            Self::Verify(e) => write!(f, "candidate failed verification: {e}"),
            Self::Unverified(report) => write!(
                f,
                "candidate is format v{} without checksums (policy refuses unverified models)",
                report.version
            ),
            Self::Schema(e) => write!(f, "candidate is wire-incompatible: {e}"),
            Self::ProfileDivergence {
                metric,
                psi,
                threshold,
            } => write!(
                f,
                "candidate training profile diverges on {metric}: psi {psi:.4} > {threshold}"
            ),
            Self::Replay(e) => write!(f, "candidate failed live-traffic replay: {e}"),
            Self::ReplayDrift {
                metric,
                psi,
                threshold,
            } => write!(
                f,
                "candidate drifts on live traffic ({metric}): psi {psi:.4} > {threshold}"
            ),
            Self::NoPrevious => write!(f, "no previous generation to roll back to"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// What an accepted swap (reload or rollback) produced.
#[derive(Clone, Debug)]
pub struct ReloadOutcome {
    /// The generation now serving.
    pub generation: u64,
    /// Its fingerprint.
    pub fingerprint: String,
    /// Fingerprint of the generation it displaced (kept warm).
    pub displaced: String,
}

/// Post-swap observation state.
struct Probation {
    until: Instant,
    errors_at_swap: u64,
    requests_at_swap: u64,
}

/// The model lifecycle: owns the slot, the warm previous generation,
/// the canary ring, and the probation window.
pub struct Lifecycle {
    slot: Arc<ModelSlot>,
    previous: Mutex<Option<Arc<ModelGeneration>>>,
    probation: Mutex<Option<Probation>>,
    /// Serializes reload/rollback; the hot path never takes it.
    admin_gate: Mutex<()>,
    next_generation: AtomicU64,
    canary: Mutex<VecDeque<Vec<f64>>>,
    policy: ReloadPolicy,
    drift: DriftConfig,
}

impl Lifecycle {
    /// Installs the initial generation (generation 1) and publishes its
    /// drift monitor, fingerprint, and gauge.
    pub(crate) fn new(
        model: Arc<RpmClassifier>,
        fingerprint: String,
        policy: ReloadPolicy,
        drift: DriftConfig,
    ) -> Self {
        let initial = Arc::new(ModelGeneration {
            model,
            generation: 1,
            fingerprint,
        });
        let lifecycle = Self {
            slot: Arc::new(ModelSlot::new(Arc::clone(&initial))),
            previous: Mutex::new(None),
            probation: Mutex::new(None),
            admin_gate: Mutex::new(()),
            next_generation: AtomicU64::new(2),
            canary: Mutex::new(VecDeque::with_capacity(CANARY_RING)),
            policy,
            drift,
        };
        lifecycle.publish(&initial);
        lifecycle
    }

    /// The slot handle workers read through.
    pub(crate) fn slot(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.slot)
    }

    /// The generation currently serving.
    pub fn current(&self) -> Arc<ModelGeneration> {
        self.slot.load()
    }

    /// The reload/probation policy this lifecycle runs under.
    pub fn policy(&self) -> ReloadPolicy {
        self.policy
    }

    /// Samples one series of a dispatched batch into the canary ring.
    /// `try_lock` keeps the worker hot path from ever blocking on an
    /// in-progress reload (which holds the ring while replaying).
    pub(crate) fn offer_canary(&self, batch: &[Pending]) {
        let Some(series) = batch.iter().find_map(|p| p.series.first()) else {
            return;
        };
        if let Ok(mut ring) = self.canary.try_lock() {
            if ring.len() == CANARY_RING {
                ring.pop_front();
            }
            ring.push_back(series.clone());
        }
    }

    /// Reloads from a candidate model file.
    pub fn reload_from_path(&self, path: &Path) -> Result<ReloadOutcome, ReloadError> {
        let bytes = std::fs::read(path).map_err(ReloadError::Io)?;
        self.reload_from_bytes(&bytes)
    }

    /// Runs the candidate through the canary gate and, if it passes,
    /// swaps it in atomically, keeping the displaced generation warm
    /// and opening the probation window. On any error the serving
    /// generation is untouched — there is no half-swapped state: the
    /// single [`ModelSlot::swap`] at the end is the only mutation.
    pub fn reload_from_bytes(&self, bytes: &[u8]) -> Result<ReloadOutcome, ReloadError> {
        let _gate = self.admin_gate.lock().unwrap_or_else(|e| e.into_inner());
        let _span = rpm_obs::enter("serve.reload");
        let m = rpm_obs::metrics();
        let result = self.canary_and_swap(bytes);
        match &result {
            Ok(outcome) => {
                m.serve_reloads.inc();
                rpm_obs::logger::log(
                    "info",
                    "serve.reload",
                    format!(
                        "reload accepted: generation {} fingerprint {} (displaced {} kept warm)",
                        outcome.generation, outcome.fingerprint, outcome.displaced
                    ),
                );
            }
            Err(e) => {
                m.serve_reload_rejected.inc();
                rpm_obs::logger::log(
                    "warn",
                    "serve.reload",
                    format!("reload rejected ({}): {e}", e.code()),
                );
            }
        }
        result
    }

    fn canary_and_swap(&self, bytes: &[u8]) -> Result<ReloadOutcome, ReloadError> {
        // The chaos hook: an armed serve.reload fault fails the reload
        // as a typed error before the candidate is even parsed.
        rpm_obs::fault::point("serve.reload").map_err(ReloadError::Io)?;

        // Gate 1: CRC verification (and the v1 opt-in).
        let (candidate, report) = crate::load_verified(bytes, self.policy.allow_unverified)
            .map_err(|e| match e {
                ServeError::Verify(e) => ReloadError::Verify(e),
                ServeError::Unverified(report) => ReloadError::Unverified(report),
                ServeError::Io(e) => ReloadError::Io(e),
            })?;

        let incumbent = self.current();

        // Gate 2: wire compatibility.
        incumbent
            .model
            .schema()
            .check_compat(&candidate.schema())
            .map_err(ReloadError::Schema)?;

        // Gate 3: training-profile divergence, incumbent vs candidate.
        // Cross-model comparison only makes sense for the metrics that
        // describe the *data* (length, mean_abs, stddev, z_extreme,
        // class mix): the model-derived metrics (match_distance,
        // margin) shift wholesale under any legitimate retrain and are
        // covered by the replay gate instead.
        if let (Some(a), Some(b)) = (
            incumbent
                .model
                .reference_profile()
                .filter(|p| !p.is_empty()),
            candidate.reference_profile().filter(|p| !p.is_empty()),
        ) {
            if let Some((metric, score)) = worst_divergence(a, b, false) {
                if score > self.policy.canary_psi {
                    return Err(ReloadError::ProfileDivergence {
                        metric,
                        psi: score,
                        threshold: self.policy.canary_psi,
                    });
                }
            }
        }

        // Gate 4: live replay through the candidate.
        self.replay_gate(&candidate)?;

        Ok(self.swap_in(Arc::new(candidate), report.fingerprint))
    }

    /// Replays the canary ring through the candidate: a panic or engine
    /// error rejects it outright; with enough samples, the replay's
    /// drift samples are scored against the candidate's own training
    /// profile so a candidate that would page on current traffic is
    /// refused before it serves.
    fn replay_gate(&self, candidate: &RpmClassifier) -> Result<(), ReloadError> {
        let replay: Vec<Vec<f64>> = {
            let ring = self.canary.lock().unwrap_or_else(|e| e.into_inner());
            ring.iter().cloned().collect()
        };
        if replay.is_empty() {
            return Ok(());
        }
        let refs: Vec<&[f64]> = replay.iter().map(Vec::as_slice).collect();
        let observed = catch_unwind(AssertUnwindSafe(|| {
            candidate.predict_batch_observed(&refs, Parallelism::Serial, None)
        }))
        .map_err(|_| ReloadError::Replay("candidate panicked on live traffic".to_string()))?
        .map_err(|e| ReloadError::Replay(e.to_string()))?;

        let profile = candidate.reference_profile().filter(|p| !p.is_empty());
        if let Some(profile) = profile {
            if replay.len() >= MIN_REPLAY_SCORE {
                // Score the replay with the same drift machinery the
                // live monitor uses (its min-sample gating and page
                // thresholds are tuned for small windows): a candidate
                // whose monitor would already page on today's traffic
                // is refused before it serves.
                let monitor = rpm_obs::DriftMonitor::new(profile, self.drift);
                for (_, sample) in &observed {
                    monitor.observe(sample);
                }
                let report = monitor.report();
                if report.degraded() {
                    let worst = report.metrics.iter().max_by(|a, b| a.psi.total_cmp(&b.psi));
                    return Err(ReloadError::ReplayDrift {
                        metric: worst.map_or("unknown", |m| m.metric),
                        psi: worst.map_or(0.0, |m| m.psi),
                        threshold: report.page,
                    });
                }
            }
        }
        Ok(())
    }

    /// The single mutation of a reload: bump the generation clock, swap
    /// the slot, keep the displaced generation warm, publish identity,
    /// open probation.
    fn swap_in(&self, model: Arc<RpmClassifier>, fingerprint: String) -> ReloadOutcome {
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let next = Arc::new(ModelGeneration {
            model,
            generation,
            fingerprint: fingerprint.clone(),
        });
        let displaced = self.slot.swap(Arc::clone(&next));
        *self.previous.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&displaced));
        self.publish(&next);
        self.open_probation();
        ReloadOutcome {
            generation,
            fingerprint,
            displaced: displaced.fingerprint.clone(),
        }
    }

    /// Swaps back to the warm previous generation (manual or probation
    /// triggered). Involution: the rolled-back-from generation becomes
    /// the new warm "previous". The restored model gets a *new*
    /// generation number — the clock orders swaps, fingerprints carry
    /// identity.
    pub fn rollback(&self, reason: &str) -> Result<ReloadOutcome, ReloadError> {
        let _gate = self.admin_gate.lock().unwrap_or_else(|e| e.into_inner());
        let prior = self
            .previous
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .ok_or(ReloadError::NoPrevious)?;
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let restored = Arc::new(ModelGeneration {
            model: Arc::clone(&prior.model),
            generation,
            fingerprint: prior.fingerprint.clone(),
        });
        let displaced = self.slot.swap(Arc::clone(&restored));
        *self.previous.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&displaced));
        *self.probation.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.publish(&restored);
        rpm_obs::metrics().serve_rollbacks.inc();
        rpm_obs::logger::log(
            "warn",
            "serve.reload",
            format!(
                "rolled back ({reason}): generation {generation} restores fingerprint {} \
                 (displacing {})",
                restored.fingerprint, displaced.fingerprint
            ),
        );
        Ok(ReloadOutcome {
            generation,
            fingerprint: restored.fingerprint.clone(),
            displaced: displaced.fingerprint.clone(),
        })
    }

    /// Probation watchdog, called periodically by the supervisor: rolls
    /// back automatically when the post-swap error rate spikes or the
    /// drift monitor pages inside the window. Returns the rollback
    /// outcome when one fired.
    pub fn tick(&self) -> Option<ReloadOutcome> {
        let reason = {
            let mut slot = self.probation.lock().unwrap_or_else(|e| e.into_inner());
            let p = slot.as_ref()?;
            if Instant::now() >= p.until {
                rpm_obs::logger::log(
                    "info",
                    "serve.reload",
                    "probation window passed; swap is permanent".to_string(),
                );
                *slot = None;
                return None;
            }
            let m = rpm_obs::metrics();
            let errors =
                (m.serve_errors.get() + m.serve_quarantined.get()).saturating_sub(p.errors_at_swap);
            let requests = m.serve_requests.get().saturating_sub(p.requests_at_swap);
            let error_spike = errors >= self.policy.probation_min_errors
                && errors as f64 > self.policy.probation_error_pct * requests.max(1) as f64;
            if error_spike {
                Some(format!(
                    "{errors} errors over {requests} requests in probation"
                ))
            } else if rpm_obs::drift::current_report().degraded() {
                Some("drift paged in probation".to_string())
            } else {
                None
            }
        }?;
        self.rollback(&reason).ok()
    }

    /// Makes a generation the observable one: its drift monitor (when
    /// it carries a profile), its fingerprint on `/healthz`, and the
    /// generation gauge on `/metrics`.
    fn publish(&self, generation: &Arc<ModelGeneration>) {
        match generation
            .model
            .reference_profile()
            .filter(|p| !p.is_empty())
        {
            Some(profile) => rpm_obs::drift::install_monitor(Arc::new(rpm_obs::DriftMonitor::new(
                profile, self.drift,
            ))),
            None => rpm_obs::drift::clear_monitor(),
        }
        rpm_obs::drift::set_model_fingerprint(Some(generation.fingerprint.clone()));
        rpm_obs::metrics()
            .serve_generation
            .set(generation.generation);
    }

    fn open_probation(&self) {
        let mut slot = self.probation.lock().unwrap_or_else(|e| e.into_inner());
        *slot = if self.policy.probation.is_zero() {
            None
        } else {
            let m = rpm_obs::metrics();
            Some(Probation {
                until: Instant::now() + self.policy.probation,
                errors_at_swap: m.serve_errors.get() + m.serve_quarantined.get(),
                requests_at_swap: m.serve_requests.get(),
            })
        };
    }
}

/// The worst PSI between two profiles across the drift metrics (plus
/// the class mix, when both profiles cover the same label set). With
/// `model_metrics: false`, the model-derived metrics (match distance,
/// SVM margin) are skipped — they only compare meaningfully when both
/// profiles came from the *same* model, as in the replay gate.
fn worst_divergence(
    a: &ReferenceProfile,
    b: &ReferenceProfile,
    model_metrics: bool,
) -> Option<(&'static str, f64)> {
    const MODEL_METRICS: [&str; 2] = ["match_distance", "margin"];
    let mut worst: Option<(&'static str, f64)> = None;
    let mut consider = |name: &'static str, score: f64| {
        if worst.is_none_or(|(_, w)| score > w) {
            worst = Some((name, score));
        }
    };
    for (metric, name) in DRIFT_METRIC_NAMES.iter().enumerate() {
        if !model_metrics && MODEL_METRICS.contains(name) {
            continue;
        }
        consider(name, psi(&a.global_hist(metric), &b.global_hist(metric)));
    }
    if a.class_labels() == b.class_labels() {
        consider("class_mix", psi(&a.class_mix(), &b.class_mix()));
    }
    worst
}

/// Async-signal-safe process signal flags: SIGHUP requests a reload,
/// SIGTERM/SIGINT request a graceful drain. The handler only stores
/// atomics; the serve loop polls [`take_reload`]/[`shutdown_requested`]
/// and does the actual work on a normal thread. Std-only: the handler
/// registers through the C `signal` entry point std already links.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RELOAD: AtomicBool = AtomicBool::new(false);
    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    const SIGHUP: i32 = 1;
    #[cfg(unix)]
    const SIGINT: i32 = 2;
    #[cfg(unix)]
    const SIGTERM: i32 = 15;

    #[cfg(unix)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    #[cfg(unix)]
    extern "C" fn on_signal(signum: i32) {
        // Only async-signal-safe operations here: two atomic stores.
        match signum {
            SIGHUP => RELOAD.store(true, Ordering::Relaxed),
            SIGINT | SIGTERM => SHUTDOWN.store(true, Ordering::Relaxed),
            _ => {}
        }
    }

    /// Installs the SIGHUP/SIGINT/SIGTERM hooks (no-op off unix).
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            let handler = on_signal as *const () as usize;
            signal(SIGHUP, handler);
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Consumes a pending reload request (SIGHUP since the last call).
    pub fn take_reload() -> bool {
        RELOAD.swap(false, Ordering::Relaxed)
    }

    /// Whether a drain was requested (SIGTERM/SIGINT). Sticky.
    pub fn shutdown_requested() -> bool {
        SHUTDOWN.load(Ordering::Relaxed)
    }

    /// Raises the reload flag programmatically (tests, non-unix).
    pub fn request_reload() {
        RELOAD.store(true, Ordering::Relaxed);
    }

    /// Raises the drain flag programmatically (tests, non-unix).
    pub fn request_shutdown() {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Clears both flags (tests reuse the process-global state).
    pub fn reset() {
        RELOAD.store(false, Ordering::Relaxed);
        SHUTDOWN.store(false, Ordering::Relaxed);
    }
}
