//! The `/classify` wire protocol: JSON Lines in, JSON Lines out.
//!
//! Each request-body line is one series to classify, either a bare
//! number array or an object carrying an optional client id:
//!
//! ```text
//! [0.12, -3.4, 5.0e-1, 7]
//! {"id": "icu-314", "series": [0.12, -3.4]}
//! ```
//!
//! Each response line answers the same-positioned request line:
//!
//! ```text
//! {"label": 2}
//! {"id": "icu-314", "label": 0}
//! ```
//!
//! Whole-request failures (shed, deadline, fault) come back as a single
//! JSON object with an `"error"` field and the HTTP status carries the
//! verdict. The parser is a minimal hand-rolled one — the build is
//! dependency-free by policy — and accepts exactly the subset above:
//! values must be finite JSON numbers, ids JSON strings without exotic
//! escapes. Anything else is a parse error naming the line, answered
//! with `400`.

/// One parsed request line: the optional client id and the series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesRequest {
    /// Client-chosen id echoed into the response line, if any.
    pub id: Option<String>,
    /// The series to classify.
    pub values: Vec<f64>,
}

/// Parses a whole JSONL request body. Blank lines are skipped; an empty
/// body (no series at all) is an error.
pub fn parse_body(body: &[u8]) -> Result<Vec<SeriesRequest>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    if out.is_empty() {
        return Err("empty request: no series lines".to_string());
    }
    Ok(out)
}

/// Parses one request line (bare array or `{"id", "series"}` object).
pub fn parse_line(line: &str) -> Result<SeriesRequest, String> {
    let mut p = Parser {
        chars: line.char_indices().peekable(),
        src: line,
    };
    p.skip_ws();
    let request = match p.peek() {
        Some('[') => SeriesRequest {
            id: None,
            values: p.parse_number_array()?,
        },
        Some('{') => p.parse_request_object()?,
        _ => return Err("expected a JSON array or object".to_string()),
    };
    p.skip_ws();
    if p.peek().is_some() {
        return Err("trailing characters after the JSON value".to_string());
    }
    if request.values.is_empty() {
        return Err("series is empty".to_string());
    }
    Ok(request)
}

/// Renders one response line. `None` labels never happen today, but the
/// signature mirrors the request shape: id echoed when present.
pub fn format_response_line(id: Option<&str>, label: usize) -> String {
    match id {
        Some(id) => format!("{{\"id\":{},\"label\":{label}}}", quote_json(id)),
        None => format!("{{\"label\":{label}}}"),
    }
}

/// Renders the single-object error body used by non-200 responses.
pub fn format_error(code: &str, detail: &str) -> String {
    format!(
        "{{\"error\":{},\"detail\":{}}}\n",
        quote_json(code),
        quote_json(detail)
    )
}

/// JSON string quoting with the mandatory escapes.
pub(crate) fn quote_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn next(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected {c:?}, found {got:?}")),
            None => Err(format!("expected {c:?}, found end of line")),
        }
    }

    fn parse_number_array(&mut self) -> Result<Vec<f64>, String> {
        self.expect('[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.next();
            return Ok(values);
        }
        loop {
            values.push(self.parse_number()?);
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some(']') => return Ok(values),
                Some(c) => return Err(format!("expected ',' or ']', found {c:?}")),
                None => return Err("unterminated array".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = match self.chars.peek() {
            Some(&(i, _)) => i,
            None => return Err("expected a number, found end of line".to_string()),
        };
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        let token = &self.src[start..end];
        let v: f64 = token.parse().map_err(|_| format!("bad number {token:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number {token:?}"));
        }
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some(c) => return Err(format!("unsupported escape \\{c}")),
                    None => return Err("unterminated string escape".to_string()),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_request_object(&mut self) -> Result<SeriesRequest, String> {
        self.expect('{')?;
        let mut id = None;
        let mut values: Option<Vec<f64>> = None;
        self.skip_ws();
        if self.peek() == Some('}') {
            self.next();
        } else {
            loop {
                let key = self.parse_string()?;
                self.expect(':')?;
                self.skip_ws();
                match key.as_str() {
                    "id" => id = Some(self.parse_string()?),
                    "series" => values = Some(self.parse_number_array()?),
                    other => return Err(format!("unknown key {other:?} (id|series)")),
                }
                self.skip_ws();
                match self.next() {
                    Some(',') => {
                        self.skip_ws();
                        continue;
                    }
                    Some('}') => break,
                    Some(c) => return Err(format!("expected ',' or '}}', found {c:?}")),
                    None => return Err("unterminated object".to_string()),
                }
            }
        }
        Ok(SeriesRequest {
            id,
            values: values.ok_or_else(|| "object is missing \"series\"".to_string())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_arrays_parse() {
        let r = parse_line("[0.5, -1, 2.5e1, 7]").unwrap();
        assert_eq!(r.id, None);
        assert_eq!(r.values, vec![0.5, -1.0, 25.0, 7.0]);
    }

    #[test]
    fn objects_carry_ids() {
        let r = parse_line(r#"{"id": "abc-1", "series": [1, 2, 3]}"#).unwrap();
        assert_eq!(r.id.as_deref(), Some("abc-1"));
        assert_eq!(r.values, vec![1.0, 2.0, 3.0]);
        // Key order is free.
        let r = parse_line(r#"{"series": [4], "id": "z"}"#).unwrap();
        assert_eq!(r.id.as_deref(), Some("z"));
        assert_eq!(r.values, vec![4.0]);
    }

    #[test]
    fn bodies_split_lines_and_skip_blanks() {
        let body = b"[1,2]\n\n{\"series\":[3]}\n";
        let parsed = parse_body(body).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].values, vec![3.0]);
    }

    #[test]
    fn junk_is_rejected_with_line_numbers() {
        assert!(parse_body(b"").is_err());
        assert!(parse_body(b"\n\n").is_err());
        let e = parse_body(b"[1,2]\nnot json\n").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        assert!(parse_line("[1, 2,]").is_err());
        assert!(parse_line("[]").is_err(), "empty series");
        assert!(parse_line("[1] trailing").is_err());
        assert!(parse_line(r#"{"series": [1], "extra": 3}"#).is_err());
        assert!(parse_line(r#"{"id": "x"}"#).is_err(), "missing series");
        assert!(parse_line("[1e999]").is_err(), "overflow to inf");
    }

    #[test]
    fn response_lines_echo_ids_with_escaping() {
        assert_eq!(format_response_line(None, 3), "{\"label\":3}");
        assert_eq!(
            format_response_line(Some("a\"b"), 0),
            "{\"id\":\"a\\\"b\",\"label\":0}"
        );
        let err = format_error("deadline_exceeded", "1ms deadline passed");
        assert!(err.contains("\"deadline_exceeded\""), "{err}");
    }

    #[test]
    fn parse_and_format_roundtrip() {
        let line = format_response_line(Some("id-9"), 4);
        // The response line itself is valid JSON by our own parser's
        // standards for objects (different keys, so just sanity-check
        // the quoting survived).
        assert_eq!(line, "{\"id\":\"id-9\",\"label\":4}");
    }
}
