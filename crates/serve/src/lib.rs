//! `rpm-serve`: a concurrent classify server over a shared RPM model.
//!
//! The serving story in one sentence: load a persisted model **once**
//! (CRC-verified before the listener opens), share it immutably behind
//! an `Arc` across a worker pool, and turn concurrent `/classify`
//! requests into *micro-batches* so the per-series cost approaches
//! offline [`predict_batch`](rpm_core::RpmClassifier::predict_batch)
//! throughput instead of per-request latency.
//!
//! Pipeline, per request:
//!
//! ```text
//! POST /classify (JSONL)
//!   → parse            [proto]          400 on malformed lines
//!   → bounded enqueue  [batch]          429 + Retry-After when full
//!   → micro-batch pop  [worker pool]    flush on size or window
//!   → predict_batch_with(&[&[f64]],…)   zero-copy borrow of request buffers
//!   → JSONL response / 504 deadline / 500 fault
//! ```
//!
//! Three properties are load-bearing:
//!
//! - **Backpressure over collapse.** The queue is bounded in series;
//!   beyond it requests shed immediately with `429` + `Retry-After`
//!   instead of queueing into latencies nobody will wait for.
//! - **Deadlines, TrainBudget-style.** Each request carries a deadline;
//!   workers drop expired entries before dispatch, and the handler's
//!   reply-timeout backstops deadlines that expire mid-predict. Both
//!   answer `504` with a `deadline_exceeded` error body.
//! - **Verified start.** [`load_verified`] runs the v2 per-section CRC
//!   check before any traffic is accepted; a v1 stream (no checksums)
//!   is refused unless explicitly allowed.
//!
//! Observability rides the existing `rpm-obs` registry: `serve.*`
//! counters and histograms surface on the same `/metrics` endpoint,
//! and the `serve.request` / `serve.batch` / `serve.reload` /
//! `serve.worker` fault sites make the request, reload, and worker
//! paths chaos-testable like the rest of the pipeline.
//!
//! Since the lifecycle PR the model is no longer a fixed `Arc` for the
//! process lifetime: it lives in a generation slot ([`lifecycle`])
//! behind `POST /admin/reload` / `POST /admin/rollback` (and SIGHUP),
//! and the worker pool is crash-only under a supervisor
//! ([`SuperviseSettings`]) that quarantines panicked batches and
//! respawns dead workers with backoff.

mod batch;
pub mod lifecycle;
pub mod loadgen;
pub mod proto;
mod supervise;

use std::io::Read;
use std::path::PathBuf;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use batch::{BatchQueue, Pending, Reply};
use rpm_core::{PersistError, RpmClassifier, VerifyReport};
use rpm_obs::{Request, Response, ServeLimits, TraceCtx, TraceOutcome};
use rpm_ts::Parallelism;
use supervise::Supervisor;

pub use lifecycle::{
    signals, Lifecycle, ModelGeneration, ReloadError, ReloadOutcome, ReloadPolicy,
};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use supervise::SuperviseSettings;

/// Everything the server needs besides the model.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Micro-batching worker threads popping the shared queue.
    pub workers: usize,
    /// Flush a micro-batch at this many series.
    pub max_batch: usize,
    /// …or when this much time has passed since the batch opened.
    pub batch_window: Duration,
    /// Queue bound in series; pushes beyond it shed with `429`.
    pub queue_depth: usize,
    /// Per-request deadline, enqueue to reply.
    pub deadline: Duration,
    /// Execution mode handed to `predict_batch_with` per batch.
    pub parallelism: Parallelism,
    /// Per-connection HTTP limits (timeouts, body cap, admission).
    pub limits: ServeLimits,
    /// Drift-monitor window shape and PSI thresholds. Only takes effect
    /// when the served model carries a training-time reference profile;
    /// without one, drift endpoints report `unavailable`.
    pub drift: rpm_obs::DriftConfig,
    /// Hot-reload canary thresholds and the post-swap probation window.
    pub reload: ReloadPolicy,
    /// Worker-pool supervision: respawn backoff and the restart-storm
    /// breaker.
    pub supervise: SuperviseSettings,
    /// Where the served model lives on disk: the default candidate for
    /// `POST /admin/reload` with no explicit path (and for SIGHUP).
    pub model_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9899".to_string(),
            workers: 2,
            max_batch: 32,
            batch_window: Duration::from_millis(2),
            queue_depth: 1024,
            deadline: Duration::from_secs(2),
            parallelism: Parallelism::Serial,
            limits: ServeLimits::default(),
            drift: rpm_obs::DriftConfig::default(),
            reload: ReloadPolicy::default(),
            supervise: SuperviseSettings::default(),
            model_path: None,
        }
    }
}

/// Why the server refused to start.
#[derive(Debug)]
pub enum ServeError {
    /// The model stream failed verification (bad CRC, truncation, …).
    Verify(PersistError),
    /// The stream is a v1 model: it carries no checksums, so integrity
    /// cannot be established. Pass `allow_unverified` to serve it
    /// anyway (and log that you did).
    Unverified(VerifyReport),
    /// Bind or I/O failure bringing the listener up.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Verify(e) => write!(f, "model failed verification: {e}"),
            Self::Unverified(report) => write!(
                f,
                "model is format v{} without checksums; integrity cannot be \
                 verified (pass --allow-unverified to serve it anyway)",
                report.version
            ),
            Self::Io(e) => write!(f, "server I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Verifies and loads a model for serving: the stream is checksummed
/// end-to-end (v2 per-section CRCs) **before** parsing, and v1 streams
/// — which carry no checksums — are refused unless `allow_unverified`.
/// Returns the loaded model and the verification report (callers log
/// the section/pattern counts at startup).
pub fn load_verified(
    bytes: &[u8],
    allow_unverified: bool,
) -> Result<(RpmClassifier, VerifyReport), ServeError> {
    let report = RpmClassifier::verify(bytes).map_err(ServeError::Verify)?;
    if report.version < 2 && !allow_unverified {
        return Err(ServeError::Unverified(report));
    }
    let model = RpmClassifier::load(bytes).map_err(ServeError::Verify)?;
    Ok((model, report))
}

/// [`load_verified`] from a file path.
pub fn load_verified_path(
    path: &std::path::Path,
    allow_unverified: bool,
) -> Result<(RpmClassifier, VerifyReport), ServeError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    load_verified(&bytes, allow_unverified)
}

/// A running classify server: HTTP listener, supervised micro-batching
/// worker pool, and the model lifecycle behind `/admin/reload` and
/// `/admin/rollback`.
pub struct Server {
    http: rpm_obs::MetricsServer,
    queue: Arc<BatchQueue>,
    lifecycle: Arc<Lifecycle>,
    supervisor: Option<Supervisor>,
}

impl Server {
    /// Starts the listener and worker pool. The model is shared
    /// immutably behind the generation slot: every worker pins the
    /// current generation per batch, and prediction borrows request
    /// buffers without copying them. The serving fingerprint is
    /// computed from the model's canonical serialization; when the
    /// model came through [`load_verified`], prefer
    /// [`Server::start_verified`] so `/healthz` reports the exact
    /// fingerprint of the bytes on disk.
    pub fn start(model: Arc<RpmClassifier>, config: &ServeConfig) -> Result<Server, ServeError> {
        let fingerprint = model.current_fingerprint();
        Self::start_inner(model, fingerprint, config)
    }

    /// [`Server::start`] with the fingerprint taken from a
    /// [`VerifyReport`] (the CRC of the model file actually loaded).
    pub fn start_verified(
        model: Arc<RpmClassifier>,
        report: &VerifyReport,
        config: &ServeConfig,
    ) -> Result<Server, ServeError> {
        Self::start_inner(model, report.fingerprint.clone(), config)
    }

    fn start_inner(
        model: Arc<RpmClassifier>,
        fingerprint: String,
        config: &ServeConfig,
    ) -> Result<Server, ServeError> {
        // A serving endpoint without metric recording would scrape
        // empty; bump to Summary (keeping any RPM_LOG JSONL path) the
        // way `rpm-cli classify --metrics-addr` does.
        if !rpm_obs::enabled() {
            rpm_obs::ObsConfig {
                level: rpm_obs::ObsLevel::Summary,
                json_path: rpm_obs::json_path(),
                http_addr: None,
            }
            .install();
        }
        // The lifecycle installs generation 1 and publishes its drift
        // monitor (armed iff the model carries a reference profile),
        // fingerprint, and the generation gauge.
        let lifecycle = Arc::new(Lifecycle::new(
            model,
            fingerprint,
            config.reload,
            config.drift,
        ));
        let queue = Arc::new(BatchQueue::new(config.queue_depth));

        let supervisor = Supervisor::start(
            Arc::clone(&queue),
            Arc::clone(&lifecycle),
            config.workers,
            config.max_batch,
            config.batch_window,
            config.parallelism,
            config.supervise,
        );

        let handler_queue = Arc::clone(&queue);
        let deadline = config.deadline;
        let reload_lc = Arc::clone(&lifecycle);
        let rollback_lc = Arc::clone(&lifecycle);
        let default_path = config.model_path.clone();
        let router = rpm_obs::metrics_routes()
            .route("POST", "/classify", move |req| {
                classify(&handler_queue, deadline, req)
            })
            .route("POST", "/admin/reload", move |req| {
                admin_reload(&reload_lc, default_path.as_deref(), req)
            })
            .route("POST", "/admin/rollback", move |_req| {
                admin_rollback(&rollback_lc)
            });
        let http = rpm_obs::serve_router(&config.addr, config.limits, router)?;

        Ok(Server {
            http,
            queue,
            lifecycle,
            supervisor: Some(supervisor),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.http.local_addr()
    }

    /// The model lifecycle: reload/rollback programmatically (the CLI's
    /// SIGHUP path) or drive probation ticks in tests.
    pub fn lifecycle(&self) -> Arc<Lifecycle> {
        Arc::clone(&self.lifecycle)
    }

    /// Orderly shutdown: stop accepting, close the queue (workers drain
    /// what is left), join the pool via the supervisor, detach the
    /// drift monitor and identity gauges so a later server (or test)
    /// starts from a clean slate.
    pub fn shutdown(&mut self) {
        self.http.shutdown();
        self.queue.close();
        if let Some(mut supervisor) = self.supervisor.take() {
            supervisor.stop();
        }
        rpm_obs::drift::clear_monitor();
        rpm_obs::drift::set_model_fingerprint(None);
        let m = rpm_obs::metrics();
        m.serve_generation.set(0);
        m.serve_queue_depth.set(0);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Minimal extractor for the one admin-body field we accept: the value
/// of `"key": "…"` in a flat JSON object (no escapes in the value —
/// file paths with quotes or backslashes should use the CLI).
fn extract_json_string(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let after_key = &body[body.find(&needle)? + needle.len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
    let value = after_colon.strip_prefix('"')?;
    Some(value[..value.find('"')?].to_string())
}

/// `POST /admin/reload`: run the candidate (body `{"path":"…"}`, else
/// the path the server was started with) through the canary gate and
/// swap it in. `200` on swap; `409` with a machine-readable `reason`
/// when the candidate is rejected — the serving generation is
/// untouched in that case.
fn admin_reload(
    lifecycle: &Lifecycle,
    default_path: Option<&std::path::Path>,
    req: &Request,
) -> Response {
    let explicit = extract_json_string(&String::from_utf8_lossy(&req.body), "path");
    let outcome = match (&explicit, default_path) {
        (Some(path), _) => lifecycle.reload_from_path(std::path::Path::new(path)),
        (None, Some(path)) => lifecycle.reload_from_path(path),
        (None, None) => {
            return Response::json(
                400,
                proto::format_error(
                    "bad_request",
                    "no candidate: POST {\"path\":\"…\"} or start the server with a model path",
                ),
            )
        }
    };
    match outcome {
        Ok(o) => Response::json(
            200,
            format!(
                "{{\"result\":\"swapped\",\"generation\":{},\"fingerprint\":{},\"displaced\":{}}}\n",
                o.generation,
                proto::quote_json(&o.fingerprint),
                proto::quote_json(&o.displaced)
            ),
        ),
        Err(e) => Response::json(
            409,
            format!(
                "{{\"error\":\"reload_rejected\",\"reason\":{},\"detail\":{}}}\n",
                proto::quote_json(e.code()),
                proto::quote_json(&e.to_string())
            ),
        ),
    }
}

/// `POST /admin/rollback`: swap back to the warm previous generation.
/// `409` when there is none.
fn admin_rollback(lifecycle: &Lifecycle) -> Response {
    match lifecycle.rollback("admin request") {
        Ok(o) => Response::json(
            200,
            format!(
                "{{\"result\":\"rolled_back\",\"generation\":{},\"fingerprint\":{},\"displaced\":{}}}\n",
                o.generation,
                proto::quote_json(&o.fingerprint),
                proto::quote_json(&o.displaced)
            ),
        ),
        Err(e) => Response::json(
            409,
            format!(
                "{{\"error\":\"rollback_rejected\",\"reason\":{},\"detail\":{}}}\n",
                proto::quote_json(e.code()),
                proto::quote_json(&e.to_string())
            ),
        ),
    }
}

/// Closes out a request's trace and stamps the response with its
/// identity: finish the span tree, offer the record to the flight
/// recorder (tail-based retention), attach Prometheus exemplars for the
/// values that *were* observed into histograms this request (so every
/// exemplar's trace id resolves against `/debug/traces`), log non-OK
/// outcomes with the trace id, and echo `X-Request-Id` + `Traceparent`
/// on the response — every response, including `429`/`504`.
fn finish_traced(
    trace: &TraceCtx,
    outcome: TraceOutcome,
    latency_ns: Option<u64>,
    response: Response,
) -> Response {
    let status = response.status;
    let record = trace.finish(outcome, status);
    let trace_hex = record.trace_id.to_hex();
    let queue_wait = record.span("queue_wait").map(|s| s.dur_ns);
    let retained = rpm_obs::recorder().record(record);
    if retained {
        if let Some(latency) = latency_ns {
            rpm_obs::record_exemplar("serve.latency_ns", latency, trace.trace_id());
            if let Some(wait) = queue_wait {
                rpm_obs::record_exemplar("serve.queue_wait_ns", wait, trace.trace_id());
            }
        }
    }
    if outcome != TraceOutcome::Ok {
        rpm_obs::logger::log_traced(
            "info",
            "serve",
            Some(trace_hex.clone()),
            format!("request {} ({status})", outcome.as_str()),
        );
    }
    response
        .with_header("X-Request-Id", trace_hex)
        .with_header("Traceparent", trace.traceparent())
}

/// The `POST /classify` handler: parse, enqueue (or shed), await the
/// worker's reply under the request deadline. The whole path is
/// request-traced: a W3C `traceparent` header is ingested (or a trace
/// id generated), `parse`/`respond` spans are recorded here, the
/// workers contribute `queue_wait`/`batch`/`predict`, and every exit —
/// 200, 400, 429, 500, 504 — flows through [`finish_traced`].
fn classify(queue: &BatchQueue, deadline: Duration, req: &Request) -> Response {
    let m = rpm_obs::metrics();
    m.serve_requests.inc();
    let started = Instant::now();
    let trace = TraceCtx::begin(req.header("traceparent"));

    if let Err(e) = rpm_obs::fault::point("serve.request") {
        m.serve_errors.inc();
        return finish_traced(
            &trace,
            TraceOutcome::Error,
            None,
            Response::json(500, proto::format_error("internal", &e.to_string())),
        );
    }

    let parse_start = rpm_obs::now_ns();
    let parsed = proto::parse_body(&req.body);
    trace.add_span(
        "parse",
        parse_start,
        rpm_obs::now_ns().saturating_sub(parse_start),
    );
    let requests = match parsed {
        Ok(r) => r,
        Err(e) => {
            return finish_traced(
                &trace,
                TraceOutcome::BadRequest,
                None,
                Response::json(400, proto::format_error("bad_request", &e)),
            )
        }
    };
    let ids: Vec<Option<String>> = requests.iter().map(|r| r.id.clone()).collect();
    let series: Vec<Vec<f64>> = requests.into_iter().map(|r| r.values).collect();

    let (reply_tx, reply_rx) = channel();
    let pending = Pending {
        series,
        enqueued: started,
        enqueued_ns: rpm_obs::now_ns(),
        deadline: started + deadline,
        trace: Arc::clone(&trace),
        reply: reply_tx,
    };
    if queue.try_push(pending).is_err() {
        m.serve_shed.inc();
        return finish_traced(
            &trace,
            TraceOutcome::Shed,
            None,
            Response::json(
                429,
                proto::format_error("overloaded", "queue full; retry after backoff"),
            )
            .with_header("Retry-After", "1"),
        );
    }

    // Small grace over the deadline: the worker-side gate is the real
    // enforcement; the timeout here only backstops a predict call that
    // straddles the deadline (answered 504 all the same).
    let wait = deadline + Duration::from_millis(50);
    let (outcome, response) = match reply_rx.recv_timeout(wait) {
        Ok(Reply::Labels { labels, generation }) => {
            let respond_start = rpm_obs::now_ns();
            let mut body = String::with_capacity(labels.len() * 16);
            for (id, label) in ids.iter().zip(&labels) {
                body.push_str(&proto::format_response_line(id.as_deref(), *label));
                body.push('\n');
            }
            trace.add_span(
                "respond",
                respond_start,
                rpm_obs::now_ns().saturating_sub(respond_start),
            );
            (
                TraceOutcome::Ok,
                Response::json(200, body)
                    .with_content_type("application/jsonl; charset=utf-8")
                    .with_header("X-Model-Generation", generation.to_string()),
            )
        }
        Ok(Reply::DeadlineExceeded) | Err(RecvTimeoutError::Timeout) => {
            m.serve_deadline_exceeded.inc();
            (
                TraceOutcome::Deadline,
                Response::json(
                    504,
                    proto::format_error(
                        "deadline_exceeded",
                        &format!(
                            "{}ms deadline passed before prediction",
                            deadline.as_millis()
                        ),
                    ),
                ),
            )
        }
        Ok(Reply::Failed(msg)) => {
            m.serve_errors.inc();
            (
                TraceOutcome::Error,
                Response::json(500, proto::format_error("internal", &msg)),
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            m.serve_errors.inc();
            (
                TraceOutcome::Error,
                Response::json(
                    500,
                    proto::format_error("internal", "worker dropped the request"),
                ),
            )
        }
    };
    let latency_ns = started.elapsed().as_nanos() as u64;
    m.serve_latency.observe(latency_ns);
    finish_traced(&trace, outcome, Some(latency_ns), response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rpm_core::RpmConfig;
    use rpm_sax::SaxConfig;
    use rpm_ts::Dataset;
    use std::io::Write;
    use std::net::TcpStream;

    /// Two planted-motif classes, the shape the persistence tests use.
    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("serve-test", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..10 {
                let mut s: Vec<f64> = (0..96).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let at = rng.gen_range(0usize..96 - 20);
                for i in 0..20 {
                    let t = std::f64::consts::TAU * i as f64 / 20.0;
                    s[at + i] += 3.0 * if class == 0 { t.sin() } else { -t.sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    fn tiny_model() -> RpmClassifier {
        let config = RpmConfig::fixed(SaxConfig::new(20, 4, 4));
        RpmClassifier::train(&dataset(1), &config).unwrap()
    }

    /// Serializes tests that start a [`Server`]: the drift monitor and
    /// model fingerprint are process-global.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn post(addr: std::net::SocketAddr, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /classify HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_classify_end_to_end() {
        let _serial = serial();
        let model = Arc::new(tiny_model());
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        };
        let mut server = Server::start(Arc::clone(&model), &config).unwrap();
        let addr = server.local_addr();

        let series = dataset(2).series.remove(0);
        let rendered: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
        let body = format!("{{\"id\":\"probe\",\"series\":[{}]}}\n", rendered.join(","));
        let response = post(addr, &body);
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        let expected = model.predict_batch(std::slice::from_ref(&series));
        assert!(
            response.contains(&format!("{{\"id\":\"probe\",\"label\":{}}}", expected[0])),
            "{response}"
        );

        // Malformed body → 400 with a line-numbered error.
        let bad = post(addr, "not json\n");
        assert!(bad.starts_with("HTTP/1.0 400"), "{bad}");
        assert!(bad.contains("bad_request"), "{bad}");

        server.shutdown();
    }

    #[test]
    fn drift_monitor_flags_shifted_traffic_but_not_clean_replay() {
        let _serial = serial();
        let model = Arc::new(tiny_model());
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            drift: rpm_obs::DriftConfig {
                min_samples: 5,
                warn: 0.05,
                page: 0.2,
                ..rpm_obs::DriftConfig::default()
            },
            ..ServeConfig::default()
        };

        let render = |series: &[f64]| {
            let vals: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
            format!("{{\"series\":[{}]}}\n", vals.join(","))
        };

        // Replaying the training set itself stays quiet: the serve-side
        // transform is bit-identical to training, so the live sketches
        // reproduce the reference exactly (PSI 0 on every metric).
        let mut server = Server::start(Arc::clone(&model), &config).unwrap();
        let addr = server.local_addr();
        for series in &dataset(1).series {
            assert!(post(addr, &render(series)).starts_with("HTTP/1.0 200"));
        }
        let clean = get(addr, "/debug/drift");
        assert!(
            clean.contains("\"status\":\"ok\""),
            "clean replay drifted: {clean}"
        );
        assert!(get(addr, "/healthz").contains("\"status\":\"ok\""));
        server.shutdown();

        // Amplitude-shifted traffic pages within the same window.
        let mut server = Server::start(Arc::clone(&model), &config).unwrap();
        let addr = server.local_addr();
        for series in &dataset(8).series {
            let shifted: Vec<f64> = series.iter().map(|v| v * 3.0 + 10.0).collect();
            assert!(post(addr, &render(&shifted)).starts_with("HTTP/1.0 200"));
        }
        let drifted = get(addr, "/debug/drift");
        assert!(
            drifted.contains("\"status\":\"page\""),
            "shifted replay did not page: {drifted}"
        );
        let health = get(addr, "/healthz");
        assert!(
            health.contains("\"status\":\"degraded\"") && health.starts_with("HTTP/1.0 200"),
            "degraded health keeps liveness: {health}"
        );
        assert!(get(addr, "/metrics").contains("rpm_drift_psi"));
        server.shutdown();

        // A model without a profile serves with drift unavailable.
        let bare = tiny_model();
        let mut buf = Vec::new();
        bare.save_v1(&mut buf).unwrap();
        let (profileless, _) = load_verified(&buf, true).unwrap();
        let mut server = Server::start(Arc::new(profileless), &config).unwrap();
        let addr = server.local_addr();
        assert!(get(addr, "/debug/drift").contains("\"status\":\"unavailable\""));
        assert!(get(addr, "/healthz").contains("\"drift\":\"unavailable\""));
        server.shutdown();
    }

    #[test]
    fn refuses_unverified_v1_models() {
        let model = tiny_model();
        let mut v2 = Vec::new();
        model.save(&mut v2).unwrap();
        let mut v1 = Vec::new();
        model.save_v1(&mut v1).unwrap();

        assert!(load_verified(&v2, false).is_ok());
        match load_verified(&v1, false) {
            Err(ServeError::Unverified(report)) => assert_eq!(report.version, 1),
            other => panic!("expected Unverified, got {:?}", other.map(|_| ())),
        }
        // Explicit opt-in still loads it.
        assert!(load_verified(&v1, true).is_ok());
        // Corruption is refused regardless.
        let mut corrupt = v2.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(matches!(
            load_verified(&corrupt, true),
            Err(ServeError::Verify(_))
        ));
    }
}
