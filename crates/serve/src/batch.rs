//! The bounded request queue and the adaptive micro-batching workers.
//!
//! Connection handlers push parsed requests into one [`BatchQueue`];
//! worker threads pull them back out in *micro-batches*: a worker
//! blocks for the first request, then keeps draining until either the
//! batch holds [`max_batch`](crate::ServeConfig::max_batch) series or
//! [`batch_window`](crate::ServeConfig::batch_window) has elapsed since
//! the batch opened — whichever comes first. Under light traffic the
//! window keeps added latency to a couple of milliseconds; under heavy
//! traffic batches fill instantly and the per-series cost amortizes the
//! way offline `predict_batch` calls do.
//!
//! The queue is bounded in **series** (not requests, so one fat request
//! cannot sneak past the limit): when full, [`BatchQueue::try_push`]
//! refuses and the handler sheds the request with `429` instead of
//! letting latency collapse into an unbounded backlog.
//!
//! Deadlines are enforced the way [`rpm_core::TrainBudget`] enforces
//! training budgets: checked before the expensive unit of work starts
//! (here, before a request's series enter a dispatched batch), sticky
//! once exceeded, and answered with a typed verdict instead of a
//! panic. The connection handler's reply-timeout is the backstop for
//! deadlines that expire *mid*-predict.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rpm_obs::TraceCtx;
use rpm_ts::ScanCounters;

/// What a worker sends back to the waiting connection handler.
#[derive(Clone, Debug)]
pub(crate) enum Reply {
    /// One label per series in the request, request order, plus the
    /// model generation that produced them (surfaced to clients as the
    /// `X-Model-Generation` header so reload tests can pin responses
    /// to the model that served them).
    Labels { labels: Vec<usize>, generation: u64 },
    /// The request's deadline passed before its batch dispatched.
    DeadlineExceeded,
    /// Prediction failed (engine error or injected fault).
    Failed(String),
}

/// One queued classify request.
pub(crate) struct Pending {
    /// Parsed series buffers; workers borrow these (never copy them)
    /// into the batched `predict_batch` call.
    pub series: Vec<Vec<f64>>,
    /// When the request entered the queue.
    pub enqueued: Instant,
    /// Queue-entry time on the observability clock (span timestamps).
    pub enqueued_ns: u64,
    /// When the request stops being worth answering.
    pub deadline: Instant,
    /// The request's trace: workers push `queue_wait` / `batch` /
    /// `predict` spans into it **before** replying, so the handler's
    /// `finish` sees them. The handler holds the other `Arc`.
    pub trace: Arc<TraceCtx>,
    /// Reply channel back to the connection handler.
    pub reply: Sender<Reply>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// Total series across `queue` (the bound is in series).
    series: usize,
    open: bool,
}

/// Bounded MPMC queue feeding the micro-batching workers.
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    arrived: Condvar,
    capacity: usize,
}

impl BatchQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                series: 0,
                open: true,
            }),
            arrived: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless the series bound would be exceeded (or the queue
    /// is closed); the rejected request comes back to the caller so the
    /// handler can shed it.
    pub fn try_push(&self, pending: Pending) -> Result<(), Pending> {
        let mut state = self.state.lock().expect("queue lock");
        if !state.open || state.series + pending.series.len() > self.capacity {
            return Err(pending);
        }
        state.series += pending.series.len();
        state.queue.push_back(pending);
        rpm_obs::metrics()
            .serve_queue_depth
            .set(state.series as u64);
        drop(state);
        self.arrived.notify_one();
        Ok(())
    }

    /// Blocks for the next micro-batch: waits for a first request, then
    /// drains arrivals until the batch reaches `max_batch` series or
    /// `window` has elapsed since the batch opened. Returns `None` only
    /// when the queue is closed and drained — the workers' exit signal.
    pub fn pop_batch(&self, max_batch: usize, window: Duration) -> Option<Vec<Pending>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("queue lock");
        // Phase 1: block for the first request.
        loop {
            if let Some(first) = state.queue.pop_front() {
                state.series -= first.series.len();
                let mut batch_series = first.series.len();
                let mut batch = vec![first];
                // Phase 2: adaptive fill until size or time threshold.
                let opened = Instant::now();
                while batch_series < max_batch {
                    match state.queue.pop_front() {
                        Some(p) => {
                            state.series -= p.series.len();
                            batch_series += p.series.len();
                            batch.push(p);
                        }
                        None => {
                            if !state.open {
                                break;
                            }
                            let elapsed = opened.elapsed();
                            if elapsed >= window {
                                break;
                            }
                            let (next, timeout) = self
                                .arrived
                                .wait_timeout(state, window - elapsed)
                                .expect("queue lock");
                            state = next;
                            if timeout.timed_out() && state.queue.is_empty() {
                                break;
                            }
                        }
                    }
                }
                rpm_obs::metrics()
                    .serve_queue_depth
                    .set(state.series as u64);
                return Some(batch);
            }
            if !state.open {
                return None;
            }
            state = self.arrived.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pushes start failing, and workers drain what
    /// is left, then observe `None` and exit.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").open = false;
        self.arrived.notify_all();
    }
}

/// One worker iteration: predicts a popped batch against the pinned
/// model generation and distributes replies. Returns the number of
/// series predicted (tests use it; the worker loop ignores it).
pub(crate) fn process_batch(
    generation: &crate::lifecycle::ModelGeneration,
    parallelism: rpm_ts::Parallelism,
    batch: Vec<Pending>,
) -> usize {
    let model = &generation.model;
    /// Process-wide batch sequence number: the `batch` attribute that
    /// ties the N request traces a shared batch served to one another.
    static BATCH_SEQ: AtomicU64 = AtomicU64::new(0);

    let now = Instant::now();
    let batch_start_ns = rpm_obs::now_ns();
    let m = rpm_obs::metrics();
    // Deadline gate, TrainBudget-style: refuse the unit of work before
    // it starts rather than interrupting it midway. The expired entry
    // still gets its `queue_wait` span — that span (queue entry to the
    // gate) is exactly *why* the request died, and it must land in the
    // trace before the reply releases the waiting handler.
    let (live, expired): (Vec<Pending>, Vec<Pending>) =
        batch.into_iter().partition(|p| p.deadline > now);
    for p in expired {
        p.trace.add_span(
            "queue_wait",
            p.enqueued_ns,
            batch_start_ns.saturating_sub(p.enqueued_ns),
        );
        let _ = p.reply.send(Reply::DeadlineExceeded);
    }
    if live.is_empty() {
        return 0;
    }
    for p in &live {
        m.serve_queue_wait
            .observe(p.enqueued.elapsed().as_nanos() as u64);
        p.trace.add_span(
            "queue_wait",
            p.enqueued_ns,
            batch_start_ns.saturating_sub(p.enqueued_ns),
        );
    }

    // The zero-copy heart of the serve path: slices borrowed straight
    // out of every queued request's parsed buffers, one flat batch.
    let refs: Vec<&[f64]> = live
        .iter()
        .flat_map(|p| p.series.iter().map(Vec::as_slice))
        .collect();
    m.serve_batches.inc();
    m.serve_batch_fill.observe(refs.len() as u64);

    let batch_seq = BATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let counters = ScanCounters::new();
    let monitor = rpm_obs::drift::monitor();
    let predict_start_ns = rpm_obs::now_ns();
    let verdict = if let Err(e) = rpm_obs::fault::point("serve.batch") {
        Err(format!("injected fault: {e}"))
    } else {
        // A panic inside predict (e.g. an armed engine fault) must kill
        // neither the worker nor the server.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match &monitor {
                // Drift armed: the observed variant derives one sketch
                // sample per series from the same feature rows the SVM
                // reads — labels stay bit-identical to the traced path.
                Some(mon) => model
                    .predict_batch_observed(&refs, parallelism, Some(&counters))
                    .map(|observed| {
                        observed
                            .into_iter()
                            .map(|(label, sample)| {
                                mon.observe(&sample);
                                label
                            })
                            .collect::<Vec<usize>>()
                    }),
                None => model.predict_batch_traced(&refs, parallelism, Some(&counters)),
            }
        }))
        .map_err(|_| "prediction panicked".to_string())
        .and_then(|r| r.map_err(|e| e.to_string()))
    };
    let predict_end_ns = rpm_obs::now_ns();

    // Span the shared work into every request it served: a `batch` span
    // (same `batch` attribute everywhere, links = the *other* traces in
    // the batch) with the `predict` span and its kernel counters
    // underneath. The counters describe the whole batch — the batch is
    // the execution unit — which the sibling links make explicit.
    let stats = counters.snapshot();
    let trace_ids: Vec<rpm_obs::TraceId> = live.iter().map(|p| p.trace.trace_id()).collect();
    for p in &live {
        let own = p.trace.trace_id();
        let links: Vec<rpm_obs::TraceId> =
            trace_ids.iter().copied().filter(|&t| t != own).collect();
        let batch_span = p.trace.add_span_with(
            "batch",
            Some(p.trace.root_span()),
            batch_start_ns,
            predict_end_ns.saturating_sub(batch_start_ns),
            vec![
                ("batch", batch_seq.to_string()),
                ("series", refs.len().to_string()),
                ("requests", live.len().to_string()),
            ],
            links,
        );
        p.trace.add_span_with(
            "predict",
            Some(batch_span),
            predict_start_ns,
            predict_end_ns.saturating_sub(predict_start_ns),
            vec![
                ("searches", stats.searches.to_string()),
                ("windows", stats.windows.to_string()),
                ("abandoned", stats.abandoned.to_string()),
                ("abandon_rate", format!("{:.4}", stats.abandon_rate())),
                ("pruned_first_last", stats.pruned_first_last.to_string()),
                ("pruned_envelope", stats.pruned_envelope.to_string()),
                ("pruned_sax", stats.pruned_sax.to_string()),
                ("prune_rate", format!("{:.4}", stats.prune_rate())),
                ("stats_builds", stats.stats_builds.to_string()),
                ("match_ns", stats.match_ns.to_string()),
                (
                    "ns_per_search",
                    (stats.match_ns / stats.searches.max(1)).to_string(),
                ),
            ],
            Vec::new(),
        );
    }

    let n = refs.len();
    match verdict {
        Ok(labels) => {
            let mut cursor = labels.into_iter();
            for p in live {
                let answer: Vec<usize> = cursor.by_ref().take(p.series.len()).collect();
                let _ = p.reply.send(Reply::Labels {
                    labels: answer,
                    generation: generation.generation,
                });
            }
            n
        }
        Err(msg) => {
            for p in live {
                let _ = p.reply.send(Reply::Failed(msg.clone()));
            }
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn pending(n_series: usize, len: usize) -> (Pending, std::sync::mpsc::Receiver<Reply>) {
        let (tx, rx) = channel();
        let now = Instant::now();
        (
            Pending {
                series: vec![vec![0.0; len]; n_series],
                enqueued: now,
                enqueued_ns: rpm_obs::now_ns(),
                deadline: now + Duration::from_secs(5),
                trace: TraceCtx::begin(None),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn queue_bounds_by_series_not_requests() {
        let q = BatchQueue::new(4);
        let (a, _ra) = pending(3, 8);
        assert!(q.try_push(a).is_ok());
        // 3 + 2 > 4: shed.
        let (b, _rb) = pending(2, 8);
        assert!(q.try_push(b).is_err());
        // 3 + 1 = 4: fits.
        let (c, _rc) = pending(1, 8);
        assert!(q.try_push(c).is_ok());
    }

    #[test]
    fn pop_batch_flushes_on_size() {
        let q = BatchQueue::new(64);
        for _ in 0..5 {
            let (p, rx) = pending(2, 4);
            std::mem::forget(rx);
            assert!(q.try_push(p).is_ok());
        }
        // 4-series flush takes the first two requests only.
        let batch = q.pop_batch(4, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 2);
        let batch = q.pop_batch(100, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 3, "window flush drains the rest");
    }

    #[test]
    fn pop_batch_flushes_on_window_under_light_traffic() {
        let q = BatchQueue::new(64);
        let (p, rx) = pending(1, 4);
        std::mem::forget(rx);
        assert!(q.try_push(p).is_ok());
        let started = Instant::now();
        let batch = q.pop_batch(1000, Duration::from_millis(20)).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "window flush must not wait for the size threshold"
        );
    }

    #[test]
    fn closed_queue_drains_then_signals_exit() {
        let q = Arc::new(BatchQueue::new(16));
        let (p, rx) = pending(1, 4);
        std::mem::forget(rx);
        assert!(q.try_push(p).is_ok());
        q.close();
        let (p2, _r2) = pending(1, 4);
        assert!(q.try_push(p2).is_err(), "closed queues shed");
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_some());
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BatchQueue::new(16));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop_batch(8, Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert!(waiter.join().unwrap().is_none());
    }
}
