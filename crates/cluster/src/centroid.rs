//! Cluster representatives for variable-length subsequences.
//!
//! Grammar-rule occurrences vary in length (Fig. 4 of the paper shows a
//! single rule mapping to subsequences of length 72..80). To average them,
//! every member is linearly resampled to the *median* member length and
//! z-normalized first; the centroid is the pointwise mean. The medoid
//! alternative the paper mentions (§3.2.2) picks the member minimizing the
//! summed distance to its peers.

use rpm_ts::znorm;

/// Linear-interpolation resampling of `x` to `target` points.
///
/// Endpoints are preserved; `target == x.len()` copies.
///
/// # Panics
/// Panics when `x` is empty or `target == 0`.
pub fn resample(x: &[f64], target: usize) -> Vec<f64> {
    assert!(!x.is_empty(), "cannot resample an empty series");
    assert!(target > 0, "cannot resample to zero points");
    if x.len() == target {
        return x.to_vec();
    }
    if x.len() == 1 {
        return vec![x[0]; target];
    }
    if target == 1 {
        return vec![x[0]];
    }
    let scale = (x.len() - 1) as f64 / (target - 1) as f64;
    (0..target)
        .map(|i| {
            let pos = i as f64 * scale;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(x.len() - 1);
            let frac = pos - lo as f64;
            x[lo] * (1.0 - frac) + x[hi] * frac
        })
        .collect()
}

/// Pointwise mean of the z-normalized members, all resampled to the median
/// member length. Returns `None` for an empty member set.
pub fn centroid(members: &[&[f64]]) -> Option<Vec<f64>> {
    if members.is_empty() {
        return None;
    }
    let mut lens: Vec<usize> = members.iter().map(|m| m.len()).collect();
    lens.sort_unstable();
    let target = lens[lens.len() / 2];
    let mut acc = vec![0.0; target];
    for m in members {
        let r = resample(&znorm(m), target);
        for (a, v) in acc.iter_mut().zip(&r) {
            *a += v;
        }
    }
    let n = members.len() as f64;
    for a in &mut acc {
        *a /= n;
    }
    Some(acc)
}

/// Index of the member minimizing the summed distance to all other
/// members. Returns `None` for an empty member set. Generic over the
/// member representation so callers can pass raw slices or pre-prepared
/// match plans.
pub fn medoid<T: ?Sized>(members: &[&T], mut dist: impl FnMut(&T, &T) -> f64) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    let mut best = (0usize, f64::INFINITY);
    for (i, a) in members.iter().enumerate() {
        let total: f64 = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, b)| dist(a, b))
            .sum();
        if total < best.1 {
            best = (i, total);
        }
    }
    Some(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn resample_identity() {
        let x = [1.0, 2.0, 3.0];
        close(&resample(&x, 3), &x);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let x = [5.0, 1.0, 9.0, 2.0];
        for t in [2, 3, 5, 11] {
            let r = resample(&x, t);
            assert_eq!(r.len(), t);
            assert_eq!(r[0], 5.0);
            assert_eq!(*r.last().unwrap(), 2.0);
        }
    }

    #[test]
    fn resample_linear_midpoints() {
        // Upsampling a 2-point segment is pure linear interpolation.
        close(&resample(&[0.0, 4.0], 5), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn resample_downsample_of_ramp_stays_ramp() {
        let ramp: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let r = resample(&ramp, 11);
        close(
            &r,
            &[
                0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
            ],
        );
    }

    #[test]
    fn resample_singleton_broadcasts() {
        close(&resample(&[7.0], 4), &[7.0; 4]);
    }

    #[test]
    fn centroid_of_identical_members_is_their_znorm() {
        let m = [1.0, 2.0, 3.0, 4.0];
        let c = centroid(&[&m, &m, &m]).unwrap();
        close(&c, &znorm(&m));
    }

    #[test]
    fn centroid_uses_median_length() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 1.0, 2.0, 3.0, 4.0];
        let c = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let cent = centroid(&[&a, &b, &c]).unwrap();
        assert_eq!(cent.len(), 5);
    }

    #[test]
    fn centroid_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }

    #[test]
    fn centroid_averages_opposites_to_zero() {
        let up = [0.0, 1.0, 2.0, 3.0];
        let down = [3.0, 2.0, 1.0, 0.0];
        let c = centroid(&[&up, &down]).unwrap();
        for v in c {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn medoid_picks_central_member() {
        let a = [0.0];
        let b = [1.0];
        let c = [10.0];
        let members: Vec<&[f64]> = vec![&a, &b, &c];
        let m = medoid(&members, |x, y| (x[0] - y[0]).abs()).unwrap();
        assert_eq!(m, 1, "1.0 is closest to both 0.0 and 10.0 in sum");
    }

    #[test]
    fn medoid_empty_is_none() {
        assert!(medoid::<[f64]>(&[], |_, _| 0.0).is_none());
    }

    #[test]
    fn medoid_single_member() {
        let a = [1.0, 2.0];
        let members: Vec<&[f64]> = vec![&a];
        assert_eq!(medoid(&members, |_, _| 0.0), Some(0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn resample_empty_panics() {
        resample(&[], 3);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn resample_to_zero_panics() {
        resample(&[1.0], 0);
    }
}
