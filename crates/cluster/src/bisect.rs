//! The paper's iterative bisection refinement (Algorithm 1, lines 10–12).
//!
//! A grammar rule's occurrence set may mix more than one shape family (the
//! SAX granularity can alias distinct shapes to the same word sequence).
//! The paper repairs this by repeatedly 2-way complete-linkage splitting:
//! a split is *accepted* only when both halves keep a sufficient share of
//! the parent (the paper's example threshold: 30%); otherwise the parent
//! stays whole. Accepted halves are split again until nothing splits.

use crate::linkage::{agglomerative, Linkage};

/// Knobs for [`bisect_refine`].
#[derive(Clone, Copy, Debug)]
pub struct BisectParams {
    /// Minimum fraction of the parent each child must retain for a split
    /// to be accepted (paper: 0.3).
    pub min_child_fraction: f64,
    /// Groups smaller than this never split. The paper does not state a
    /// floor, but without one every pair would split into discardable
    /// singletons; 4 keeps the smallest meaningful motif groups intact.
    pub min_size: usize,
    /// Linkage used for the 2-way split (paper: complete).
    pub linkage: Linkage,
}

impl Default for BisectParams {
    fn default() -> Self {
        Self {
            min_child_fraction: 0.3,
            min_size: 4,
            linkage: Linkage::Complete,
        }
    }
}

/// Refines the item set `0..n` into clusters by iterative bisection.
/// Returns clusters of item indices (each sorted; clusters ordered by
/// first member).
pub fn bisect_refine(
    n: usize,
    mut dist: impl FnMut(usize, usize) -> f64,
    params: &BisectParams,
) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let mut done: Vec<Vec<usize>> = Vec::new();
    let mut queue: Vec<Vec<usize>> = vec![(0..n).collect()];
    while let Some(group) = queue.pop() {
        if group.len() < params.min_size.max(2) {
            done.push(group);
            continue;
        }
        // 2-way split of this group (translating local->global indices).
        let halves = agglomerative(
            group.len(),
            |i, j| dist(group[i], group[j]),
            params.linkage,
            2,
        );
        let a: Vec<usize> = halves[0].iter().map(|&i| group[i]).collect();
        let b: Vec<usize> = halves[1].iter().map(|&i| group[i]).collect();
        // A child must clear the paper's fraction *and* hold at least two
        // members — a singleton can never be a motif cluster, and without
        // this floor small balanced groups would dissolve into discardable
        // singletons.
        let min_needed = ((params.min_child_fraction * group.len() as f64).ceil() as usize).max(2);
        if a.len() >= min_needed && b.len() >= min_needed {
            queue.push(a);
            queue.push(b);
        } else {
            done.push(group);
        }
    }
    for c in &mut done {
        c.sort_unstable();
    }
    done.sort_by_key(|c| c[0]);
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(points: &'static [f64]) -> impl FnMut(usize, usize) -> f64 {
        move |i, j| (points[i] - points[j]).abs()
    }

    #[test]
    fn homogeneous_group_stays_whole() {
        // Tight cluster + one outlier: the 2-split isolates the outlier,
        // which holds < 30%, so no split happens.
        let pts: &[f64] = &[0.0, 0.1, 0.2, 0.15, 0.05, 9.0];
        let c = bisect_refine(6, d1(pts), &BisectParams::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].len(), 6);
    }

    #[test]
    fn two_balanced_groups_split() {
        let pts: &[f64] = &[0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let c = bisect_refine(6, d1(pts), &BisectParams::default());
        assert_eq!(c, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn four_groups_split_recursively() {
        // Each group of 4 has a natural 3+1 internal split, which the 30%
        // criterion rejects — so recursion stops exactly at the 4 groups.
        let pts: &[f64] = &[
            0.0, 0.01, 0.02, 0.5, // group A
            10.0, 10.01, 10.02, 10.5, // group B
            20.0, 20.01, 20.02, 20.5, // group C
            30.0, 30.01, 30.02, 30.5, // group D
        ];
        let c = bisect_refine(16, d1(pts), &BisectParams::default());
        assert_eq!(c.len(), 4, "{c:?}");
        for g in &c {
            assert_eq!(g.len(), 4);
        }
    }

    #[test]
    fn min_size_blocks_tiny_splits() {
        let pts: &[f64] = &[0.0, 10.0, 20.0];
        let params = BisectParams {
            min_size: 4,
            ..Default::default()
        };
        let c = bisect_refine(3, d1(pts), &params);
        assert_eq!(c.len(), 1, "groups below min_size must not split");
    }

    #[test]
    fn singleton_children_reject_the_split() {
        // A pair would split 1+1; both children are singletons, so the
        // split is rejected and the pair survives intact.
        let pts: &[f64] = &[0.0, 0.1, 10.0, 10.1];
        let params = BisectParams {
            min_size: 2,
            ..Default::default()
        };
        let c = bisect_refine(4, d1(pts), &params);
        assert_eq!(c, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn empty_input() {
        assert!(bisect_refine(0, |_, _| 0.0, &BisectParams::default()).is_empty());
    }

    #[test]
    fn every_item_lands_in_exactly_one_cluster() {
        let pts: &[f64] = &[5.0, 1.0, 9.0, 1.1, 5.2, 9.1, 0.9, 5.1, 8.9, 1.05];
        let c = bisect_refine(10, d1(pts), &BisectParams::default());
        let mut all: Vec<usize> = c.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
