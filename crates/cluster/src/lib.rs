//! # rpm-cluster — clustering substrates for RPM
//!
//! Three pieces:
//!
//! * [`agglomerative`] — classic bottom-up hierarchical clustering with
//!   single / complete / average linkage. The paper uses complete linkage
//!   to refine the subsequence sets of grammar rules (§3.2.2).
//! * [`bisect_refine`] — the paper's iterative bisection wrapper: split a
//!   group in two, keep the split only when both halves retain at least
//!   30% of the parent, recurse until no group splits (Algorithm 1,
//!   lines 10–12).
//! * [`kmeans()`] — plain k-means with k-means++ seeding; used by the
//!   Learning Shapelets baseline to initialize shapelets from segment
//!   centroids.
//!
//! Plus the geometry helpers the candidate machinery needs: linear
//! [`resample()`], variable-length [`centroid()`], and [`medoid()`].

pub mod bisect;
pub mod centroid;
pub mod kmeans;
pub mod linkage;

pub use bisect::{bisect_refine, BisectParams};
pub use centroid::{centroid, medoid, resample};
pub use kmeans::{kmeans, KMeans};
pub use linkage::{agglomerative, Linkage};
