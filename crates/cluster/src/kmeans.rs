//! k-means with k-means++ seeding.
//!
//! Used by the Learning Shapelets baseline (Grabocka et al., whose
//! initialization the RPM paper's comparison relies on) to seed shapelets
//! from segment centroids. Deterministic given the seed; randomness comes
//! from an internal xorshift generator so this crate stays dependency-free.

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// Final centroids (`k` rows).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Runs k-means on equal-length points.
///
/// * `k` is clamped to the number of points.
/// * Empty clusters are re-seeded with the point farthest from its
///   centroid, so exactly `k` non-empty clusters come back whenever
///   `points.len() >= k`.
///
/// # Panics
/// Panics when `k == 0`, `points` is empty, or point lengths differ.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KMeans {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "kmeans on empty point set");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "kmeans points must share one dimension"
    );
    let k = k.min(points.len());
    let mut rng = XorShift::new(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (rng.next_u64() % points.len() as u64) as usize;
    centroids.push(points[first].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            (rng.next_u64() % points.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[idx].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().unwrap()));
        }
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iter.max(1) {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, cent) in centroids.iter().enumerate() {
                let d = sq_dist(p, cent);
                if d < best.1 {
                    best = (c, d);
                }
            }
            if assignments[i] != best.0 {
                assignments[i] = best.0;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, v) in sums[assignments[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fit point.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        let di = sq_dist(p, &centroids[assignments[*i]]);
                        let dj = sq_dist(q, &centroids[assignments[*j]]);
                        di.total_cmp(&dj)
                    })
                    .map(|(i, _)| i)
                    .unwrap();
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (dst, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = s / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeans {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = blobs();
        let r = kmeans(&pts, 2, 50, 42);
        // All even indices (blob A) share one cluster, odd the other.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..pts.len() {
            assert_eq!(r.assignments[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.inertia < 1.0, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blobs();
        let r1 = kmeans(&pts, 2, 50, 7);
        let r2 = kmeans(&pts, 2, 50, 7);
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centroids, r2.centroids);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let r = kmeans(&pts, 10, 20, 1);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn k_one_gives_global_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&pts, 1, 20, 1);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!(r.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn identical_points_are_fine() {
        let pts = vec![vec![3.0, 3.0]; 6];
        let r = kmeans(&pts, 2, 20, 9);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn inertia_never_worse_with_more_clusters() {
        let pts = blobs();
        let r2 = kmeans(&pts, 2, 100, 3);
        let r4 = kmeans(&pts, 4, 100, 3);
        assert!(r4.inertia <= r2.inertia + 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        kmeans(&[vec![1.0]], 0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_points_panic() {
        kmeans(&[], 2, 10, 1);
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn ragged_points_panic() {
        kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, 1);
    }
}
