//! Agglomerative hierarchical clustering.

/// Linkage criterion for merging clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members (the paper's choice).
    Complete,
    /// Unweighted mean of pairwise distances (UPGMA).
    Average,
}

/// Clusters `n` items bottom-up until `k` clusters remain, returning the
/// member-index sets sorted by first member.
///
/// `dist(i, j)` supplies the item-level distance; it is evaluated once per
/// unordered pair and cached. The implementation is the O(n³) textbook
/// loop — rule occurrence groups hold tens of members, far below the point
/// where a priority-queue variant would pay off.
///
/// # Panics
/// Panics when `k == 0` or `k > n` with `n > 0`.
pub fn agglomerative(
    n: usize,
    mut dist: impl FnMut(usize, usize) -> f64,
    linkage: Linkage,
    k: usize,
) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    assert!(k >= 1, "cannot form zero clusters");
    assert!(k <= n, "cannot form {k} clusters from {n} items");

    // Cache the full pairwise matrix once.
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(i, j);
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }

    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        // Find the closest pair under the linkage criterion.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let cd = cluster_distance(&clusters[a], &clusters[b], &d, n, linkage);
                if cd < best.2 {
                    best = (a, b, cd);
                }
            }
        }
        let (a, b, _) = best;
        let merged = clusters.swap_remove(b);
        clusters[a].extend(merged);
    }
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

fn cluster_distance(a: &[usize], b: &[usize], d: &[f64], n: usize, linkage: Linkage) -> f64 {
    match linkage {
        Linkage::Single => {
            let mut m = f64::INFINITY;
            for &i in a {
                for &j in b {
                    m = m.min(d[i * n + j]);
                }
            }
            m
        }
        Linkage::Complete => {
            let mut m = f64::NEG_INFINITY;
            for &i in a {
                for &j in b {
                    m = m.max(d[i * n + j]);
                }
            }
            m
        }
        Linkage::Average => {
            let mut s = 0.0;
            for &i in a {
                for &j in b {
                    s += d[i * n + j];
                }
            }
            s / (a.len() * b.len()) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D points make distance reasoning trivial.
    fn d1(points: &'static [f64]) -> impl FnMut(usize, usize) -> f64 {
        move |i, j| (points[i] - points[j]).abs()
    }

    #[test]
    fn two_obvious_groups() {
        let pts: &[f64] = &[0.0, 0.1, 0.2, 10.0, 10.1];
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = agglomerative(5, d1(pts), linkage, 2);
            assert_eq!(c, vec![vec![0, 1, 2], vec![3, 4]], "{linkage:?}");
        }
    }

    #[test]
    fn k_equals_n_keeps_singletons() {
        let pts: &[f64] = &[0.0, 1.0, 2.0];
        let c = agglomerative(3, d1(pts), Linkage::Complete, 3);
        assert_eq!(c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn k_equals_one_merges_everything() {
        let pts: &[f64] = &[0.0, 5.0, 100.0];
        let c = agglomerative(3, d1(pts), Linkage::Average, 1);
        assert_eq!(c, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_input() {
        let c = agglomerative(0, |_, _| 0.0, Linkage::Complete, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn single_item() {
        let c = agglomerative(1, |_, _| 0.0, Linkage::Complete, 1);
        assert_eq!(c, vec![vec![0]]);
    }

    #[test]
    fn complete_vs_single_differ_on_chains() {
        // A chain 0-1-2-3 with small steps but large total spread:
        // single linkage chains everything together before separating the
        // far point; complete linkage prefers compact groups.
        let pts: &[f64] = &[0.0, 1.0, 2.0, 3.0, 10.0];
        let single = agglomerative(5, d1(pts), Linkage::Single, 2);
        assert_eq!(single, vec![vec![0, 1, 2, 3], vec![4]]);
        let complete = agglomerative(5, d1(pts), Linkage::Complete, 2);
        assert_eq!(complete, vec![vec![0, 1, 2, 3], vec![4]]);
        // They diverge at k = 3: single keeps the chain, complete splits it.
        let single3 = agglomerative(5, d1(pts), Linkage::Single, 3);
        let complete3 = agglomerative(5, d1(pts), Linkage::Complete, 3);
        assert_ne!(single3, complete3);
    }

    #[test]
    fn all_members_preserved() {
        let pts: &[f64] = &[3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0];
        let c = agglomerative(7, d1(pts), Linkage::Complete, 3);
        let mut all: Vec<usize> = c.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn k_zero_panics() {
        agglomerative(2, |_, _| 1.0, Linkage::Single, 0);
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn k_above_n_panics() {
        agglomerative(2, |_, _| 1.0, Linkage::Single, 3);
    }
}
