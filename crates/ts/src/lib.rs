//! # rpm-ts — time series primitives for the RPM reproduction
//!
//! Foundation crate for the reproduction of *RPM: Representative Pattern
//! Mining for Efficient Time Series Classification* (EDBT 2016). It provides
//! the vocabulary types and numeric kernels every other crate builds on:
//!
//! * [`Dataset`] — a labeled collection of univariate time series,
//! * z-normalization ([`znorm`], [`znorm_into`]),
//! * Piecewise Aggregate Approximation ([`paa()`]),
//! * Euclidean distances with early abandoning ([`dist`]),
//! * sliding-window subsequence extraction ([`windows`]),
//! * closest-match subsequence search ([`matching`]), and the batched
//!   pattern-set × series cascade kernel ([`batched`]),
//! * rotation/shift corruption used by the paper's §6.1 case study
//!   ([`rotate()`]),
//! * small statistics helpers ([`stats`]).
//!
//! All series are `f64` slices; no external numeric dependencies are used.

pub mod batched;
pub mod classifier;
pub mod dataset;
pub mod dist;
pub mod matching;
pub mod norm;
pub mod paa;
pub mod rotate;
pub mod stats;
pub mod windows;

pub use batched::{BatchedMatch, LbAudit, ENVELOPE_SEGMENTS, MIN_ENVELOPE_LEN};
pub use classifier::{Classifier, Parallelism};
pub use dataset::{ClassView, Dataset, Label};
pub use dist::{euclidean, euclidean_early_abandon, sq_euclidean, sq_euclidean_early_abandon};
pub use matching::{
    best_match, best_match_naive, closest_match_distance, prepare_pattern, BestMatch, MatchKernel,
    MatchPlan, ScanCounters, ScanStats,
};
pub use norm::{znorm, znorm_in_place, znorm_into, ZNORM_EPSILON};
pub use paa::paa;
pub use rotate::{rotate, rotate_half};
pub use stats::{
    compensated_mean, compensated_sum, mean, percentile, std_dev, CompensatedSum, RollingStats,
};
pub use windows::sliding_windows;
