//! Closest-match subsequence search (§2.1, "closest (best) match").
//!
//! Given a pattern `S` and a series `T`, the closest match is the
//! length-`|S|` window of `T` minimizing the Euclidean distance to `S`. Both
//! the pattern and every candidate window are z-normalized (the patterns the
//! pipeline produces are centroids of z-normalized subsequences, and test
//! series arrive in raw units), and the distance is divided by `sqrt(|S|)`
//! so that closest-match distances of *different-length* patterns are
//! commensurable — Algorithm 2 compares a candidate against previously kept
//! candidates of other lengths, and the feature-space transform mixes
//! per-pattern distances of many lengths in one vector.
//!
//! # The fused rolling-statistics kernel
//!
//! [`best_match`] is the hot kernel of the whole reproduction (§5.3: every
//! train/test series is scanned against every candidate and representative
//! pattern). It is implemented UCR-Suite style:
//!
//! * **O(1) window statistics.** Per-window mean/σ come from
//!   [`RollingStats`] (compensated rolling sums of `x` and `x²` over the
//!   globally centered series) instead of an O(n) [`znorm_into`] pass per
//!   window.
//! * **Fused normalization.** The z-normalized window is never
//!   materialized: each term of the distance is computed as
//!   `(zp_i − (x_i − μ)/σ)²` on the fly. (The closed dot-product
//!   expansion `d² = Σzp² + n − (2/σ)·(Σ zpᵢxᵢ − μ·Σzpᵢ)` is
//!   deliberately *not* used: it cancels catastrophically at d ≈ 0 —
//!   see the comment in the exhaustive branch.)
//! * **Early abandoning in decreasing-|zp| order.** The largest pattern
//!   coefficients contribute the largest squared differences on average, so
//!   accumulating in that order crosses the best-so-far cutoff far sooner
//!   than left-to-right order does.
//! * **[`MatchPlan`]** caches the per-pattern work (z-normalization, the
//!   |zp| sort, `Σzp²`): prepare once, search many series.
//!
//! The pre-optimization kernel survives as [`best_match_naive`] behind the
//! same signature — it is the oracle of the differential test suite
//! (`tests/kernel_diff.rs`) and the ablation baseline in the benches.
//! Because the two kernels accumulate in different orders, their distances
//! are *tolerance-equal* (≤1e-9 relative), not bit-equal; winning positions
//! agree exactly (ties at exactly 0.0 resolve to the first window in both).
//!
//! σ = 0 windows follow the [`crate::norm`] convention in every kernel: a
//! window whose σ falls below [`ZNORM_EPSILON`] z-normalizes to all zeros,
//! so its distance is `‖z(pattern)‖` (and a constant *pattern* is
//! degenerate — the plan falls back to the naive scan, where every
//! non-constant window scores the same and the first wins).

use crate::norm::{znorm, znorm_into, ZNORM_EPSILON};
use crate::stats::RollingStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-request kernel counters for the closest-match search: a shared
/// accumulator threaded (as `Option<&ScanCounters>`) from the serving
/// path down through the feature transform into
/// [`MatchPlan::best_match_counted`]. Atomic so one request's batch can
/// be transformed across worker threads into the same accumulator;
/// relaxed ordering is enough because the totals are only read after the
/// batch joins.
///
/// Distinct from the process-wide `rpm-obs` counters the kernel already
/// self-reports: these are scoped to one request and end up as
/// attributes on its `predict` trace span.
#[derive(Debug, Default)]
pub struct ScanCounters {
    /// Closest-match searches (pattern × series pairs scanned).
    pub searches: AtomicU64,
    /// Candidate windows considered across all searches.
    pub windows: AtomicU64,
    /// Windows abandoned early (distance accumulation crossed the
    /// best-so-far cutoff before finishing).
    pub abandoned: AtomicU64,
    /// Windows killed by the O(1) first/last z-value bound (tier 1 of
    /// the batched cascade) before any exact accumulation.
    pub pruned_first_last: AtomicU64,
    /// Windows killed by the PAA envelope bound (tier 2).
    pub pruned_envelope: AtomicU64,
    /// Windows killed by the optional SAX MINDIST bound (tier 3).
    pub pruned_sax: AtomicU64,
    /// `RollingStats` constructions: once per scan for the rolling
    /// kernel, once per (series, pattern length) for the batched kernel
    /// — the shared-statistics win is visible as `stats_builds` ≪
    /// `searches`.
    pub stats_builds: AtomicU64,
    /// Wall nanoseconds spent inside the match kernel.
    pub match_ns: AtomicU64,
}

impl ScanCounters {
    /// A fresh all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the totals accumulated so far.
    pub fn snapshot(&self) -> ScanStats {
        ScanStats {
            searches: self.searches.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            pruned_first_last: self.pruned_first_last.load(Ordering::Relaxed),
            pruned_envelope: self.pruned_envelope.load(Ordering::Relaxed),
            pruned_sax: self.pruned_sax.load(Ordering::Relaxed),
            stats_builds: self.stats_builds.load(Ordering::Relaxed),
            match_ns: self.match_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of a [`ScanCounters`] accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Closest-match searches performed.
    pub searches: u64,
    /// Candidate windows considered.
    pub windows: u64,
    /// Windows abandoned before full accumulation.
    pub abandoned: u64,
    /// Windows killed by the first/last z-value bound (cascade tier 1).
    pub pruned_first_last: u64,
    /// Windows killed by the PAA envelope bound (cascade tier 2).
    pub pruned_envelope: u64,
    /// Windows killed by the SAX MINDIST bound (cascade tier 3).
    pub pruned_sax: u64,
    /// `RollingStats` constructions performed.
    pub stats_builds: u64,
    /// Wall nanoseconds inside the match kernel.
    pub match_ns: u64,
}

impl ScanStats {
    /// Fraction of considered windows that were abandoned early
    /// (0.0 when nothing was scanned).
    pub fn abandon_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.abandoned as f64 / self.windows as f64
        }
    }

    /// Total windows killed by a lower-bound tier before the exact
    /// distance loop ran.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_first_last + self.pruned_envelope + self.pruned_sax
    }

    /// Fraction of considered windows killed by a lower-bound tier
    /// (0.0 when nothing was scanned; always 0.0 for the per-pattern
    /// kernels, which have no cascade).
    pub fn prune_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.pruned_total() as f64 / self.windows as f64
        }
    }
}

/// Result of a closest-match search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestMatch {
    /// Start offset of the winning window in the target series.
    pub position: usize,
    /// Length-normalized z-normalized Euclidean distance
    /// (`||znorm(S) - znorm(T_p)|| / sqrt(|S|)`).
    pub distance: f64,
}

/// Which closest-match implementation a plan (and everything built on top
/// of it) dispatches to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MatchKernel {
    /// The fused rolling-statistics kernel.
    Rolling,
    /// The pre-optimization per-window re-normalizing scan — the
    /// differential-test oracle and ablation baseline.
    Naive,
    /// The pattern-set × series cascade kernel (the default): shared
    /// `RollingStats` per series, per-window lower-bound pruning
    /// (first/last z-values, PAA envelope, optional SAX MINDIST)
    /// before the exact rolling accumulation. Bit-identical to
    /// [`Rolling`](Self::Rolling) — a single-pattern scan through a
    /// `Batched` plan dispatches to the rolling scan, and the batched
    /// entry point ([`crate::batched::BatchedMatch`]) only ever prunes
    /// windows whose admissible lower bound already exceeds the
    /// per-pattern best. Appended last: the discriminant feeds config
    /// fingerprints (`kernel as u64`), so variant order is ABI.
    #[default]
    Batched,
}

/// Pre-computed per-pattern state for the closest-match search: the
/// z-normalized pattern, its indices sorted by decreasing |zp| (the
/// early-abandon visit order), and `Σzp²`. Building a plan is
/// O(n log n); reusing it across every series a pattern is matched
/// against removes that work — and the pattern's z-normalization — from
/// the per-series cost entirely.
#[derive(Clone, Debug)]
pub struct MatchPlan {
    /// The raw (un-normalized) pattern, kept for callers that need the
    /// original values (e.g. the resampling fallback in the feature
    /// transform).
    raw: Vec<f64>,
    /// Z-normalized pattern in natural index order.
    pub(crate) zp: Vec<f64>,
    /// Indices of `zp` sorted by decreasing |zp| (ties by index).
    pub(crate) order: Vec<u32>,
    /// `zp` permuted into `order` (one cache-friendly stream for the
    /// abandoning loop).
    pub(crate) zp_ord: Vec<f64>,
    /// Σ zp² (plain sequential sum — bit-identical to what the naive
    /// kernel scores against an all-zero constant window).
    pub(crate) sq_norm: f64,
    /// True when the pattern itself is constant (zp all zeros): the
    /// rolling kernel's distances would tie at exactly `n` for every
    /// non-constant window, so the plan delegates to the naive scan for
    /// exact positional agreement.
    pub(crate) degenerate: bool,
    kernel: MatchKernel,
}

impl MatchPlan {
    /// Prepares `pattern` for repeated closest-match searches with the
    /// rolling kernel. (A lone plan gains nothing from `Batched`; the
    /// cascade needs a pattern *set* — see [`crate::batched`].)
    pub fn new(pattern: &[f64]) -> Self {
        Self::with_kernel(pattern, MatchKernel::Rolling)
    }

    /// Prepares `pattern` for searches with an explicit kernel choice.
    pub fn with_kernel(pattern: &[f64], kernel: MatchKernel) -> Self {
        let zp = znorm(pattern);
        let mut order: Vec<u32> = (0..zp.len() as u32).collect();
        order.sort_by(|&a, &b| {
            zp[b as usize]
                .abs()
                .total_cmp(&zp[a as usize].abs())
                .then(a.cmp(&b))
        });
        let zp_ord: Vec<f64> = order.iter().map(|&i| zp[i as usize]).collect();
        let mut sq_norm = 0.0;
        for &v in &zp {
            sq_norm += v * v;
        }
        let degenerate = zp.iter().all(|&v| v == 0.0);
        Self {
            raw: pattern.to_vec(),
            zp,
            order,
            zp_ord,
            sq_norm,
            degenerate,
            kernel,
        }
    }

    /// Pattern length.
    pub fn len(&self) -> usize {
        self.zp.len()
    }

    /// True for an empty pattern.
    pub fn is_empty(&self) -> bool {
        self.zp.is_empty()
    }

    /// The original (un-normalized) pattern values.
    pub fn raw(&self) -> &[f64] {
        &self.raw
    }

    /// The z-normalized pattern.
    pub fn znormed(&self) -> &[f64] {
        &self.zp
    }

    /// The kernel this plan dispatches to.
    pub fn kernel(&self) -> MatchKernel {
        self.kernel
    }

    /// Finds the closest match of this plan's pattern inside `series`.
    ///
    /// Returns `None` when the pattern is empty or longer than the
    /// series. Set `early_abandon = false` only for the ablation
    /// benchmark; results are tolerance-equal either way.
    pub fn best_match(&self, series: &[f64], early_abandon: bool) -> Option<BestMatch> {
        self.best_match_counted(series, early_abandon, None)
    }

    /// [`best_match`](Self::best_match) with an optional per-request
    /// accumulator. The scan itself is identical — counting touches only
    /// integers, never the float path — so results are bit-identical
    /// with or without `counters`; kernel wall time is measured only
    /// when an accumulator is attached.
    pub fn best_match_counted(
        &self,
        series: &[f64],
        early_abandon: bool,
        counters: Option<&ScanCounters>,
    ) -> Option<BestMatch> {
        let n = self.zp.len();
        if n == 0 || n > series.len() {
            return None;
        }
        // Self-gated counters (no-ops while rpm-obs is off): search volume
        // for the serving dashboards. Per-window probes would distort the
        // kernel they measure; two adds per search are in the noise.
        let m = rpm_obs::metrics();
        m.match_searches.inc();
        m.match_windows.add((series.len() - n + 1) as u64);
        let started = counters.map(|_| std::time::Instant::now());
        // A `Batched` plan scanned alone has no pattern set to share
        // statistics or bounds with: it takes the rolling path, which
        // the batched cascade is bit-identical to by construction.
        let (best, abandoned) = if self.kernel == MatchKernel::Naive || self.degenerate {
            naive_scan(&self.zp, series, early_abandon)
        } else {
            if let Some(c) = counters {
                c.stats_builds.fetch_add(1, Ordering::Relaxed);
            }
            let stats = RollingStats::new(series, n).expect("bounds checked above");
            self.rolling_scan(&stats, early_abandon)
        };
        m.match_abandoned.add(abandoned);
        if let (Some(c), Some(t0)) = (counters, started) {
            c.searches.fetch_add(1, Ordering::Relaxed);
            c.windows
                .fetch_add((series.len() - n + 1) as u64, Ordering::Relaxed);
            c.abandoned.fetch_add(abandoned, Ordering::Relaxed);
            c.match_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        Some(best)
    }

    /// The rolling-statistics scan over pre-built window statistics.
    /// Returns the winner and the number of windows abandoned early.
    fn rolling_scan(&self, stats: &RollingStats, early_abandon: bool) -> (BestMatch, u64) {
        let n = self.zp.len();
        let nf = n as f64;
        let xc = stats.centered();
        let mut best_pos = 0usize;
        let mut best_sq = f64::INFINITY;
        let mut abandoned = 0u64;
        for p in 0..stats.count() {
            let sd = stats.std(p);
            let d_sq = if sd < ZNORM_EPSILON {
                // Constant window → all-zero z-scores (the norm.rs
                // convention): distance is the pattern's own norm.
                self.sq_norm
            } else {
                let mu = stats.mean_centered(p);
                let inv = 1.0 / sd;
                let w = &xc[p..p + n];
                if early_abandon {
                    match self.fused_early_abandon(w, mu, inv, best_sq) {
                        Some(d) => d,
                        None => {
                            abandoned += 1;
                            continue;
                        }
                    }
                } else {
                    self.fused_exhaustive(w, mu, inv)
                }
            };
            if d_sq < best_sq {
                best_sq = d_sq;
                best_pos = p;
            }
        }
        (
            BestMatch {
                position: best_pos,
                distance: (best_sq.max(0.0) / nf).sqrt(),
            },
            abandoned,
        )
    }

    /// One window's fused distance, accumulating `(zpᵢ − (xᵢ−μ)/σ)²` in
    /// natural order (vectorizable; no abandon). The closed dot-product
    /// expansion `Σzp² + n − (2/σ)(Σzpᵢxᵢ − μΣzpᵢ)` would save a
    /// subtraction per lane but cancels catastrophically near d ≈ 0
    /// (absolute error ~n·ε on d², i.e. ~√ε on d) — the per-element
    /// form keeps full precision at exact matches, which the 1e-9
    /// differential tolerance requires. Shared with the batched
    /// cascade's exact tier, so both kernels produce the same floats.
    #[inline]
    pub(crate) fn fused_exhaustive(&self, w: &[f64], mu: f64, inv: f64) -> f64 {
        let mut acc = 0.0;
        for (zi, xi) in self.zp.iter().zip(w) {
            let d = zi - (xi - mu) * inv;
            acc += d * d;
        }
        acc
    }

    /// One window's fused distance, accumulating `(zpᵢ − (xᵢ−μ)/σ)²` in
    /// decreasing-|zp| order and abandoning against `cutoff` every 8
    /// terms (strict `>`, matching [`sq_euclidean_early_abandon`]).
    /// Shared with the batched cascade's exact tier — identical floats,
    /// identical abandon decisions for an identical cutoff.
    ///
    /// [`sq_euclidean_early_abandon`]: crate::dist::sq_euclidean_early_abandon
    #[inline]
    pub(crate) fn fused_early_abandon(
        &self,
        w: &[f64],
        mu: f64,
        inv: f64,
        cutoff: f64,
    ) -> Option<f64> {
        let n = self.zp_ord.len();
        let mut acc = 0.0;
        let mut i = 0;
        while i < n {
            let end = (i + 8).min(n);
            for k in i..end {
                let z = (w[self.order[k] as usize] - mu) * inv;
                let d = self.zp_ord[k] - z;
                acc += d * d;
            }
            if acc > cutoff {
                return None;
            }
            i = end;
        }
        Some(acc)
    }
}

/// Prepares a pattern for repeated closest-match searches — compute the
/// plan once per pattern and reuse it across every series it is matched
/// against. Alias for [`MatchPlan::new`].
pub fn prepare_pattern(pattern: &[f64]) -> MatchPlan {
    MatchPlan::new(pattern)
}

/// Finds the closest match of `pattern` inside `series` with the fused
/// rolling-statistics kernel.
///
/// Returns `None` when the pattern is empty or longer than the series.
/// Set `early_abandon = false` only for the ablation benchmark; results
/// are tolerance-equal either way. Callers matching one pattern against
/// many series should build a [`MatchPlan`] once instead.
pub fn best_match(pattern: &[f64], series: &[f64], early_abandon: bool) -> Option<BestMatch> {
    MatchPlan::new(pattern).best_match(series, early_abandon)
}

/// The pre-optimization closest-match scan: re-z-normalizes every window
/// into a scratch buffer (O(n) work and a buffer write per window) before
/// the distance loop. Kept behind the same signature as [`best_match`] as
/// the differential-test oracle and the ablation baseline.
pub fn best_match_naive(pattern: &[f64], series: &[f64], early_abandon: bool) -> Option<BestMatch> {
    let n = pattern.len();
    if n == 0 || n > series.len() {
        return None;
    }
    let m = rpm_obs::metrics();
    m.match_searches.inc();
    m.match_windows.add((series.len() - n + 1) as u64);
    let zp = znorm(pattern);
    let (best, abandoned) = naive_scan(&zp, series, early_abandon);
    m.match_abandoned.add(abandoned);
    Some(best)
}

/// The shared naive scan over an already z-normalized pattern. Returns
/// the winner and the number of windows abandoned early.
fn naive_scan(zp: &[f64], series: &[f64], early_abandon: bool) -> (BestMatch, u64) {
    let n = zp.len();
    let mut window_buf = vec![0.0; n];
    let mut best_pos = 0usize;
    let mut best_sq = f64::INFINITY;
    let mut abandoned = 0u64;
    for p in 0..=(series.len() - n) {
        znorm_into(&series[p..p + n], &mut window_buf);
        let d_sq = if early_abandon {
            match crate::dist::sq_euclidean_early_abandon(zp, &window_buf, best_sq) {
                Some(d) => d,
                None => {
                    abandoned += 1;
                    continue;
                }
            }
        } else {
            crate::dist::sq_euclidean(zp, &window_buf)
        };
        if d_sq < best_sq {
            best_sq = d_sq;
            best_pos = p;
        }
    }
    (
        BestMatch {
            position: best_pos,
            distance: (best_sq / n as f64).sqrt(),
        },
        abandoned,
    )
}

/// Convenience wrapper returning only the closest-match distance, with
/// early abandoning enabled. `f64::INFINITY` when no window fits.
pub fn closest_match_distance(pattern: &[f64], series: &[f64]) -> f64 {
    best_match(pattern, series, true).map_or(f64::INFINITY, |m| m.distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_series(len: usize, mut state: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 33) as f64) / (u32::MAX as f64) - 0.5);
        }
        out
    }

    #[test]
    fn exact_occurrence_has_zero_distance() {
        // The pattern's z-normalized shape (up then down) appears only at
        // offset 2; neighboring windows normalize to different shapes.
        let series = [0.0, 0.0, 1.0, 3.0, 2.0, 0.0, 0.0];
        let pattern = [1.0, 3.0, 2.0];
        let m = best_match(&pattern, &series, true).unwrap();
        assert_eq!(m.position, 2);
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn scaled_occurrence_still_matches_exactly() {
        // z-normalization makes amplitude irrelevant.
        let series = [5.0, 5.0, 10.0, 20.0, 30.0, 5.0];
        let pattern = [1.0, 2.0, 3.0];
        let m = best_match(&pattern, &series, true).unwrap();
        assert_eq!(m.position, 2);
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn oversized_pattern_returns_none() {
        assert!(best_match(&[1.0, 2.0, 3.0], &[1.0, 2.0], true).is_none());
        assert!(best_match_naive(&[1.0, 2.0, 3.0], &[1.0, 2.0], true).is_none());
        assert_eq!(
            closest_match_distance(&[1.0, 2.0, 3.0], &[1.0]),
            f64::INFINITY
        );
    }

    #[test]
    fn empty_pattern_returns_none() {
        assert!(best_match(&[], &[1.0, 2.0], true).is_none());
        assert!(best_match_naive(&[], &[1.0, 2.0], true).is_none());
        assert!(MatchPlan::new(&[]).best_match(&[1.0], true).is_none());
    }

    #[test]
    fn abandoning_matches_exhaustive() {
        // Pseudo-random series; the two modes accumulate in different
        // orders, so they agree to tolerance (positions exactly).
        let series = pseudo_random_series(200, 0x12345678);
        let pattern = &series[40..70].to_vec();
        let fast = best_match(pattern, &series, true).unwrap();
        let slow = best_match(pattern, &series, false).unwrap();
        assert_eq!(fast.position, slow.position);
        assert!((fast.distance - slow.distance).abs() < 1e-10);
    }

    #[test]
    fn rolling_agrees_with_naive_oracle() {
        let series = pseudo_random_series(300, 0xBEEF);
        for (start, len) in [(12usize, 17usize), (100, 64), (250, 50), (0, 300)] {
            let pattern = series[start..start + len].to_vec();
            for ea in [true, false] {
                let fast = best_match(&pattern, &series, ea).unwrap();
                let slow = best_match_naive(&pattern, &series, ea).unwrap();
                assert_eq!(fast.position, slow.position, "len {len} ea {ea}");
                assert!(
                    (fast.distance - slow.distance).abs() < 1e-10,
                    "len {len} ea {ea}: {} vs {}",
                    fast.distance,
                    slow.distance
                );
            }
        }
    }

    #[test]
    fn plan_reuse_is_bit_identical_to_direct_calls() {
        let series_a = pseudo_random_series(150, 1);
        let series_b = pseudo_random_series(90, 2);
        let pattern = pseudo_random_series(24, 3);
        let plan = prepare_pattern(&pattern);
        for s in [&series_a, &series_b] {
            let via_plan = plan.best_match(s, true).unwrap();
            let direct = best_match(&pattern, s, true).unwrap();
            assert_eq!(via_plan, direct);
        }
        assert_eq!(plan.len(), 24);
        assert!(!plan.is_empty());
        assert_eq!(plan.raw(), &pattern[..]);
        assert_eq!(plan.kernel(), MatchKernel::Rolling);
    }

    #[test]
    fn naive_kernel_plan_dispatches_to_oracle() {
        let series = pseudo_random_series(120, 11);
        let pattern = series[30..54].to_vec();
        let plan = MatchPlan::with_kernel(&pattern, MatchKernel::Naive);
        let via_plan = plan.best_match(&series, true).unwrap();
        let oracle = best_match_naive(&pattern, &series, true).unwrap();
        assert_eq!(via_plan, oracle);
    }

    #[test]
    fn constant_pattern_falls_back_to_naive_tie_breaking() {
        // A constant pattern z-normalizes to zeros; every non-constant
        // window scores ~‖zw‖ and the first window must win in both
        // kernels.
        let series = pseudo_random_series(80, 21);
        let pattern = [4.2; 12];
        let fast = best_match(&pattern, &series, true).unwrap();
        let slow = best_match_naive(&pattern, &series, true).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn constant_window_scores_pattern_norm() {
        // One flat region in the series: its distance to any pattern is
        // ‖zp‖/√n = 1, identical in both kernels (σ=0 convention).
        let mut series = pseudo_random_series(60, 31);
        for v in &mut series[20..40] {
            *v = 7.5;
        }
        let pattern = pseudo_random_series(16, 33);
        let plan = MatchPlan::new(&pattern);
        let fast = plan.best_match(&series, true).unwrap();
        let slow = best_match_naive(&pattern, &series, true).unwrap();
        assert_eq!(fast.position, slow.position);
        assert!((fast.distance - slow.distance).abs() < 1e-10);
    }

    #[test]
    fn length_normalization_makes_lengths_comparable() {
        // A pattern matching perfectly should give ~0 regardless of length;
        // a constant-vs-ramp mismatch gives O(1) regardless of length.
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let short = &ramp[10..20];
        let long = &ramp[10..60];
        assert!(closest_match_distance(short, &ramp) < 1e-9);
        assert!(closest_match_distance(long, &ramp) < 1e-9);
    }

    #[test]
    fn full_length_pattern_single_window() {
        let series = [1.0, 5.0, 2.0];
        let m = best_match(&[1.0, 5.0, 2.0], &series, true).unwrap();
        assert_eq!(m.position, 0);
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn counted_search_is_bit_identical_and_fills_the_accumulator() {
        let series = pseudo_random_series(400, 0xACE);
        let pattern = series[120..180].to_vec();
        let plan = MatchPlan::new(&pattern);
        let plain = plan.best_match(&series, true).unwrap();
        let counters = ScanCounters::new();
        let counted = plan
            .best_match_counted(&series, true, Some(&counters))
            .unwrap();
        assert_eq!(plain, counted, "counting must not perturb the scan");
        let stats = counters.snapshot();
        assert_eq!(stats.searches, 1);
        assert_eq!(stats.windows, (series.len() - pattern.len() + 1) as u64);
        assert!(
            stats.abandoned > 0,
            "a random series with an exact occurrence must abandon most windows"
        );
        assert!(
            stats.abandoned < stats.windows,
            "the winner is never abandoned"
        );
        assert!(stats.match_ns > 0);
        assert!(stats.abandon_rate() > 0.0 && stats.abandon_rate() < 1.0);
    }

    #[test]
    fn counted_naive_kernel_reports_abandons_too() {
        let series = pseudo_random_series(200, 0xF00D);
        let pattern = series[50..90].to_vec();
        let plan = MatchPlan::with_kernel(&pattern, MatchKernel::Naive);
        let counters = ScanCounters::new();
        plan.best_match_counted(&series, true, Some(&counters))
            .unwrap();
        let stats = counters.snapshot();
        assert!(stats.abandoned > 0, "{stats:?}");

        // Without early abandoning nothing can be abandoned.
        let exhaustive = ScanCounters::new();
        plan.best_match_counted(&series, false, Some(&exhaustive))
            .unwrap();
        assert_eq!(exhaustive.snapshot().abandoned, 0);
        assert_eq!(ScanStats::default().abandon_rate(), 0.0);
    }

    #[test]
    fn large_offset_series_matches_oracle() {
        // A 1e6 baseline stresses the rolling-sum cancellation paths.
        let series: Vec<f64> = pseudo_random_series(200, 41)
            .into_iter()
            .map(|v| v + 1e6)
            .collect();
        let pattern = series[70..110].to_vec();
        let fast = best_match(&pattern, &series, true).unwrap();
        let slow = best_match_naive(&pattern, &series, true).unwrap();
        assert_eq!(fast.position, slow.position);
        assert!(
            (fast.distance - slow.distance).abs() < 1e-9 * slow.distance.max(1.0),
            "{} vs {}",
            fast.distance,
            slow.distance
        );
    }
}
