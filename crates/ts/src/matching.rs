//! Closest-match subsequence search (§2.1, "closest (best) match").
//!
//! Given a pattern `S` and a series `T`, the closest match is the
//! length-`|S|` window of `T` minimizing the Euclidean distance to `S`. Both
//! the pattern and every candidate window are z-normalized (the patterns the
//! pipeline produces are centroids of z-normalized subsequences, and test
//! series arrive in raw units), and the distance is divided by `sqrt(|S|)`
//! so that closest-match distances of *different-length* patterns are
//! commensurable — Algorithm 2 compares a candidate against previously kept
//! candidates of other lengths, and the feature-space transform mixes
//! per-pattern distances of many lengths in one vector.
//!
//! The search early-abandons each window's distance computation against the
//! best-so-far (§5.3), which is why [`best_match`] is the hot kernel of the
//! whole reproduction.

use crate::norm::znorm_into;

/// Result of a closest-match search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestMatch {
    /// Start offset of the winning window in the target series.
    pub position: usize,
    /// Length-normalized z-normalized Euclidean distance
    /// (`||znorm(S) - znorm(T_p)|| / sqrt(|S|)`).
    pub distance: f64,
}

/// Finds the closest match of `pattern` inside `series`.
///
/// Returns `None` when the pattern is empty or longer than the series.
/// Set `early_abandon = false` only for the ablation benchmark; results are
/// identical either way.
pub fn best_match(pattern: &[f64], series: &[f64], early_abandon: bool) -> Option<BestMatch> {
    let n = pattern.len();
    if n == 0 || n > series.len() {
        return None;
    }
    // Self-gated counters (no-ops while rpm-obs is off): search volume
    // for the serving dashboards. Per-window probes would distort the
    // kernel they measure; two adds per search are in the noise.
    let m = rpm_obs::metrics();
    m.match_searches.inc();
    m.match_windows.add((series.len() - n + 1) as u64);
    let zp = crate::norm::znorm(pattern);
    let mut window_buf = vec![0.0; n];
    let mut best = BestMatch {
        position: 0,
        distance: f64::INFINITY,
    };
    let mut best_sq = f64::INFINITY;
    for p in 0..=(series.len() - n) {
        znorm_into(&series[p..p + n], &mut window_buf);
        let d_sq = if early_abandon {
            match crate::dist::sq_euclidean_early_abandon(&zp, &window_buf, best_sq) {
                Some(d) => d,
                None => continue,
            }
        } else {
            crate::dist::sq_euclidean(&zp, &window_buf)
        };
        if d_sq < best_sq {
            best_sq = d_sq;
            best = BestMatch {
                position: p,
                distance: 0.0,
            };
        }
    }
    best.distance = (best_sq / n as f64).sqrt();
    Some(best)
}

/// Convenience wrapper returning only the closest-match distance, with
/// early abandoning enabled. `f64::INFINITY` when no window fits.
pub fn closest_match_distance(pattern: &[f64], series: &[f64]) -> f64 {
    best_match(pattern, series, true).map_or(f64::INFINITY, |m| m.distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_occurrence_has_zero_distance() {
        // The pattern's z-normalized shape (up then down) appears only at
        // offset 2; neighboring windows normalize to different shapes.
        let series = [0.0, 0.0, 1.0, 3.0, 2.0, 0.0, 0.0];
        let pattern = [1.0, 3.0, 2.0];
        let m = best_match(&pattern, &series, true).unwrap();
        assert_eq!(m.position, 2);
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn scaled_occurrence_still_matches_exactly() {
        // z-normalization makes amplitude irrelevant.
        let series = [5.0, 5.0, 10.0, 20.0, 30.0, 5.0];
        let pattern = [1.0, 2.0, 3.0];
        let m = best_match(&pattern, &series, true).unwrap();
        assert_eq!(m.position, 2);
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn oversized_pattern_returns_none() {
        assert!(best_match(&[1.0, 2.0, 3.0], &[1.0, 2.0], true).is_none());
        assert_eq!(
            closest_match_distance(&[1.0, 2.0, 3.0], &[1.0]),
            f64::INFINITY
        );
    }

    #[test]
    fn empty_pattern_returns_none() {
        assert!(best_match(&[], &[1.0, 2.0], true).is_none());
    }

    #[test]
    fn abandoning_matches_exhaustive() {
        // Pseudo-random series; both modes must agree exactly.
        let mut series = Vec::with_capacity(200);
        let mut state = 0x12345678u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            series.push(((state >> 33) as f64) / (u32::MAX as f64) - 0.5);
        }
        let pattern = &series[40..70].to_vec();
        let fast = best_match(pattern, &series, true).unwrap();
        let slow = best_match(pattern, &series, false).unwrap();
        assert_eq!(fast.position, slow.position);
        assert!((fast.distance - slow.distance).abs() < 1e-12);
    }

    #[test]
    fn length_normalization_makes_lengths_comparable() {
        // A pattern matching perfectly should give ~0 regardless of length;
        // a constant-vs-ramp mismatch gives O(1) regardless of length.
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let short = &ramp[10..20];
        let long = &ramp[10..60];
        assert!(closest_match_distance(short, &ramp) < 1e-9);
        assert!(closest_match_distance(long, &ramp) < 1e-9);
    }

    #[test]
    fn full_length_pattern_single_window() {
        let series = [1.0, 5.0, 2.0];
        let m = best_match(&[1.0, 5.0, 2.0], &series, true).unwrap();
        assert_eq!(m.position, 0);
        assert!(m.distance < 1e-9);
    }
}
