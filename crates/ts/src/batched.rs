//! Batched pattern-set × series closest-match kernel with an admissible
//! lower-bound cascade.
//!
//! The per-pattern kernels in [`crate::matching`] rebuild the same
//! [`RollingStats`] for every pattern matched against a series: K
//! patterns × S series = K·S O(n) statistics passes over identical
//! data, plus K·S full window scans. [`BatchedMatch`] restructures the
//! search around the *series*: statistics are built once per (series,
//! pattern length), and every window position is pushed through a
//! cascade of increasingly expensive admissible lower bounds before the
//! exact distance loop runs:
//!
//! 1. **First/last z-value bound** — O(1) per (pattern, window):
//!    `(zp₀−zw₀)² + (zpₙ₋₁−zwₙ₋₁)² ≤ Σᵢ(zpᵢ−zwᵢ)²` because the right
//!    side sums those two squares plus other non-negative terms
//!    (LB_Kim's cheap core). The per-pattern first/last coefficients
//!    live in contiguous arrays so the K-wide evaluation is a
//!    branch-free, f64x4-shaped pass.
//! 2. **PAA envelope bound** — O(B) per (pattern, window), B = 8
//!    segments: `Σⱼ lenⱼ·(p̄ⱼ−w̄ⱼ)² ≤ Σᵢ(zpᵢ−zwᵢ)²` by per-segment
//!    Cauchy–Schwarz (`Σ_{i∈j}(aᵢ−bᵢ)² ≥ (Σ_{i∈j}(aᵢ−bᵢ))²/lenⱼ`) —
//!    LB_Keogh with a zero warping radius. Window segment means come
//!    from rolling per-segment sums, re-initialized with a compensated
//!    pass every [`BLOCK`] positions so drift never approaches the
//!    pruning safety margin.
//! 3. **SAX MINDIST bound** (optional) — the symbolic bound from the
//!    Extreme-SAX line of work: per segment, the breakpoint-gap
//!    distance between the pattern's and the window's SAX symbols
//!    lower-bounds `|p̄ⱼ−w̄ⱼ|`, so `Σⱼ lenⱼ·cellⱼ² ` is admissible. It
//!    is dominated by tier 2 under the shared segmentation (the gap
//!    between two symbols' intervals never exceeds the distance between
//!    values inside them), so it is off by default and exists for
//!    ablation and as a property-tested bridge to `rpm-sax`.
//! 4. **Exact distance** — the *same* fused accumulation the rolling
//!    kernel runs ([`MatchPlan::fused_early_abandon`] /
//!    [`MatchPlan::fused_exhaustive`]), against the same per-pattern
//!    best-so-far cutoff.
//!
//! # Bit-identity with the rolling kernel
//!
//! The cascade is not "close to" the rolling kernel — it is
//! bit-identical, which is what lets training pipelines flip kernels
//! without re-validating models:
//!
//! * The sweep visits window positions in increasing order, exactly
//!   like [`MatchPlan::best_match`]. A strided *seed pass* probes a
//!   sparse subset of positions with the exact kernel first — out of
//!   order, but outcome-free: a probe only tightens the best-so-far
//!   with a true window distance, every probed position is re-visited
//!   by the sweep (admissible bounds cannot prune a window equal to
//!   the current best under strict `>`), and bit-equal distances
//!   resolve to the earliest position via an explicit tie-break — the
//!   same winner the increasing-order scan picks.
//! * A window is pruned only when `lb · DEFLATE > best_sq` for that
//!   pattern. The bounds are admissible in exact arithmetic
//!   (`lb ≤ d²`), and the deflation factors absorb the floating-point
//!   slack between a bound and the exact loop's rounding (≤ ~(n+2)·ε
//!   relative for tier 1, whose terms are bitwise addends of the exact
//!   sum; tiers 2–3 carry independent rounding and get a wider margin).
//!   So a pruned window satisfies `d²_fl ≥ best_sq` — and since the
//!   rolling kernel updates its best strictly (`d_sq < best_sq`), that
//!   window could not have changed the best there either.
//! * Surviving windows run the identical exact code with the identical
//!   cutoff, producing identical floats and identical abandon
//!   decisions.
//!
//! By induction over positions the per-pattern best trajectory — and
//! hence the final [`BestMatch`] — is the one the rolling kernel
//! produces. `tests/kernel_diff.rs` pins this differentially;
//! `tests/lb_admissibility.rs` property-tests each bound (through
//! [`BatchedMatch::audit`], i.e. against the production bound
//! computation including its rolling segment sums) on random and
//! adversarial inputs.

use crate::matching::{BestMatch, MatchKernel, MatchPlan, ScanCounters};
use crate::norm::ZNORM_EPSILON;
use crate::stats::{CompensatedSum, RollingStats};
use std::sync::atomic::Ordering;

/// Number of PAA segments for the envelope (and SAX) bound.
pub const ENVELOPE_SEGMENTS: usize = 8;

/// Patterns shorter than this skip tiers 2–3: with fewer than two
/// points per segment the envelope degenerates toward the exact
/// distance it is supposed to be cheaper than.
pub const MIN_ENVELOPE_LEN: usize = 16;

/// Rolling segment sums are rebuilt with a compensated pass every this
/// many positions, bounding the incremental add/subtract drift.
const BLOCK: usize = 256;

/// Tier-1 deflation: the bound's two terms are bitwise addends of the
/// exact sum, so the only slack is summation rounding (≤ ~(n+2)·ε
/// relative); 1e-9 covers patterns up to ~10⁶ points.
const TIER1_DEFLATE: f64 = 1.0 - 1e-9;

/// Tier-2/3 deflation: segment means come from independently rounded
/// rolling sums, so the margin is wider. Pruning power lost is
/// negligible (a bound this close to the best is about to be beaten by
/// the exact loop anyway).
const TIER23_DEFLATE: f64 = 1.0 - 1e-7;

/// Plans of one shared length, flattened into contiguous per-pattern
/// arrays for the cascade's inner loops.
#[derive(Clone, Debug)]
struct LengthGroup {
    /// Pattern length.
    n: usize,
    /// Index of each member in the original plan slice.
    idx: Vec<u32>,
    /// The member plans (exact tier + `sq_norm` for σ=0 windows).
    plans: Vec<MatchPlan>,
    /// `zp[0]` per member (tier-1 stream).
    first: Vec<f64>,
    /// `zp[n-1]` per member (tier-1 stream).
    last: Vec<f64>,
    /// Segment boundaries `[start, end)` shared by every member.
    /// Empty when `n < MIN_ENVELOPE_LEN` (tiers 2–3 skipped).
    seg: Vec<(u32, u32)>,
    /// Segment lengths as f64, aligned with `seg`.
    seg_len: Vec<f64>,
    /// Reciprocal segment lengths: the hot loops multiply by these
    /// instead of dividing (8 divisions per surviving position dominate
    /// the tier-2 cost otherwise). The ≤1-ulp difference vs division is
    /// absorbed by `TIER23_DEFLATE`.
    seg_inv_len: Vec<f64>,
    /// PAA means of `zp`, `seg.len()` per member, row-major.
    paa: Vec<f64>,
    /// SAX symbol per segment per member, row-major; empty when the
    /// SAX tier is disabled.
    sax: Vec<u8>,
}

/// A pattern set prepared for batched closest-match scans. Build once
/// (from the same [`MatchPlan`]s the per-pattern path uses), then call
/// [`match_all`](Self::match_all) per series. Owns its data — `Send +
/// Sync`, shareable across batch workers.
#[derive(Clone, Debug)]
pub struct BatchedMatch {
    groups: Vec<LengthGroup>,
    /// (original index, plan) pairs the cascade cannot serve —
    /// degenerate (constant) patterns and plans pinned to the `Naive`
    /// kernel — scanned per-pattern through `best_match_counted` so
    /// their semantics (naive tie-breaking) are preserved exactly.
    fallback: Vec<(u32, MatchPlan)>,
    /// Total patterns (group members + fallbacks).
    count: usize,
    /// Ascending SAX breakpoint cuts enabling tier 3; `None` disables
    /// it. Injected (rather than imported from `rpm-sax`) because
    /// `rpm-sax` depends on this crate.
    sax_cuts: Option<Vec<f64>>,
}

/// Per-(pattern, window) bound/exact observations from
/// [`BatchedMatch::audit`] — the raw material of the admissibility
/// property tests.
#[derive(Clone, Copy, Debug)]
pub struct LbAudit {
    /// Pattern index in the original plan slice.
    pub pattern: usize,
    /// Window start position.
    pub position: usize,
    /// Tier-1 squared bound (un-normalized), as the cascade computes it.
    pub lb_first_last: f64,
    /// Tier-2 squared bound, `None` when the tier is skipped for this
    /// pattern length.
    pub lb_envelope: Option<f64>,
    /// Tier-3 squared bound, `None` when SAX cuts are absent or the
    /// tier is skipped.
    pub lb_sax: Option<f64>,
    /// The exact squared distance (exhaustive fused accumulation).
    pub exact: f64,
}

impl BatchedMatch {
    /// Prepares `plans` for batched scans, SAX tier disabled.
    pub fn new(plans: &[MatchPlan]) -> Self {
        Self::with_sax_cuts(plans, None)
    }

    /// [`new`](Self::new) over borrowed plans — for callers batching a
    /// filtered subset (e.g. the dedup scan) without cloning it into a
    /// contiguous slice first.
    pub fn from_refs(plans: &[&MatchPlan]) -> Self {
        Self::build(plans.iter().copied(), plans.len(), None)
    }

    /// Prepares `plans` with an optional SAX tier defined by ascending
    /// breakpoint `cuts` (as produced by `rpm_sax::breakpoints`).
    pub fn with_sax_cuts(plans: &[MatchPlan], cuts: Option<Vec<f64>>) -> Self {
        Self::build(plans.iter(), plans.len(), cuts)
    }

    fn build<'a>(
        plans: impl Iterator<Item = &'a MatchPlan>,
        count: usize,
        cuts: Option<Vec<f64>>,
    ) -> Self {
        let mut groups: Vec<LengthGroup> = Vec::new();
        let mut fallback = Vec::new();
        for (i, plan) in plans.enumerate() {
            if plan.is_empty() {
                continue; // matches per-pattern behavior: None at call time
            }
            if plan.degenerate || plan.kernel() == MatchKernel::Naive {
                fallback.push((i as u32, plan.clone()));
                continue;
            }
            let n = plan.len();
            let group = match groups.iter_mut().find(|g| g.n == n) {
                Some(g) => g,
                None => {
                    groups.push(LengthGroup::empty(n, cuts.is_some()));
                    groups.last_mut().unwrap()
                }
            };
            group.push(i as u32, plan, cuts.as_deref());
        }
        Self {
            groups,
            fallback,
            count,
            sax_cuts: cuts,
        }
    }

    /// Number of patterns the set was built from (including empty and
    /// fallback patterns).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when the SAX MINDIST tier is active.
    pub fn sax_enabled(&self) -> bool {
        self.sax_cuts.is_some()
    }

    /// Finds the closest match of every pattern inside `series` in one
    /// pass per pattern length. The result is indexed like the plan
    /// slice the set was built from; an entry is `None` exactly when
    /// the per-pattern kernel would return `None` (empty pattern, or
    /// pattern longer than the series).
    ///
    /// Bit-identical to calling
    /// [`MatchPlan::best_match`](crate::matching::MatchPlan::best_match)
    /// per pattern with the rolling kernel (naive for degenerate /
    /// `Naive`-pinned plans).
    pub fn match_all(
        &self,
        series: &[f64],
        early_abandon: bool,
        counters: Option<&ScanCounters>,
    ) -> Vec<Option<BestMatch>> {
        let mut out: Vec<Option<BestMatch>> = vec![None; self.count];
        for (idx, plan) in &self.fallback {
            out[*idx as usize] = plan.best_match_counted(series, early_abandon, counters);
        }
        let started = counters.map(|_| std::time::Instant::now());
        let mut tally = Tally::default();
        for group in &self.groups {
            if group.plans.len() == 1 {
                // Singleton length group: the cascade's shared costs
                // (segment-sum slides, K-wide tier passes) amortize over
                // zero siblings, and measured end-to-end they cost more
                // than they prune. The rolling kernel — the cascade's
                // bit-identical oracle — is the faster engine here.
                out[group.idx[0] as usize] =
                    group.plans[0].best_match_counted(series, early_abandon, counters);
                continue;
            }
            group.scan(
                series,
                early_abandon,
                self.sax_cuts.as_deref(),
                &mut tally,
                &mut out,
            );
        }
        tally.publish(counters, started);
        out
    }

    /// Recomputes every cascade bound alongside the exhaustive exact
    /// distance for every (grouped pattern, window) pair — the bounds
    /// come from the same code paths (including the rolling segment
    /// sums) the pruning scan uses, so the admissibility property tests
    /// exercise production arithmetic, not a reference reimplementation.
    /// Fallback patterns have no bounds and are omitted.
    pub fn audit(&self, series: &[f64]) -> Vec<LbAudit> {
        let mut rows = Vec::new();
        for group in &self.groups {
            group.audit(series, self.sax_cuts.as_deref(), &mut rows);
        }
        rows
    }
}

/// Scan-local counter accumulation, published once per `match_all`.
#[derive(Default)]
struct Tally {
    searches: u64,
    windows: u64,
    abandoned: u64,
    pruned_first_last: u64,
    pruned_envelope: u64,
    pruned_sax: u64,
    stats_builds: u64,
}

impl Tally {
    fn publish(&self, counters: Option<&ScanCounters>, started: Option<std::time::Instant>) {
        let m = rpm_obs::metrics();
        m.match_searches.add(self.searches);
        m.match_windows.add(self.windows);
        m.match_abandoned.add(self.abandoned);
        m.match_pruned_first_last.add(self.pruned_first_last);
        m.match_pruned_envelope.add(self.pruned_envelope);
        m.match_pruned_sax.add(self.pruned_sax);
        m.match_stats_builds.add(self.stats_builds);
        if let (Some(c), Some(t0)) = (counters, started) {
            c.searches.fetch_add(self.searches, Ordering::Relaxed);
            c.windows.fetch_add(self.windows, Ordering::Relaxed);
            c.abandoned.fetch_add(self.abandoned, Ordering::Relaxed);
            c.pruned_first_last
                .fetch_add(self.pruned_first_last, Ordering::Relaxed);
            c.pruned_envelope
                .fetch_add(self.pruned_envelope, Ordering::Relaxed);
            c.pruned_sax.fetch_add(self.pruned_sax, Ordering::Relaxed);
            c.stats_builds
                .fetch_add(self.stats_builds, Ordering::Relaxed);
            c.match_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

impl LengthGroup {
    fn empty(n: usize, sax: bool) -> Self {
        let seg = if n >= MIN_ENVELOPE_LEN {
            segment_bounds(n, ENVELOPE_SEGMENTS)
        } else {
            Vec::new()
        };
        let seg_len: Vec<f64> = seg.iter().map(|&(s, e)| (e - s) as f64).collect();
        let seg_inv_len: Vec<f64> = seg_len.iter().map(|&l| 1.0 / l).collect();
        let _ = sax;
        Self {
            n,
            idx: Vec::new(),
            plans: Vec::new(),
            first: Vec::new(),
            last: Vec::new(),
            seg,
            seg_len,
            seg_inv_len,
            paa: Vec::new(),
            sax: Vec::new(),
        }
    }

    fn push(&mut self, idx: u32, plan: &MatchPlan, cuts: Option<&[f64]>) {
        let zp = plan.znormed();
        self.idx.push(idx);
        self.first.push(zp[0]);
        self.last.push(zp[self.n - 1]);
        for &(s, e) in &self.seg {
            let mut sum = CompensatedSum::new();
            for &v in &zp[s as usize..e as usize] {
                sum.add(v);
            }
            let mean = sum.value() / (e - s) as f64;
            self.paa.push(mean);
            if let Some(cuts) = cuts {
                self.sax.push(symbol(mean, cuts));
            }
        }
        self.plans.push(plan.clone());
    }

    /// The cascade scan: one `RollingStats` build, then per position a
    /// K-wide tier-1 pass over the contiguous first/last streams,
    /// falling through per pattern to tiers 2–4.
    fn scan(
        &self,
        series: &[f64],
        early_abandon: bool,
        cuts: Option<&[f64]>,
        tally: &mut Tally,
        out: &mut [Option<BestMatch>],
    ) {
        let n = self.n;
        let k_count = self.plans.len();
        if k_count == 0 || n > series.len() {
            return; // per-pattern kernels return None here; `out` stays None
        }
        let stats = RollingStats::new(series, n).expect("bounds checked above");
        tally.stats_builds += 1;
        tally.searches += k_count as u64;
        tally.windows += (k_count * stats.count()) as u64;
        let xc = stats.centered();
        let nf = n as f64;
        let b = self.seg.len();
        let mut best_sq = vec![f64::INFINITY; k_count];
        let mut best_pos = vec![0usize; k_count];
        // Seed pass: probe a sparse stride of positions with the exact
        // kernel before the sweep, so best-so-far is tight from the
        // first position. Without it, a pattern whose occurrence sits
        // late in the series leaves its best loose across the whole
        // prefix — a regime where no admissible bound can prune. The
        // probes change no outcome: probed windows are re-visited by
        // the sweep (a bound never prunes its own best: lb ≤ d = best
        // under strict `>`), and exact ties resolve to the earliest
        // position via the `best_pos` tie-breaks below, exactly like
        // the increasing-order rolling scan. Probes are not tallied —
        // counters describe the logical K×count scan.
        let count = stats.count();
        let stride = (n / 4).max(16);
        let mut p = stride;
        while p < count {
            for k in 0..k_count {
                self.probe(k, &stats, xc, p, early_abandon, &mut best_sq, &mut best_pos);
            }
            p += stride;
        }
        // Local refinement: walk each member's best probe neighborhood.
        // When the pattern actually occurs in the series — the premise
        // of a classifier matching mined patterns against in-class
        // series — the nearest strided probe lands within `stride` of
        // the occurrence, and this walk drives the best to ~0, after
        // which tier 1 closes almost the entire sweep.
        for k in 0..k_count {
            if best_sq[k] == f64::INFINITY {
                continue;
            }
            let lo = best_pos[k].saturating_sub(stride - 1);
            let hi = (best_pos[k] + stride - 1).min(count - 1);
            for p in lo..=hi {
                self.probe(k, &stats, xc, p, early_abandon, &mut best_sq, &mut best_pos);
            }
        }
        let mut seg_sums = SegSums::new(xc, &self.seg);
        let mut paa_w = vec![0.0; b];
        let mut lb1 = vec![0.0; k_count];
        for p in 0..stats.count() {
            let sd = stats.std(p);
            if sd < ZNORM_EPSILON {
                // Constant window: every pattern scores its own norm —
                // the rolling kernel's σ=0 convention, no bounds needed.
                for k in 0..k_count {
                    let d = self.plans[k].sq_norm;
                    if d < best_sq[k] || (d == best_sq[k] && p < best_pos[k]) {
                        best_sq[k] = d;
                        best_pos[k] = p;
                    }
                }
                continue;
            }
            let mu = stats.mean_centered(p);
            let inv = 1.0 / sd;
            let w = &xc[p..p + n];
            let zw0 = (xc[p] - mu) * inv;
            let zwl = (xc[p + n - 1] - mu) * inv;
            // Tier 1, K-wide over the contiguous streams: branch-free
            // slice zips (no bounds checks), 4 independent f64 lanes
            // per iteration for the autovectorizer, with the survivor
            // count fused into the same pass as a popcount-style
            // boolean reduction.
            let mut survivors = 0usize;
            for (((lb, &f), &l), &bs) in lb1
                .iter_mut()
                .zip(&self.first)
                .zip(&self.last)
                .zip(&best_sq)
            {
                let d0 = f - zw0;
                let dl = l - zwl;
                let v = d0 * d0 + dl * dl;
                *lb = v;
                survivors += (v * TIER1_DEFLATE <= bs) as usize;
            }
            // Cheap whole-position exit: if tier 1 prunes every member,
            // skip the per-pattern dispatch loop — and the segment-sum
            // slide, which is lazy for the same reason the PAA is.
            if survivors == 0 {
                tally.pruned_first_last += k_count as u64;
                continue;
            }
            // Window PAA means are shared by every pattern in the group
            // but computed lazily: when tier 1 prunes the whole set at
            // this position (the common case once a good match is found),
            // the segment divisions are never paid.
            let mut paa_ready = false;
            for k in 0..k_count {
                if lb1[k] * TIER1_DEFLATE > best_sq[k] {
                    tally.pruned_first_last += 1;
                    continue;
                }
                if b > 0 {
                    if !paa_ready {
                        seg_sums.at(p);
                        for (j, &inv_len) in self.seg_inv_len.iter().enumerate() {
                            paa_w[j] = (seg_sums.sums[j] * inv_len - mu) * inv;
                        }
                        paa_ready = true;
                    }
                    let lb2 = self.envelope_lb(k, &paa_w);
                    if lb2 * TIER23_DEFLATE > best_sq[k] {
                        tally.pruned_envelope += 1;
                        continue;
                    }
                    if let Some(cuts) = cuts {
                        let lb3 = self.sax_lb(k, &paa_w, cuts);
                        if lb3 * TIER23_DEFLATE > best_sq[k] {
                            tally.pruned_sax += 1;
                            continue;
                        }
                    }
                }
                let plan = &self.plans[k];
                let d_sq = if early_abandon {
                    match plan.fused_early_abandon(w, mu, inv, best_sq[k]) {
                        Some(d) => d,
                        None => {
                            tally.abandoned += 1;
                            continue;
                        }
                    }
                } else {
                    plan.fused_exhaustive(w, mu, inv)
                };
                // The position tie-break only ever fires against a
                // seed-pass probe: the sweep itself visits positions in
                // increasing order, so an equal distance at a *lower*
                // position means the probe got there first.
                if d_sq < best_sq[k] || (d_sq == best_sq[k] && p < best_pos[k]) {
                    best_sq[k] = d_sq;
                    best_pos[k] = p;
                }
            }
        }
        for k in 0..k_count {
            out[self.idx[k] as usize] = Some(BestMatch {
                position: best_pos[k],
                distance: (best_sq[k].max(0.0) / nf).sqrt(),
            });
        }
    }

    /// One exact probe of member `k` at position `p`, updating its
    /// best-so-far under the sweep's strict-`<` rule (ties keep the
    /// incumbent; the sweep's position tie-break restores first-argmin
    /// order). Probes are an outcome-free accelerant — see the
    /// seed-pass comment in [`scan`](Self::scan).
    #[inline]
    #[allow(clippy::too_many_arguments)] // flat hot-path plumbing, crate-private
    fn probe(
        &self,
        k: usize,
        stats: &RollingStats,
        xc: &[f64],
        p: usize,
        early_abandon: bool,
        best_sq: &mut [f64],
        best_pos: &mut [usize],
    ) {
        let sd = stats.std(p);
        let d = if sd < ZNORM_EPSILON {
            Some(self.plans[k].sq_norm)
        } else {
            let mu = stats.mean_centered(p);
            let inv = 1.0 / sd;
            let w = &xc[p..p + self.n];
            if early_abandon {
                self.plans[k].fused_early_abandon(w, mu, inv, best_sq[k])
            } else {
                Some(self.plans[k].fused_exhaustive(w, mu, inv))
            }
        };
        if let Some(d) = d {
            if d < best_sq[k] {
                best_sq[k] = d;
                best_pos[k] = p;
            }
        }
    }

    /// Tier-2 squared bound for member `k` against precomputed window
    /// PAA means.
    #[inline]
    fn envelope_lb(&self, k: usize, paa_w: &[f64]) -> f64 {
        let b = self.seg.len();
        let row = &self.paa[k * b..(k + 1) * b];
        let mut lb = 0.0;
        for (j, (&pm, &wm)) in row.iter().zip(paa_w).enumerate() {
            let d = pm - wm;
            lb += self.seg_len[j] * d * d;
        }
        lb
    }

    /// Tier-3 squared bound for member `k`: per segment, the gap
    /// between the pattern's symbol interval and the window's.
    #[inline]
    fn sax_lb(&self, k: usize, paa_w: &[f64], cuts: &[f64]) -> f64 {
        let b = self.seg.len();
        let row = &self.sax[k * b..(k + 1) * b];
        let mut lb = 0.0;
        for (j, (&sp, &wm)) in row.iter().zip(paa_w).enumerate() {
            let sw = symbol(wm, cuts);
            let cell = symbol_gap(sp, sw, cuts);
            lb += self.seg_len[j] * cell * cell;
        }
        lb
    }

    fn audit(&self, series: &[f64], cuts: Option<&[f64]>, rows: &mut Vec<LbAudit>) {
        let n = self.n;
        if self.plans.is_empty() || n > series.len() {
            return;
        }
        let stats = RollingStats::new(series, n).expect("bounds checked above");
        let xc = stats.centered();
        let b = self.seg.len();
        let mut seg_sums = SegSums::new(xc, &self.seg);
        let mut paa_w = vec![0.0; b];
        for p in 0..stats.count() {
            seg_sums.at(p);
            let sd = stats.std(p);
            if sd < ZNORM_EPSILON {
                continue; // the scan computes no bounds for σ=0 windows
            }
            let mu = stats.mean_centered(p);
            let inv = 1.0 / sd;
            let w = &xc[p..p + n];
            let zw0 = (xc[p] - mu) * inv;
            let zwl = (xc[p + n - 1] - mu) * inv;
            for (j, &inv_len) in self.seg_inv_len.iter().enumerate() {
                paa_w[j] = (seg_sums.sums[j] * inv_len - mu) * inv;
            }
            for k in 0..self.plans.len() {
                let d0 = self.first[k] - zw0;
                let dl = self.last[k] - zwl;
                rows.push(LbAudit {
                    pattern: self.idx[k] as usize,
                    position: p,
                    lb_first_last: d0 * d0 + dl * dl,
                    lb_envelope: (b > 0).then(|| self.envelope_lb(k, &paa_w)),
                    lb_sax: cuts.filter(|_| b > 0).map(|c| self.sax_lb(k, &paa_w, c)),
                    exact: self.plans[k].fused_exhaustive(w, mu, inv),
                });
            }
        }
    }
}

/// Rolling per-segment window sums over the centered series, rebuilt
/// exactly every [`BLOCK`] positions and after any skipped positions.
struct SegSums<'a> {
    xc: &'a [f64],
    seg: &'a [(u32, u32)],
    sums: Vec<f64>,
    /// Last materialized position; `usize::MAX` before the first call,
    /// so position 0 takes the rebuild path.
    pos: usize,
    /// Largest gap worth closing by repeated slides instead of an
    /// exact rebuild: a slide step costs ~2 flops per segment, a
    /// compensated rebuild ~4 per point, so the break-even gap is
    /// about a quarter of the window span.
    max_catchup: usize,
}

impl<'a> SegSums<'a> {
    fn new(xc: &'a [f64], seg: &'a [(u32, u32)]) -> Self {
        let span: usize = seg.iter().map(|&(s, e)| (e - s) as usize).sum();
        Self {
            xc,
            seg,
            sums: vec![0.0; seg.len()],
            pos: usize::MAX,
            max_catchup: (span / 4).max(1),
        }
    }

    /// Makes `sums` current for position `p`. Callers visit positions
    /// in increasing order but may skip any of them (the scan only
    /// materializes sums at positions tier 1 failed to close). Small
    /// same-block gaps are closed by sliding the sums one step at a
    /// time; anything else — block starts, long gaps, block-crossing
    /// gaps — triggers an exact compensated rebuild. Slides therefore
    /// never span more than [`BLOCK`] consecutive positions between
    /// rebuilds, which keeps the incremental drift inside the
    /// [`TIER23_DEFLATE`] pruning margin.
    #[inline]
    fn at(&mut self, p: usize) {
        let catchup = self.pos != usize::MAX
            && p > self.pos
            && p - self.pos <= self.max_catchup
            && p / BLOCK == self.pos / BLOCK;
        if catchup {
            for q in self.pos + 1..=p {
                for (j, &(s, e)) in self.seg.iter().enumerate() {
                    self.sums[j] += self.xc[q - 1 + e as usize] - self.xc[q - 1 + s as usize];
                }
            }
        } else {
            for (j, &(s, e)) in self.seg.iter().enumerate() {
                let mut sum = CompensatedSum::new();
                for &v in &self.xc[p + s as usize..p + e as usize] {
                    sum.add(v);
                }
                self.sums[j] = sum.value();
            }
        }
        self.pos = p;
    }
}

/// Standard PAA segmentation: segment `j` of `b` spans
/// `[j·n/b, (j+1)·n/b)` — non-empty, contiguous, covering.
fn segment_bounds(n: usize, b: usize) -> Vec<(u32, u32)> {
    let b = b.min(n);
    (0..b)
        .map(|j| ((j * n / b) as u32, ((j + 1) * n / b) as u32))
        .collect()
}

/// SAX symbol of `value` under ascending breakpoint `cuts`: the number
/// of cuts at or below it.
#[inline]
fn symbol(value: f64, cuts: &[f64]) -> u8 {
    cuts.partition_point(|&c| c <= value) as u8
}

/// The MINDIST cell: the gap between two symbols' value intervals
/// (0 for equal or adjacent symbols).
#[inline]
fn symbol_gap(a: u8, b: u8, cuts: &[f64]) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi - lo < 2 {
        0.0
    } else {
        cuts[hi as usize - 1] - cuts[lo as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::prepare_pattern;

    fn pseudo_random_series(len: usize, mut state: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 33) as f64) / (u32::MAX as f64) - 0.5);
        }
        out
    }

    fn plans_from(series: &[f64], spans: &[(usize, usize)]) -> Vec<MatchPlan> {
        spans
            .iter()
            .map(|&(s, l)| prepare_pattern(&series[s..s + l]))
            .collect()
    }

    #[test]
    fn batched_is_bit_identical_to_per_pattern_rolling() {
        let series = pseudo_random_series(600, 0xD1CE);
        let plans = plans_from(&series, &[(10, 32), (100, 32), (250, 64), (400, 17)]);
        let batched = BatchedMatch::new(&plans);
        for ea in [true, false] {
            let got = batched.match_all(&series, ea, None);
            for (plan, got) in plans.iter().zip(&got) {
                let want = plan.best_match(&series, ea).unwrap();
                assert_eq!(Some(want), *got, "ea={ea}");
            }
        }
    }

    #[test]
    fn duplicate_and_degenerate_patterns_resolve_like_their_plans() {
        let series = pseudo_random_series(300, 7);
        let mut plans = plans_from(&series, &[(50, 24), (50, 24)]);
        plans.push(prepare_pattern(&[3.3; 24])); // degenerate → naive fallback
        plans.push(MatchPlan::with_kernel(&series[80..104], MatchKernel::Naive));
        let batched = BatchedMatch::new(&plans);
        let got = batched.match_all(&series, true, None);
        for (plan, got) in plans.iter().zip(&got) {
            assert_eq!(plan.best_match(&series, true), *got);
        }
        assert_eq!(got[0], got[1], "duplicates share a result");
    }

    #[test]
    fn oversized_and_empty_patterns_yield_none() {
        let series = pseudo_random_series(40, 9);
        let plans = vec![
            prepare_pattern(&pseudo_random_series(64, 10)), // longer than series
            prepare_pattern(&[]),
            prepare_pattern(&series[5..25]),
        ];
        let batched = BatchedMatch::new(&plans);
        assert_eq!(batched.len(), 3);
        assert!(!batched.is_empty());
        let got = batched.match_all(&series, true, None);
        assert_eq!(got[0], None);
        assert_eq!(got[1], None);
        assert_eq!(got[2], plans[2].best_match(&series, true));
    }

    #[test]
    fn counters_account_for_the_whole_set() {
        let series = pseudo_random_series(500, 0xBEE);
        let plans = plans_from(&series, &[(0, 40), (60, 40), (200, 40), (300, 80)]);
        let batched = BatchedMatch::new(&plans);
        let counters = ScanCounters::new();
        let got = batched.match_all(&series, true, Some(&counters));
        assert!(got.iter().all(Option::is_some));
        let stats = counters.snapshot();
        assert_eq!(stats.searches, 4);
        let expected_windows = 3 * (500 - 40 + 1) + (500 - 80 + 1);
        assert_eq!(stats.windows, expected_windows as u64);
        assert_eq!(stats.stats_builds, 2, "one RollingStats per length group");
        assert!(stats.pruned_total() > 0, "cascade must prune: {stats:?}");
        assert!(
            stats.pruned_total() + stats.abandoned < stats.windows,
            "winners are never pruned"
        );
        assert!(stats.prune_rate() > 0.0 && stats.prune_rate() < 1.0);
        assert!(stats.match_ns > 0);
    }

    #[test]
    fn sax_tier_is_admissible_and_preserves_results() {
        let series = pseudo_random_series(400, 0xCAB);
        let plans = plans_from(&series, &[(30, 48), (150, 48)]);
        // Cuts shaped like rpm_sax::breakpoints(4).
        let cuts = vec![-0.6744897501960817, 0.0, 0.6744897501960817];
        let plain = BatchedMatch::new(&plans);
        let saxed = BatchedMatch::with_sax_cuts(&plans, Some(cuts));
        assert!(saxed.sax_enabled() && !plain.sax_enabled());
        assert_eq!(
            plain.match_all(&series, true, None),
            saxed.match_all(&series, true, None)
        );
        for row in saxed.audit(&series) {
            let slack = 1e-9 * row.exact.max(1.0);
            assert!(row.lb_first_last <= row.exact + slack, "{row:?}");
            if let Some(lb) = row.lb_envelope {
                assert!(lb <= row.exact + 1e-7 * row.exact.max(1.0), "{row:?}");
            }
            if let Some(lb) = row.lb_sax {
                assert!(lb <= row.exact + 1e-7 * row.exact.max(1.0), "{row:?}");
                assert!(
                    lb <= row.lb_envelope.unwrap() + 1e-7,
                    "SAX is dominated by the envelope: {row:?}"
                );
            }
        }
    }

    #[test]
    fn segment_bounds_cover_without_gaps() {
        for n in [16usize, 17, 31, 64, 100] {
            let seg = segment_bounds(n, ENVELOPE_SEGMENTS);
            assert_eq!(seg[0].0, 0);
            assert_eq!(seg.last().unwrap().1 as usize, n);
            for w in seg.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].0 < w[0].1);
            }
        }
    }

    #[test]
    fn symbol_gap_matches_mindist_cells() {
        let cuts = [-0.5, 0.0, 0.5];
        assert_eq!(symbol(-1.0, &cuts), 0);
        assert_eq!(symbol(-0.5, &cuts), 1);
        assert_eq!(symbol(0.75, &cuts), 3);
        assert_eq!(symbol_gap(1, 2, &cuts), 0.0);
        assert_eq!(symbol_gap(0, 2, &cuts), 0.5);
        assert_eq!(symbol_gap(3, 0, &cuts), 1.0);
    }
}
