//! Euclidean distances with early abandoning.
//!
//! The paper's training bottleneck is the repeated closest-match search
//! between pattern candidates and full training series (§5.3); it cites the
//! classic early-abandoning trick: stop accumulating squared differences as
//! soon as the running sum exceeds the best-so-far. We expose both plain and
//! early-abandoning variants so the ablation bench can quantify the win.

/// Squared Euclidean distance between equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between equal-length slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance that abandons once the partial sum exceeds
/// `cutoff`, returning `None` in that case.
///
/// `cutoff` is a *squared* threshold. The check runs every 8 lanes so the
/// common (non-abandoning) path stays vectorizable.
pub fn sq_euclidean_early_abandon(a: &[f64], b: &[f64], cutoff: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "sq_euclidean length mismatch");
    let mut acc = 0.0;
    let mut i = 0;
    let n = a.len();
    while i < n {
        let end = (i + 8).min(n);
        for j in i..end {
            let d = a[j] - b[j];
            acc += d * d;
        }
        if acc > cutoff {
            return None;
        }
        i = end;
    }
    Some(acc)
}

/// Euclidean distance with early abandoning; `cutoff` is in distance units
/// (not squared). Returns `None` when the distance provably exceeds it.
pub fn euclidean_early_abandon(a: &[f64], b: &[f64], cutoff: f64) -> Option<f64> {
    sq_euclidean_early_abandon(a, b, cutoff * cutoff).map(f64::sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_distance() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [1.5, -2.0, 0.25];
        assert_eq!(sq_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn empty_slices_have_zero_distance() {
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn early_abandon_matches_exact_when_under_cutoff() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [1.0; 9];
        let exact = sq_euclidean(&a, &b);
        assert_eq!(sq_euclidean_early_abandon(&a, &b, exact + 1.0), Some(exact));
        // Cutoff exactly equal is kept (strict > abandon).
        assert_eq!(sq_euclidean_early_abandon(&a, &b, exact), Some(exact));
    }

    #[test]
    fn early_abandon_triggers() {
        let a = [10.0; 64];
        let b = [0.0; 64];
        assert_eq!(sq_euclidean_early_abandon(&a, &b, 50.0), None);
    }

    #[test]
    fn euclidean_cutoff_is_in_distance_units() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(euclidean_early_abandon(&a, &b, 5.0), Some(5.0));
        assert_eq!(euclidean_early_abandon(&a, &b, 4.9), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        sq_euclidean(&[1.0], &[1.0, 2.0]);
    }
}
