//! Rotation / shift corruption (§6.1).
//!
//! The paper evaluates shift invariance by cutting each *test* series at a
//! random point and swapping the halves — equivalent to starting the radial
//! scan of a shape-converted series at a different position. The paper's
//! rotation-invariant transform also rotates the test series at its midpoint
//! ([`rotate_half`]) and keeps the smaller of the two closest-match
//! distances.

/// Rotates `series` left by `cut` positions: the result is
/// `series[cut..] ++ series[..cut]`.
///
/// `cut` is taken modulo the series length, so any value is accepted;
/// rotating an empty series returns an empty vector.
pub fn rotate(series: &[f64], cut: usize) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let cut = cut % series.len();
    let mut out = Vec::with_capacity(series.len());
    out.extend_from_slice(&series[cut..]);
    out.extend_from_slice(&series[..cut]);
    out
}

/// Rotates `series` at its midpoint — the auxiliary series `B` of §6.1 used
/// to re-join a best match that the random rotation may have severed.
pub fn rotate_half(series: &[f64]) -> Vec<f64> {
    rotate(series, series.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rotation() {
        assert_eq!(rotate(&[1.0, 2.0, 3.0, 4.0], 1), vec![2.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn zero_cut_is_identity() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(rotate(&s, 0), s.to_vec());
    }

    #[test]
    fn cut_wraps_modulo_length() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(rotate(&s, 4), rotate(&s, 1));
        assert_eq!(rotate(&s, 3), s.to_vec());
    }

    #[test]
    fn rotate_half_even_and_odd() {
        assert_eq!(rotate_half(&[1.0, 2.0, 3.0, 4.0]), vec![3.0, 4.0, 1.0, 2.0]);
        assert_eq!(rotate_half(&[1.0, 2.0, 3.0]), vec![2.0, 3.0, 1.0]);
    }

    #[test]
    fn double_half_rotation_restores_even_series() {
        let s = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(rotate_half(&rotate_half(&s)), s.to_vec());
    }

    #[test]
    fn empty_series() {
        assert!(rotate(&[], 3).is_empty());
        assert!(rotate_half(&[]).is_empty());
    }

    #[test]
    fn rotation_is_a_permutation() {
        let s = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let mut r = rotate(&s, 4);
        let mut orig = s.to_vec();
        r.sort_by(f64::total_cmp);
        orig.sort_by(f64::total_cmp);
        assert_eq!(r, orig);
    }
}
