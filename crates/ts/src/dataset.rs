//! Labeled time series collections.
//!
//! The paper works with UCR-style datasets: a set of univariate series of
//! (usually) equal length, each tagged with an integer class label. We keep
//! the representation deliberately plain — a `Vec<Vec<f64>>` plus a parallel
//! label vector — because every algorithm in the reproduction consumes
//! slices, and because UCR archives are small enough that cache-friendly
//! nesting tricks buy nothing measurable here.

use std::collections::BTreeMap;
use std::fmt;

/// Class label. UCR labels are small integers; we normalize them to
/// contiguous `0..n_classes` on construction of a [`Dataset`] when loading
/// (see `rpm-data`), but the type itself accepts any `usize`.
pub type Label = usize;

/// A labeled collection of univariate time series.
///
/// Invariant: `series.len() == labels.len()`. Series lengths may differ
/// (the grammar/candidate machinery is length-agnostic), although every
/// generator in `rpm-data` produces equal-length series like the UCR
/// archive does.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"CBF"`).
    pub name: String,
    /// The series themselves.
    pub series: Vec<Vec<f64>>,
    /// Per-series class labels, parallel to `series`.
    pub labels: Vec<Label>,
}

/// Borrowed view of all series belonging to one class.
#[derive(Clone, Debug)]
pub struct ClassView<'a> {
    /// The class label shared by every member.
    pub label: Label,
    /// Indices into the parent dataset.
    pub indices: Vec<usize>,
    /// Borrowed series, parallel to `indices`.
    pub members: Vec<&'a [f64]>,
}

impl Dataset {
    /// Creates a dataset from parallel series/label vectors.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length.
    pub fn new(name: impl Into<String>, series: Vec<Vec<f64>>, labels: Vec<Label>) -> Self {
        assert_eq!(series.len(), labels.len(), "series/labels length mismatch");
        Self {
            name: name.into(),
            series,
            labels,
        }
    }

    /// Number of series in the dataset.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Appends one labeled series.
    pub fn push(&mut self, series: Vec<f64>, label: Label) {
        self.series.push(series);
        self.labels.push(label);
    }

    /// Distinct labels in ascending order.
    pub fn classes(&self) -> Vec<Label> {
        let mut c: Vec<Label> = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.classes().len()
    }

    /// Length of the longest series (0 for an empty dataset).
    pub fn max_len(&self) -> usize {
        self.series.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Length of the shortest series (0 for an empty dataset).
    pub fn min_len(&self) -> usize {
        self.series.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Borrowed per-class views, ordered by ascending label.
    pub fn by_class(&self) -> Vec<ClassView<'_>> {
        let mut groups: BTreeMap<Label, ClassView<'_>> = BTreeMap::new();
        for (i, (s, &l)) in self.series.iter().zip(&self.labels).enumerate() {
            let entry = groups.entry(l).or_insert_with(|| ClassView {
                label: l,
                indices: Vec::new(),
                members: Vec::new(),
            });
            entry.indices.push(i);
            entry.members.push(s.as_slice());
        }
        groups.into_values().collect()
    }

    /// Indices of all series carrying `label`.
    pub fn class_indices(&self, label: Label) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of series carrying `label`.
    pub fn class_size(&self, label: Label) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Builds a sub-dataset from the given indices (cloning the series).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            series: indices.iter().map(|&i| self.series[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Splits into (train, validate) where for each class the first
    /// `ceil(fraction * class_size)` members (in dataset order, after the
    /// caller shuffled if desired) go to train and the rest to validate.
    ///
    /// This is the `Split(OriginalTrain)` of Algorithm 3; the caller supplies
    /// randomness by permuting indices first (see `rpm-ml::cv`).
    pub fn stratified_split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must lie in [0,1]"
        );
        let mut train_idx = Vec::new();
        let mut val_idx = Vec::new();
        for view in self.by_class() {
            let n = view.indices.len();
            let k = ((n as f64) * train_fraction).ceil() as usize;
            let k = k.min(n);
            train_idx.extend_from_slice(&view.indices[..k]);
            val_idx.extend_from_slice(&view.indices[k..]);
        }
        (self.subset(&train_idx), self.subset(&val_idx))
    }

    /// Iterator over `(series, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], Label)> + '_ {
        self.series
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} series, {} classes, length {}..{}",
            self.name,
            self.len(),
            self.n_classes(),
            self.min_len(),
            self.max_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                vec![0.0, 1.0],
                vec![1.0, 2.0],
                vec![2.0, 3.0],
                vec![3.0, 4.0],
                vec![4.0, 5.0],
            ],
            vec![0, 1, 0, 1, 1],
        )
    }

    #[test]
    fn classes_are_sorted_and_deduped() {
        let d = toy();
        assert_eq!(d.classes(), vec![0, 1]);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn by_class_groups_members() {
        let d = toy();
        let views = d.by_class();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].label, 0);
        assert_eq!(views[0].indices, vec![0, 2]);
        assert_eq!(views[1].indices, vec![1, 3, 4]);
        assert_eq!(views[1].members.len(), 3);
    }

    #[test]
    fn class_indices_and_size() {
        let d = toy();
        assert_eq!(d.class_indices(1), vec![1, 3, 4]);
        assert_eq!(d.class_size(0), 2);
        assert_eq!(d.class_size(7), 0);
    }

    #[test]
    fn subset_preserves_pairs() {
        let d = toy();
        let s = d.subset(&[4, 0]);
        assert_eq!(s.series[0], vec![4.0, 5.0]);
        assert_eq!(s.labels, vec![1, 0]);
    }

    #[test]
    fn stratified_split_respects_classes() {
        let d = toy();
        let (tr, va) = d.stratified_split(0.5);
        // class 0: 2 members -> 1 train; class 1: 3 members -> 2 train.
        assert_eq!(tr.len(), 3);
        assert_eq!(va.len(), 2);
        assert_eq!(tr.class_size(0), 1);
        assert_eq!(tr.class_size(1), 2);
        // Every class still present in both halves.
        assert_eq!(va.class_size(0), 1);
        assert_eq!(va.class_size(1), 1);
    }

    #[test]
    fn split_with_fraction_one_keeps_everything_in_train() {
        let d = toy();
        let (tr, va) = d.stratified_split(1.0);
        assert_eq!(tr.len(), 5);
        assert!(va.is_empty());
    }

    #[test]
    fn display_summarizes() {
        let d = toy();
        let s = format!("{d}");
        assert!(s.contains("toy"));
        assert!(s.contains("5 series"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new("bad", vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    fn min_max_len() {
        let d = Dataset::new("v", vec![vec![0.0; 3], vec![0.0; 7]], vec![0, 0]);
        assert_eq!(d.min_len(), 3);
        assert_eq!(d.max_len(), 7);
    }
}
