//! Z-normalization.
//!
//! Every subsequence the paper's pipeline touches is z-normalized before
//! discretization or distance computation (§3.2.1).
//!
//! # The σ = 0 convention
//!
//! A subsequence whose population standard deviation falls below
//! [`ZNORM_EPSILON`] is treated as constant and mapped to **all zeros**,
//! the standard guard used by the SAX literature to avoid amplifying
//! quantization noise on flat segments. This single convention is shared
//! by every kernel in the workspace: the functions here, the naive
//! closest-match oracle ([`crate::matching::best_match_naive`]), and the
//! fused rolling-statistics kernel ([`crate::matching::best_match`]) all
//! compare the *same population σ* against the *same threshold*, so a
//! constant window scores the distance `‖z(pattern)‖` in every
//! implementation. The differential kernel suite (`tests/kernel_diff.rs`)
//! pins the convention.
//!
//! Means and variances are computed with Neumaier-compensated summation
//! ([`crate::stats::CompensatedSum`]): plain `f64` summation leaks
//! O(n·ε·|offset|) into the mean for series riding a large baseline
//! (absolute-unit sensors), which is exactly the regime the rolling
//! kernel's differential tests exercise at 1e-9 tolerance.

use crate::stats::{compensated_mean, CompensatedSum};

/// Standard deviation below which a window counts as constant.
pub const ZNORM_EPSILON: f64 = 1e-10;

/// Compensated mean and population standard deviation of `x` — the
/// shared two-pass recompute behind both z-normalization and the naive
/// matching oracle.
#[inline]
fn mean_sd(x: &[f64]) -> (f64, f64) {
    let mean = compensated_mean(x);
    let mut acc = CompensatedSum::new();
    for &v in x {
        let d = v - mean;
        acc.add(d * d);
    }
    (mean, (acc.value() / x.len() as f64).sqrt())
}

/// Returns the z-normalized copy of `x`.
///
/// A (near-)constant input yields all zeros rather than NaNs.
pub fn znorm(x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    znorm_into(x, &mut out);
    out
}

/// Z-normalizes `x` into the caller-provided buffer `out`.
///
/// The buffer form exists because the closest-match search z-normalizes one
/// window per sliding position; reusing one scratch buffer removes the per-
/// window allocation from the hottest loop in the system.
///
/// # Panics
/// Panics if `out.len() != x.len()`.
pub fn znorm_into(x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "znorm_into buffer length mismatch");
    if x.is_empty() {
        return;
    }
    let (mean, sd) = mean_sd(x);
    if sd < ZNORM_EPSILON {
        out.fill(0.0);
    } else {
        for (o, v) in out.iter_mut().zip(x) {
            *o = (v - mean) / sd;
        }
    }
}

/// Z-normalizes `x` in place.
pub fn znorm_in_place(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let (mean, sd) = mean_sd(x);
    if sd < ZNORM_EPSILON {
        x.fill(0.0);
    } else {
        for v in x.iter_mut() {
            *v = (*v - mean) / sd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zero_mean_unit_variance() {
        let z = znorm(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        assert!(close(mean, 0.0), "mean {mean}");
        assert!(close(var, 1.0), "var {var}");
    }

    #[test]
    fn constant_series_maps_to_zero() {
        assert_eq!(znorm(&[3.3; 8]), vec![0.0; 8]);
    }

    #[test]
    fn near_constant_series_maps_to_zero() {
        let z = znorm(&[1.0, 1.0 + 1e-13, 1.0]);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_series_on_large_baseline_maps_to_zero() {
        // The σ=0 convention must survive absolute-unit baselines: the
        // compensated mean leaves no rounding residue that would push σ
        // past ZNORM_EPSILON.
        assert_eq!(znorm(&[1e8; 16]), vec![0.0; 16]);
        assert_eq!(znorm(&[-3.7e9; 5]), vec![0.0; 5]);
    }

    #[test]
    fn large_offset_preserves_zscores() {
        // The same shape riding a 1e6 baseline must z-normalize to the
        // same values to well under the kernel suite's 1e-9 tolerance.
        let base = [0.3, -1.2, 2.0, 0.7, -0.4, 1.1, -2.2, 0.9];
        let shifted: Vec<f64> = base.iter().map(|v| v + 1e6).collect();
        for (a, b) in znorm(&base).iter().zip(znorm(&shifted)) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_is_ok() {
        assert!(znorm(&[]).is_empty());
        let mut e: Vec<f64> = vec![];
        znorm_in_place(&mut e);
    }

    #[test]
    fn shift_and_scale_invariance() {
        let a = znorm(&[0.0, 1.0, 0.0, -1.0]);
        let b = znorm(&[10.0, 12.0, 10.0, 8.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn in_place_matches_copy() {
        let src = [2.0, -1.0, 0.5, 7.0, 3.0];
        let copied = znorm(&src);
        let mut inpl = src.to_vec();
        znorm_in_place(&mut inpl);
        assert_eq!(copied, inpl);
    }

    #[test]
    fn into_matches_copy() {
        let src = [2.0, -1.0, 0.5, 7.0];
        let mut buf = vec![0.0; 4];
        znorm_into(&src, &mut buf);
        assert_eq!(buf, znorm(&src));
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn into_rejects_bad_buffer() {
        let mut buf = vec![0.0; 3];
        znorm_into(&[1.0, 2.0], &mut buf);
    }
}
