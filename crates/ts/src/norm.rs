//! Z-normalization.
//!
//! Every subsequence the paper's pipeline touches is z-normalized before
//! discretization or distance computation (§3.2.1). A subsequence whose
//! standard deviation falls below [`ZNORM_EPSILON`] is treated as constant
//! and mapped to all zeros, the standard guard used by the SAX literature to
//! avoid amplifying quantization noise on flat segments.

/// Standard deviation below which a window counts as constant.
pub const ZNORM_EPSILON: f64 = 1e-10;

/// Returns the z-normalized copy of `x`.
///
/// A (near-)constant input yields all zeros rather than NaNs.
pub fn znorm(x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    znorm_into(x, &mut out);
    out
}

/// Z-normalizes `x` into the caller-provided buffer `out`.
///
/// The buffer form exists because the closest-match search z-normalizes one
/// window per sliding position; reusing one scratch buffer removes the per-
/// window allocation from the hottest loop in the system.
///
/// # Panics
/// Panics if `out.len() != x.len()`.
pub fn znorm_into(x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "znorm_into buffer length mismatch");
    if x.is_empty() {
        return;
    }
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < ZNORM_EPSILON {
        out.fill(0.0);
    } else {
        for (o, v) in out.iter_mut().zip(x) {
            *o = (v - mean) / sd;
        }
    }
}

/// Z-normalizes `x` in place.
pub fn znorm_in_place(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < ZNORM_EPSILON {
        x.fill(0.0);
    } else {
        for v in x.iter_mut() {
            *v = (*v - mean) / sd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zero_mean_unit_variance() {
        let z = znorm(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        assert!(close(mean, 0.0), "mean {mean}");
        assert!(close(var, 1.0), "var {var}");
    }

    #[test]
    fn constant_series_maps_to_zero() {
        assert_eq!(znorm(&[3.3; 8]), vec![0.0; 8]);
    }

    #[test]
    fn near_constant_series_maps_to_zero() {
        let z = znorm(&[1.0, 1.0 + 1e-13, 1.0]);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_is_ok() {
        assert!(znorm(&[]).is_empty());
        let mut e: Vec<f64> = vec![];
        znorm_in_place(&mut e);
    }

    #[test]
    fn shift_and_scale_invariance() {
        let a = znorm(&[0.0, 1.0, 0.0, -1.0]);
        let b = znorm(&[10.0, 12.0, 10.0, 8.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn in_place_matches_copy() {
        let src = [2.0, -1.0, 0.5, 7.0, 3.0];
        let copied = znorm(&src);
        let mut inpl = src.to_vec();
        znorm_in_place(&mut inpl);
        assert_eq!(copied, inpl);
    }

    #[test]
    fn into_matches_copy() {
        let src = [2.0, -1.0, 0.5, 7.0];
        let mut buf = vec![0.0; 4];
        znorm_into(&src, &mut buf);
        assert_eq!(buf, znorm(&src));
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn into_rejects_bad_buffer() {
        let mut buf = vec![0.0; 3];
        znorm_into(&[1.0, 2.0], &mut buf);
    }
}
