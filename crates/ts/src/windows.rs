//! Sliding-window subsequence extraction (§2.1).

/// Iterator over all length-`n` windows of `series`, yielding
/// `(start_offset, window)` pairs.
///
/// Yields nothing when `n == 0` or `n > series.len()`; callers in the SAX
/// pipeline treat an over-long window as "this parameter combination does
/// not apply to this series" rather than an error, matching the paper's
/// parameter search which simply skips infeasible combinations.
pub fn sliding_windows(series: &[f64], n: usize) -> impl Iterator<Item = (usize, &[f64])> + '_ {
    let count = if n == 0 || n > series.len() {
        0
    } else {
        series.len() - n + 1
    };
    (0..count).map(move |p| (p, &series[p..p + n]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_all_positions() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let w: Vec<_> = sliding_windows(&s, 2).collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (0, &s[0..2]));
        assert_eq!(w[2], (2, &s[2..4]));
    }

    #[test]
    fn full_length_window_yields_once() {
        let s = [1.0, 2.0];
        let w: Vec<_> = sliding_windows(&s, 2).collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 0);
    }

    #[test]
    fn oversized_window_yields_nothing() {
        let s = [1.0, 2.0];
        assert_eq!(sliding_windows(&s, 3).count(), 0);
    }

    #[test]
    fn zero_window_yields_nothing() {
        let s = [1.0, 2.0];
        assert_eq!(sliding_windows(&s, 0).count(), 0);
    }

    #[test]
    fn empty_series_yields_nothing() {
        let s: [f64; 0] = [];
        assert_eq!(sliding_windows(&s, 1).count(), 0);
    }

    #[test]
    fn count_formula() {
        let s = vec![0.0; 100];
        assert_eq!(sliding_windows(&s, 10).count(), 91);
    }
}
