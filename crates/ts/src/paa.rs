//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA reduces an `n`-point series to `w` segment means (§3.2.1). When `w`
//! does not divide `n` we use the fractional-weight scheme from the SAX
//! reference implementations: conceptually each input point is split evenly
//! across the `w` segments so every segment receives total weight `n / w`.

/// Computes the `w`-segment PAA of `x`.
///
/// * `w == x.len()` returns a copy of `x` (identity).
/// * `w > x.len()` is clamped to `x.len()` — requesting more segments than
///   points cannot add information, and the SAX discretizer relies on this
///   clamp when the sliding window is short.
///
/// # Panics
/// Panics if `w == 0` or `x` is empty.
pub fn paa(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "PAA segment count must be positive");
    assert!(!x.is_empty(), "PAA input must be non-empty");
    let n = x.len();
    let w = w.min(n);
    if w == n {
        return x.to_vec();
    }
    if n.is_multiple_of(w) {
        let seg = n / w;
        return x
            .chunks_exact(seg)
            .map(|c| c.iter().sum::<f64>() / seg as f64)
            .collect();
    }
    // Fractional scheme: map point i to the interval [i*w/n, (i+1)*w/n) in
    // segment space. Each segment spans exactly one unit there, so the
    // weights accumulated per segment sum to 1 and the accumulator is
    // already the segment's weighted mean.
    let mut out = vec![0.0; w];
    let n_f = n as f64;
    let w_f = w as f64;
    for (i, &v) in x.iter().enumerate() {
        let start = i as f64 * w_f / n_f;
        let end = (i + 1) as f64 * w_f / n_f;
        let s_idx = start.floor() as usize;
        // `end` may land exactly on a boundary; clamp to the last segment.
        let e_idx = (end.ceil() as usize).saturating_sub(1).min(w - 1);
        if s_idx == e_idx {
            out[s_idx] += v * (end - start);
        } else {
            // The point straddles the boundary between two segments.
            let boundary = (s_idx + 1) as f64;
            out[s_idx] += v * (boundary - start);
            out[e_idx] += v * (end - boundary);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn exact_division_uses_segment_means() {
        close(&paa(&[1.0, 3.0, 5.0, 7.0], 2), &[2.0, 6.0]);
    }

    #[test]
    fn identity_when_w_equals_n() {
        let x = [1.0, 2.0, 3.0];
        close(&paa(&x, 3), &x);
    }

    #[test]
    fn w_larger_than_n_clamps() {
        let x = [4.0, 5.0];
        close(&paa(&x, 10), &x);
    }

    #[test]
    fn single_segment_is_global_mean() {
        close(&paa(&[2.0, 4.0, 9.0], 1), &[5.0]);
    }

    #[test]
    fn fractional_split_preserves_total_mass() {
        // 5 points into 2 segments: each segment covers 2.5 points.
        let x = [1.0, 1.0, 1.0, 1.0, 1.0];
        close(&paa(&x, 2), &[1.0, 1.0]);
    }

    #[test]
    fn fractional_split_known_values() {
        // 3 points into 2 segments:
        // seg0 = (x0 + 0.5*x1) / 1.5, seg1 = (0.5*x1 + x2) / 1.5
        let x = [0.0, 3.0, 6.0];
        close(&paa(&x, 2), &[1.0, 5.0]);
    }

    #[test]
    fn mean_is_preserved() {
        // PAA of any series has the same mean as the input (weights sum to n/w).
        let x = [0.4, 1.7, -2.0, 3.3, 0.0, 5.5, -1.1];
        for w in 1..=7 {
            let p = paa(&x, w);
            let m_in = x.iter().sum::<f64>() / x.len() as f64;
            let m_out = p.iter().sum::<f64>() / p.len() as f64;
            assert!((m_in - m_out).abs() < 1e-9, "w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_segments_panics() {
        paa(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_input_panics() {
        paa(&[], 1);
    }
}
