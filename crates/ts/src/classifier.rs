//! The shared classification interface.
//!
//! Every method in the reproduction — RPM itself and the five §5.1
//! baselines — implements [`Classifier`], so harnesses, the reproduction
//! binary, and ablations drive all of them through one `&dyn Classifier`.
//! The trait lives in this foundation crate (rather than the baselines
//! crate, where it started) so `rpm-core` can implement it without a
//! dependency cycle.
//!
//! ## Borrowed batches
//!
//! The batch surface is built around *borrows*: a batch is any slice of
//! things that view as `&[f64]` — `&[Vec<f64>]` from a loaded dataset,
//! or `&[&[f64]]` assembled from buffers owned elsewhere (the serving
//! path gathers slices across queued requests without copying a single
//! sample). [`Classifier::predict_batch`] is the generic entry point;
//! [`Classifier::predict_batch_refs`] is its object-safe core, which is
//! what `dyn Classifier` callers and trait implementors use.

use crate::dataset::Label;

/// How much parallelism a batch-prediction call may use. This is a
/// per-call execution knob, not a property of the model: the same
/// trained classifier answers serial single-request traffic and wide
/// offline batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread — the caller's.
    #[default]
    Serial,
    /// Fan the per-series work out across `n` worker threads (clamped to
    /// at least 1). Results are bit-identical to [`Parallelism::Serial`].
    Threads(usize),
}

impl Parallelism {
    /// Worker count this setting resolves to (`Serial` → 1).
    pub fn workers(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Threads(n) => n.max(1),
        }
    }
}

/// Uniform prediction interface over trained time-series classifiers.
///
/// ```
/// use rpm_ts::{Classifier, Label};
///
/// /// Classifies by the sign of the series mean.
/// struct SignOfMean;
///
/// impl Classifier for SignOfMean {
///     fn predict(&self, series: &[f64]) -> Label {
///         let mean: f64 = series.iter().sum::<f64>() / series.len().max(1) as f64;
///         usize::from(mean >= 0.0)
///     }
/// }
///
/// let model = SignOfMean;
/// assert_eq!(model.predict(&[-1.0, -2.0]), 0);
/// // Owned batches and borrowed batches go through the same call.
/// assert_eq!(model.predict_batch(&[vec![1.0, 2.0]]), vec![1]);
/// let borrowed: [&[f64]; 2] = [&[1.0, 2.0], &[-1.0, -2.0]];
/// assert_eq!(model.predict_batch(&borrowed), vec![1, 0]);
///
/// // Trait objects use the object-safe core; the generic door stays
/// // reachable through the `&dyn` reference itself (which is `Sized`).
/// let dyn_model: &dyn Classifier = &model;
/// assert_eq!(dyn_model.predict_batch_refs(&borrowed), vec![1, 0]);
/// assert_eq!(Classifier::predict_batch(&dyn_model, &[vec![1.0, 2.0]]), vec![1]);
/// ```
pub trait Classifier {
    /// Predicts the class label of one series.
    fn predict(&self, series: &[f64]) -> Label;

    /// Object-safe batch core: predicts one label per borrowed series.
    ///
    /// Implementors override this (not [`Classifier::predict_batch`]) to
    /// provide an optimized batch path; `dyn Classifier` callers that
    /// cannot use the generic front door call it directly.
    fn predict_batch_refs(&self, series: &[&[f64]]) -> Vec<Label> {
        series.iter().map(|s| self.predict(s)).collect()
    }

    /// Predicts a batch from anything that views as series slices:
    /// `&[Vec<f64>]`, `&[&[f64]]`, `&[Box<[f64]>]`, … The batch is
    /// *borrowed* — no sample data is copied to cross this call.
    fn predict_batch<S: AsRef<[f64]>>(&self, series: &[S]) -> Vec<Label>
    where
        Self: Sized,
    {
        let refs: Vec<&[f64]> = series.iter().map(AsRef::as_ref).collect();
        self.predict_batch_refs(&refs)
    }
}

/// References classify like the classifier they point at. This keeps
/// the generic [`Classifier::predict_batch`] reachable for trait
/// objects: `&dyn Classifier` is `Sized`, so
/// `Classifier::predict_batch(&the_ref, batch)` compiles even though
/// `dyn Classifier` itself cannot carry the generic method.
impl<C: Classifier + ?Sized> Classifier for &C {
    fn predict(&self, series: &[f64]) -> Label {
        (**self).predict(series)
    }

    fn predict_batch_refs(&self, series: &[&[f64]]) -> Vec<Label> {
        (**self).predict_batch_refs(series)
    }
}

/// Boxed classifiers (the harness's `Box<dyn Classifier>`) delegate to
/// their contents.
impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn predict(&self, series: &[f64]) -> Label {
        (**self).predict(series)
    }

    fn predict_batch_refs(&self, series: &[&[f64]]) -> Vec<Label> {
        (**self).predict_batch_refs(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(Label);

    impl Classifier for Constant {
        fn predict(&self, _series: &[f64]) -> Label {
            self.0
        }
    }

    #[test]
    fn default_batch_maps_predict() {
        let c = Constant(3);
        let batch = vec![vec![0.0; 4], vec![1.0; 4]];
        assert_eq!(c.predict_batch(&batch), vec![3, 3]);
    }

    #[test]
    fn borrowed_batches_take_plain_slices() {
        let c = Constant(7);
        let a = [0.0; 4];
        let b = [1.0; 9];
        let batch: [&[f64]; 2] = [&a, &b];
        assert_eq!(c.predict_batch(&batch), vec![7, 7]);
        assert_eq!(c.predict_batch_refs(&batch), vec![7, 7]);
    }

    #[test]
    fn trait_objects_dispatch() {
        let models: Vec<Box<dyn Classifier>> = vec![Box::new(Constant(0)), Box::new(Constant(1))];
        let preds: Vec<Label> = models.iter().map(|m| m.predict(&[0.5])).collect();
        assert_eq!(preds, vec![0, 1]);
    }

    #[test]
    fn boxed_and_referenced_classifiers_batch_through_the_generic_door() {
        let boxed: Box<dyn Classifier> = Box::new(Constant(2));
        assert_eq!(boxed.predict_batch(&[vec![0.0; 3]]), vec![2]);
        let constant = Constant(4);
        let dynref: &dyn Classifier = &constant;
        // Method syntax resolves to the (uncallable) object method, so
        // dyn callers go through UFCS on the reference or the refs core.
        assert_eq!(Classifier::predict_batch(&dynref, &[vec![0.0; 3]]), vec![4]);
        let series = [0.0; 3];
        let refs: [&[f64]; 1] = [&series];
        assert_eq!(dynref.predict_batch_refs(&refs), vec![4]);
    }

    #[test]
    fn parallelism_resolves_worker_counts() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(8).workers(), 8);
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }
}
