//! The shared classification interface.
//!
//! Every method in the reproduction — RPM itself and the five §5.1
//! baselines — implements [`Classifier`], so harnesses, the reproduction
//! binary, and ablations drive all of them through one `&dyn Classifier`.
//! The trait lives in this foundation crate (rather than the baselines
//! crate, where it started) so `rpm-core` can implement it without a
//! dependency cycle.

use crate::dataset::Label;

/// Uniform prediction interface over trained time-series classifiers.
///
/// ```
/// use rpm_ts::{Classifier, Label};
///
/// /// Classifies by the sign of the series mean.
/// struct SignOfMean;
///
/// impl Classifier for SignOfMean {
///     fn predict(&self, series: &[f64]) -> Label {
///         let mean: f64 = series.iter().sum::<f64>() / series.len().max(1) as f64;
///         usize::from(mean >= 0.0)
///     }
/// }
///
/// let model: &dyn Classifier = &SignOfMean;
/// assert_eq!(model.predict(&[-1.0, -2.0]), 0);
/// assert_eq!(model.predict_batch(&[vec![1.0, 2.0]]), vec![1]);
/// ```
pub trait Classifier {
    /// Predicts the class label of one series.
    fn predict(&self, series: &[f64]) -> Label;

    /// Predicts a batch.
    fn predict_batch(&self, series: &[Vec<f64>]) -> Vec<Label> {
        series.iter().map(|s| self.predict(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(Label);

    impl Classifier for Constant {
        fn predict(&self, _series: &[f64]) -> Label {
            self.0
        }
    }

    #[test]
    fn default_batch_maps_predict() {
        let c = Constant(3);
        let batch = vec![vec![0.0; 4], vec![1.0; 4]];
        assert_eq!(c.predict_batch(&batch), vec![3, 3]);
    }

    #[test]
    fn trait_objects_dispatch() {
        let models: Vec<Box<dyn Classifier>> = vec![Box::new(Constant(0)), Box::new(Constant(1))];
        let preds: Vec<Label> = models.iter().map(|m| m.predict(&[0.5])).collect();
        assert_eq!(preds, vec![0, 1]);
    }
}
