//! Small statistics helpers used across the pipeline, plus the
//! rolling-window statistics backing the fused closest-match kernel.

/// Neumaier-compensated running sum: every `add` folds the rounding
/// error of the addition into a separate compensation term, so a long
/// stream of adds (and subtracts — rolling-window updates push the old
/// sample back in with a flipped sign) accumulates error proportional to
/// the *magnitudes seen*, not to the running total's drift. This is what
/// keeps [`RollingStats`] honest over 10⁵-point series and what pins the
/// error bounds asserted in this module's tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// A fresh zero sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` (use a negative `v` to subtract).
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        // Neumaier's branch: the rounding error lives with whichever
        // operand is smaller in magnitude.
        if self.sum.abs() >= v.abs() {
            self.compensation += (self.sum - t) + v;
        } else {
            self.compensation += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of a slice.
pub fn compensated_sum(x: &[f64]) -> f64 {
    let mut s = CompensatedSum::new();
    for &v in x {
        s.add(v);
    }
    s.value()
}

/// Compensated arithmetic mean; 0.0 for an empty slice.
pub fn compensated_mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        compensated_sum(x) / x.len() as f64
    }
}

/// When the rolling variance `E[x²] − μ²` retains less than this fraction
/// of the magnitude of the terms being subtracted, the subtraction has
/// cancelled too many significant digits to trust and the window is
/// recomputed exactly (two-pass). With compensated sums the rolling
/// variance's absolute error is a few ε·(E[x²] + μ²); at this threshold
/// the surviving *relative* error is ≲ 4·ε / 10⁻⁵ ≈ 10⁻¹⁰ — comfortably
/// inside the 10⁻⁹ tolerance the differential kernel suite enforces —
/// while windows whose spread is a sane fraction of their magnitude
/// (σ/rms > ~0.3%) never trigger the O(window) fallback.
const VAR_RELIABLE_FACTOR: f64 = 1e-5;

/// Per-window mean and population standard deviation of every sliding
/// window of a series, computed in O(series) total via rolling
/// compensated sums of `x` and `x²` — the preprocessing step of the
/// fused closest-match kernel (UCR-Suite style; see
/// [`crate::matching`]).
///
/// Numerical design, in order of importance:
///
/// 1. **Global centering.** The series' global mean is subtracted once
///    up front (`centered()` exposes the shifted copy). `E[x²] − μ²`
///    cancels catastrophically when `|μ| ≫ σ`; removing the global
///    offset removes the dominant source of that regime (sensor
///    baselines, absolute-unit series). Window σ is shift-invariant, so
///    the z-normalization the kernel folds in is unchanged.
/// 2. **Compensated rolling sums.** Both rolling sums use
///    [`CompensatedSum`], so summation error does not grow with series
///    length.
/// 3. **Cancellation fallback.** Windows where the variance subtraction
///    still cancels past [`VAR_RELIABLE_FACTOR`] (near-constant windows
///    inside a wide-ranging series) are recomputed exactly in two
///    passes — O(window) for pathological windows only.
#[derive(Clone, Debug)]
pub struct RollingStats {
    window: usize,
    shift: f64,
    centered: Vec<f64>,
    mean_c: Vec<f64>,
    std: Vec<f64>,
}

impl RollingStats {
    /// Builds rolling statistics for every length-`window` window of
    /// `series`. Returns `None` when `window` is zero or longer than the
    /// series.
    pub fn new(series: &[f64], window: usize) -> Option<Self> {
        if window == 0 || window > series.len() {
            return None;
        }
        let shift = compensated_mean(series);
        let centered: Vec<f64> = series.iter().map(|v| v - shift).collect();
        let n = window as f64;
        let count = series.len() - window + 1;
        let mut mean_c = Vec::with_capacity(count);
        let mut std = Vec::with_capacity(count);
        let mut s1 = CompensatedSum::new();
        let mut s2 = CompensatedSum::new();
        for &v in &centered[..window] {
            s1.add(v);
            s2.add(v * v);
        }
        for p in 0..count {
            if p > 0 {
                let out = centered[p - 1];
                let inn = centered[p + window - 1];
                s1.add(inn);
                s1.add(-out);
                s2.add(inn * inn);
                s2.add(-(out * out));
            }
            let mut mu = s1.value() / n;
            let ex2 = s2.value() / n;
            let mut var = ex2 - mu * mu;
            if var < VAR_RELIABLE_FACTOR * (ex2.abs() + mu * mu) {
                // Too much cancellation (or a negative artifact):
                // recompute this window exactly.
                let w = &centered[p..p + window];
                let (lo, hi) = w
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                if lo == hi {
                    // Exactly constant: σ is 0 by definition, not a
                    // rounding residue that might straddle ZNORM_EPSILON.
                    mu = lo;
                    var = 0.0;
                } else {
                    mu = compensated_mean(w);
                    let mut acc = CompensatedSum::new();
                    for &v in w {
                        let d = v - mu;
                        acc.add(d * d);
                    }
                    var = acc.value() / n;
                }
            }
            mean_c.push(mu);
            std.push(if var > 0.0 { var.sqrt() } else { 0.0 });
        }
        Some(Self {
            window,
            shift,
            centered,
            mean_c,
            std,
        })
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of sliding windows (`series_len - window + 1`).
    pub fn count(&self) -> usize {
        self.mean_c.len()
    }

    /// The globally centered series (`series[i] - shift()`).
    pub fn centered(&self) -> &[f64] {
        &self.centered
    }

    /// The global mean subtracted from every sample.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Mean of window `p` in centered coordinates.
    #[inline]
    pub fn mean_centered(&self, p: usize) -> f64 {
        self.mean_c[p]
    }

    /// Mean of window `p` in the series' original units.
    pub fn mean(&self, p: usize) -> f64 {
        self.mean_c[p] + self.shift
    }

    /// Population standard deviation of window `p` (shift-invariant, so
    /// identical in centered and raw coordinates). Clamped at 0.
    #[inline]
    pub fn std(&self, p: usize) -> f64 {
        self.std[p]
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation; 0.0 for slices shorter than 2.
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
}

/// The `p`-th percentile of `x` (`p` in `[0, 100]`) using linear
/// interpolation between order statistics — the convention behind the
/// paper's "distance at the 30th percentile" similarity threshold τ
/// (§3.2.3).
///
/// # Panics
/// Panics when `x` is empty or `p` lies outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    assert!(!x.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile rank out of range");
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let x = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 3.0);
        assert_eq!(percentile(&x, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [0.0, 10.0];
        assert!((percentile(&x, 30.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 30.0), 7.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let x = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&x, 50.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_bad_rank_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn compensated_sum_beats_naive_on_cancellation() {
        // 1 + 1e16 - 1e16 = 1: the naive sum loses the 1 entirely.
        let x = [1.0, 1e16, -1e16];
        assert_eq!(x.iter().sum::<f64>(), 0.0);
        assert_eq!(compensated_sum(&x), 1.0);
    }

    #[test]
    fn compensated_mean_matches_plain_on_easy_data() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(compensated_mean(&x), 2.5);
        assert_eq!(compensated_mean(&[]), 0.0);
    }

    /// Deterministic xorshift random walk (no RNG dependency here).
    fn random_walk(len: usize, seed: u64, offset: f64) -> Vec<f64> {
        let mut state = seed.max(1);
        let mut acc = offset;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                acc += ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                acc
            })
            .collect()
    }

    /// Exact scalar recompute of one window's mean/σ, straight two-pass
    /// over the raw samples — the oracle RollingStats is pinned against.
    fn scalar_window_stats(w: &[f64]) -> (f64, f64) {
        let mu = compensated_mean(w);
        let mut acc = CompensatedSum::new();
        for &v in w {
            let d = v - mu;
            acc.add(d * d);
        }
        (mu, (acc.value() / w.len() as f64).sqrt())
    }

    /// The satellite requirement: rolling stats vs a scalar recompute
    /// over a ≥10⁵-point random walk, with the compensated-summation
    /// error bound pinned in assertions. The bounds are the measured
    /// worst case with an order of magnitude of headroom; they are what
    /// the 1e-9 differential-kernel tolerance is budgeted against.
    #[test]
    fn rolling_stats_match_scalar_recompute_on_long_walk() {
        for (seed, offset) in [(7u64, 0.0), (99u64, 1e6)] {
            let series = random_walk(100_000, seed, offset);
            for window in [16usize, 64, 250] {
                let rs = RollingStats::new(&series, window).unwrap();
                assert_eq!(rs.count(), series.len() - window + 1);
                let mut worst_mean = 0.0f64;
                let mut worst_std = 0.0f64;
                for p in 0..rs.count() {
                    let (mu, sd) = scalar_window_stats(&series[p..p + window]);
                    worst_mean = worst_mean.max((rs.mean(p) - mu).abs());
                    worst_std = worst_std.max((rs.std(p) - sd).abs());
                }
                // Pinned error bounds (absolute; window σ here is O(1)-O(10),
                // so these are also conservative relative bounds).
                assert!(
                    worst_mean < 1e-9,
                    "mean error {worst_mean:e} (seed {seed}, offset {offset}, window {window})"
                );
                assert!(
                    worst_std < 1e-9,
                    "std error {worst_std:e} (seed {seed}, offset {offset}, window {window})"
                );
            }
        }
    }

    #[test]
    fn rolling_stats_rejects_degenerate_windows() {
        assert!(RollingStats::new(&[1.0, 2.0], 0).is_none());
        assert!(RollingStats::new(&[1.0, 2.0], 3).is_none());
        let rs = RollingStats::new(&[1.0, 2.0], 2).unwrap();
        assert_eq!(rs.count(), 1);
        assert!((rs.mean(0) - 1.5).abs() < 1e-15);
        assert!((rs.std(0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rolling_stats_constant_window_has_zero_std() {
        // A constant run embedded in an otherwise huge-magnitude series:
        // the cancellation fallback must report σ exactly 0, not a
        // rounding artifact that straddles ZNORM_EPSILON.
        let mut series = vec![1e8; 40];
        for (i, v) in series.iter_mut().enumerate().skip(20) {
            *v = 1e8 + (i as f64) * 3.5;
        }
        let rs = RollingStats::new(&series, 10).unwrap();
        assert_eq!(rs.std(0), 0.0, "constant window must have σ = 0");
        assert!((rs.mean(0) - 1e8).abs() < 1e-6);
        assert!(rs.std(25) > 1.0, "sloped window has real spread");
    }

    #[test]
    fn rolling_stats_near_constant_window_survives_large_offset() {
        // σ = 1e-3 ripple on a 1e6 baseline: the rolling E[x²] − μ² form
        // alone would cancel to garbage; the fallback recomputes it.
        let window = 32;
        let series: Vec<f64> = (0..200)
            .map(|i| 1e6 + 1e-3 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rs = RollingStats::new(&series, window).unwrap();
        for p in 0..rs.count() {
            // Against the exact two-pass oracle on the stored samples
            // (the samples themselves carry ~ulp(1e6) ≈ 1e-10
            // representation error, so "exactly 1e-3" is unattainable).
            let (_, sd) = scalar_window_stats(&series[p..p + window]);
            assert!(
                (rs.std(p) - sd).abs() < 1e-12,
                "window {p}: σ {} vs oracle {sd}",
                rs.std(p)
            );
            assert!(
                (rs.std(p) - 1e-3).abs() < 1e-9,
                "window {p}: σ {}",
                rs.std(p)
            );
        }
    }
}
