//! Small statistics helpers used across the pipeline.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation; 0.0 for slices shorter than 2.
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
}

/// The `p`-th percentile of `x` (`p` in `[0, 100]`) using linear
/// interpolation between order statistics — the convention behind the
/// paper's "distance at the 30th percentile" similarity threshold τ
/// (§3.2.3).
///
/// # Panics
/// Panics when `x` is empty or `p` lies outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    assert!(!x.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile rank out of range");
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let x = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 3.0);
        assert_eq!(percentile(&x, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [0.0, 10.0];
        assert!((percentile(&x, 30.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 30.0), 7.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let x = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&x, 50.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_bad_rank_panics() {
        percentile(&[1.0], 101.0);
    }
}
