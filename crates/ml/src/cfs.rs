//! Correlation-based Feature Selection (Hall, 1999).
//!
//! §3.2.3 selects the representative patterns by running "the
//! correlation-based feature selection from \[8\]" over the candidate-
//! distance feature space. CFS scores a feature subset `S` with the merit
//!
//! ```text
//! merit(S) = k·r̄cf / sqrt(k + k(k-1)·r̄ff)
//! ```
//!
//! where `r̄cf` is the mean feature–class correlation and `r̄ff` the mean
//! feature–feature inter-correlation, both measured as **symmetric
//! uncertainty** over equal-frequency-discretized features (the WEKA
//! convention). Search is best-first with a fixed non-improvement budget.

use std::collections::BTreeSet;

/// Knobs for [`cfs_select`].
#[derive(Clone, Copy, Debug)]
pub struct CfsParams {
    /// Equal-frequency bins used to discretize continuous features.
    pub bins: usize,
    /// Best-first search stops after this many consecutive expansions
    /// without merit improvement (WEKA default: 5).
    pub stale_limit: usize,
}

impl Default for CfsParams {
    fn default() -> Self {
        Self {
            bins: 10,
            stale_limit: 5,
        }
    }
}

/// Equal-frequency discretization of one feature column into at most
/// `bins` levels. Ties collapse bins, so fewer distinct levels can result.
fn discretize_column(values: &[f64], bins: usize) -> Vec<usize> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut levels = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        levels[i] = rank * bins / n;
    }
    // Equal values must share a level: walk in sorted order and merge.
    for w in order.windows(2) {
        if values[w[0]] == values[w[1]] {
            levels[w[1]] = levels[w[0]];
        }
    }
    levels
}

fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.log2()
        })
        .sum()
}

/// Symmetric uncertainty between two discrete variables:
/// `SU = 2·(H(X)+H(Y)-H(X,Y)) / (H(X)+H(Y))`, in `[0, 1]`.
fn symmetric_uncertainty(x: &[usize], y: &[usize]) -> f64 {
    let n = x.len();
    let kx = x.iter().max().map_or(0, |m| m + 1);
    let ky = y.iter().max().map_or(0, |m| m + 1);
    let mut cx = vec![0usize; kx];
    let mut cy = vec![0usize; ky];
    let mut cxy = vec![0usize; kx * ky];
    for (&a, &b) in x.iter().zip(y) {
        cx[a] += 1;
        cy[b] += 1;
        cxy[a * ky + b] += 1;
    }
    let hx = entropy(&cx, n);
    let hy = entropy(&cy, n);
    let hxy = entropy(&cxy, n);
    if hx + hy == 0.0 {
        return 0.0;
    }
    (2.0 * (hx + hy - hxy) / (hx + hy)).clamp(0.0, 1.0)
}

fn merit(subset: &BTreeSet<usize>, fc: &[f64], ff: &[Vec<f64>]) -> f64 {
    let k = subset.len() as f64;
    if k == 0.0 {
        return 0.0;
    }
    let sum_fc: f64 = subset.iter().map(|&i| fc[i]).sum();
    let mut sum_ff = 0.0;
    let items: Vec<usize> = subset.iter().copied().collect();
    for (a, &i) in items.iter().enumerate() {
        for &j in &items[a + 1..] {
            sum_ff += ff[i][j];
        }
    }
    let r_cf = sum_fc / k;
    let r_ff = if k > 1.0 {
        sum_ff / (k * (k - 1.0) / 2.0)
    } else {
        0.0
    };
    let denom = (k + k * (k - 1.0) * r_ff).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        k * r_cf / denom
    }
}

/// Selects a feature subset with CFS + best-first search. Returns sorted
/// feature indices; never empty when at least one feature carries any
/// class information (falls back to the single best feature).
///
/// `rows` is samples × features.
///
/// # Panics
/// Panics on empty/ragged input or label length mismatch.
pub fn cfs_select(rows: &[Vec<f64>], labels: &[usize], params: &CfsParams) -> Vec<usize> {
    rpm_obs::metrics().ml_cfs_runs.inc();
    assert!(!rows.is_empty(), "CFS on empty data");
    assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
    let dim = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == dim),
        "rows must share one dimension"
    );
    if dim == 0 {
        return Vec::new();
    }

    // Compact labels to dense levels for entropy computation.
    let mut label_levels: Vec<usize> = labels.to_vec();
    {
        let mut uniq: Vec<usize> = labels.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        for l in &mut label_levels {
            *l = uniq.binary_search(l).unwrap();
        }
    }

    // Discretize every feature column once.
    let columns: Vec<Vec<usize>> = (0..dim)
        .map(|j| {
            let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            discretize_column(&col, params.bins)
        })
        .collect();

    // Correlation caches.
    let fc: Vec<f64> = columns
        .iter()
        .map(|c| symmetric_uncertainty(c, &label_levels))
        .collect();
    let mut ff = vec![vec![0.0; dim]; dim];
    for i in 0..dim {
        for j in (i + 1)..dim {
            let su = symmetric_uncertainty(&columns[i], &columns[j]);
            ff[i][j] = su;
            ff[j][i] = su;
        }
    }

    // Best-first search from the empty set.
    let mut open: Vec<(f64, BTreeSet<usize>)> = vec![(0.0, BTreeSet::new())];
    let mut best: (f64, BTreeSet<usize>) = (0.0, BTreeSet::new());
    let mut visited: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
    let mut stale = 0usize;
    while let Some(pos) = open
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .map(|(i, _)| i)
    {
        let (m, subset) = open.swap_remove(pos);
        if m > best.0 + 1e-12 {
            best = (m, subset.clone());
            stale = 0;
        } else {
            stale += 1;
            if stale > params.stale_limit {
                break;
            }
        }
        for j in 0..dim {
            if subset.contains(&j) {
                continue;
            }
            let mut child = subset.clone();
            child.insert(j);
            if visited.insert(child.clone()) {
                let cm = merit(&child, &fc, &ff);
                open.push((cm, child));
            }
        }
        if open.is_empty() {
            break;
        }
    }

    if best.1.is_empty() {
        // Degenerate data: fall back to the single most class-correlated
        // feature (if any information exists at all).
        let mut best_j = 0;
        for j in 1..dim {
            if fc[j] > fc[best_j] {
                best_j = j;
            }
        }
        return vec![best_j];
    }
    best.1.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 is the label; features 1,2 are noise.
    fn informative_plus_noise() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let l = i % 2;
            let noise1 = ((i * 7919) % 13) as f64;
            let noise2 = ((i * 104729) % 17) as f64;
            rows.push(vec![l as f64 * 10.0, noise1, noise2]);
            labels.push(l);
        }
        (rows, labels)
    }

    #[test]
    fn selects_the_informative_feature() {
        let (rows, labels) = informative_plus_noise();
        let sel = cfs_select(&rows, &labels, &CfsParams::default());
        assert!(sel.contains(&0), "feature 0 is the label: {sel:?}");
    }

    #[test]
    fn drops_redundant_copies() {
        // Features 0 and 1 are identical; CFS should not keep both.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let l = i % 2;
            let v = l as f64 * 5.0 + ((i / 2) % 3) as f64 * 0.01;
            rows.push(vec![v, v, ((i * 31) % 7) as f64]);
            labels.push(l);
        }
        let sel = cfs_select(&rows, &labels, &CfsParams::default());
        assert!(
            !(sel.contains(&0) && sel.contains(&1)),
            "redundant pair kept: {sel:?}"
        );
        assert!(sel.contains(&0) || sel.contains(&1));
    }

    #[test]
    fn complementary_features_are_both_kept() {
        // XOR-style: neither feature alone decides, together they do —
        // merit still favors the pair over noise.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let a = (i / 2) % 2;
            let b = i % 2;
            // Label correlates with each feature individually too (an AND
            // pattern, which CFS's linear merit can see).
            let l = a & b;
            rows.push(vec![a as f64, b as f64, ((i * 13) % 11) as f64]);
            labels.push(l);
        }
        let sel = cfs_select(&rows, &labels, &CfsParams::default());
        assert!(sel.contains(&0) && sel.contains(&1), "{sel:?}");
        assert!(!sel.contains(&2), "noise kept: {sel:?}");
    }

    #[test]
    fn pure_noise_returns_single_fallback() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![((i * 7) % 5) as f64, ((i * 11) % 3) as f64])
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let sel = cfs_select(&rows, &labels, &CfsParams::default());
        assert!(!sel.is_empty());
        assert!(sel.len() <= 2);
    }

    #[test]
    fn zero_features_returns_empty() {
        let rows = vec![vec![], vec![]];
        let labels = vec![0, 1];
        assert!(cfs_select(&rows, &labels, &CfsParams::default()).is_empty());
    }

    #[test]
    fn su_of_identical_variables_is_one() {
        let x = vec![0, 1, 2, 0, 1, 2, 0, 1];
        assert!((symmetric_uncertainty(&x, &x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn su_of_independent_variables_is_low() {
        let x: Vec<usize> = (0..64).map(|i| i % 2).collect();
        let y: Vec<usize> = (0..64).map(|i| (i / 2) % 2).collect();
        assert!(symmetric_uncertainty(&x, &y) < 0.05);
    }

    #[test]
    fn su_is_symmetric() {
        let x: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let y: Vec<usize> = (0..30).map(|i| (i * i) % 4).collect();
        assert!((symmetric_uncertainty(&x, &y) - symmetric_uncertainty(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn discretize_handles_constant_column() {
        let levels = discretize_column(&[3.0; 10], 4);
        assert!(levels.iter().all(|&l| l == levels[0]));
    }

    #[test]
    fn discretize_equal_frequency() {
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let levels = discretize_column(&vals, 4);
        // 12 points, 4 bins -> 3 per bin, monotone with the values.
        for w in levels.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*levels.iter().max().unwrap(), 3);
        for b in 0..4 {
            assert_eq!(levels.iter().filter(|&&l| l == b).count(), 3);
        }
    }

    #[test]
    fn discretize_ties_share_levels() {
        let vals = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let levels = discretize_column(&vals, 3);
        assert!(levels[..4].iter().all(|&l| l == levels[0]));
        assert!(levels[4..].iter().all(|&l| l == levels[4]));
        assert_ne!(levels[0], levels[4]);
    }
}
