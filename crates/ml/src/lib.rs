//! # rpm-ml — machine-learning substrates for RPM
//!
//! Everything the paper's training/evaluation loop needs beyond the time
//! series machinery itself, implemented from scratch:
//!
//! * [`svm`] — linear SVM trained by dual coordinate descent, one-vs-rest
//!   multiclass (the classifier of §3.1; the paper used WEKA's SMO),
//! * [`logistic`] — L2-regularized logistic regression (the "works with
//!   any classifier" ablation, and a building block of the Learning
//!   Shapelets baseline),
//! * [`kernel_svm`] — RBF/linear kernel SVM via simplified SMO,
//! * [`knn`] — k-nearest-neighbor over feature vectors,
//! * [`cfs`] — Hall's correlation-based feature selection with best-first
//!   search (§3.2.3's `FSalg`),
//! * [`metrics`] — confusion matrix, error rate, per-class F-measure
//!   (Algorithm 3's objective),
//! * [`cv`] — stratified k-fold cross-validation index generation,
//! * [`stats`] — the Wilcoxon signed-rank test used in §5.2 to compare
//!   classifiers across datasets.

pub mod cfs;
pub mod cv;
pub mod kernel_svm;
pub mod knn;
pub mod logistic;
pub mod metrics;
pub mod stats;
pub mod svm;

pub use cfs::{cfs_select, CfsParams};
pub use cv::{shuffled_stratified_split, stratified_folds};
pub use kernel_svm::{Kernel, KernelSvm, KernelSvmParams};
pub use knn::Knn;
pub use logistic::{Logistic, LogisticParams};
pub use metrics::{confusion_matrix, error_rate, macro_f1, per_class_f1, ConfusionMatrix};
pub use stats::{normal_cdf, wilcoxon_signed_rank, WilcoxonResult};
pub use svm::{LinearSvm, SvmExport, SvmParams};
