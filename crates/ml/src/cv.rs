//! Stratified cross-validation splits.
//!
//! Algorithm 3 validates each SAX parameter combination with five-fold
//! cross-validation on a held-out slice of the training data, repeated over
//! five random train/validate splits. Both index generators live here.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Produces `k` stratified folds as index sets: each fold holds roughly
/// `1/k` of every class. Folds are disjoint and cover `0..labels.len()`.
///
/// # Panics
/// Panics when `k == 0` or `k > labels.len()`.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    rpm_obs::metrics().ml_cv_splits.add(k as u64);
    assert!(k >= 1, "need at least one fold");
    assert!(k <= labels.len(), "more folds than samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &l) in labels.iter().enumerate() {
        by_class.entry(l).or_default().push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (_, mut members) in by_class {
        members.shuffle(&mut rng);
        for (j, idx) in members.into_iter().enumerate() {
            folds[j % k].push(idx);
        }
    }
    for f in &mut folds {
        f.sort_unstable();
    }
    folds
}

/// One random stratified `(train, validate)` index split where train
/// receives `train_fraction` of each class (at least one sample per class
/// in train when the class is non-empty).
pub fn shuffled_stratified_split(
    labels: &[usize],
    train_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    rpm_obs::metrics().ml_cv_splits.inc();
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must lie in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &l) in labels.iter().enumerate() {
        by_class.entry(l).or_default().push(i);
    }
    let mut train = Vec::new();
    let mut validate = Vec::new();
    for (_, mut members) in by_class {
        members.shuffle(&mut rng);
        let n = members.len();
        let k = (((n as f64) * train_fraction).round() as usize).clamp(1, n);
        train.extend_from_slice(&members[..k]);
        validate.extend_from_slice(&members[k..]);
    }
    train.sort_unstable();
    validate.sort_unstable();
    (train, validate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 10 of class 0, 5 of class 1.
        let mut l = vec![0; 10];
        l.extend(vec![1; 5]);
        l
    }

    #[test]
    fn folds_partition_the_indices() {
        let l = labels();
        let folds = stratified_folds(&l, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        let l = labels();
        let folds = stratified_folds(&l, 5, 2);
        for f in &folds {
            let c0 = f.iter().filter(|&&i| l[i] == 0).count();
            let c1 = f.iter().filter(|&&i| l[i] == 1).count();
            assert_eq!(c0, 2, "class 0 spreads 2 per fold");
            assert_eq!(c1, 1, "class 1 spreads 1 per fold");
        }
    }

    #[test]
    fn folds_deterministic_per_seed_and_vary_across_seeds() {
        let l = labels();
        assert_eq!(stratified_folds(&l, 3, 7), stratified_folds(&l, 3, 7));
        let a = stratified_folds(&l, 3, 7);
        let b = stratified_folds(&l, 3, 8);
        assert_ne!(a, b, "different seeds should shuffle differently");
    }

    #[test]
    fn split_covers_everything_once() {
        let l = labels();
        let (tr, va) = shuffled_stratified_split(&l, 0.6, 3);
        let mut all = tr.clone();
        all.extend(&va);
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
        // 60% of 10 = 6; 60% of 5 = 3.
        assert_eq!(tr.iter().filter(|&&i| l[i] == 0).count(), 6);
        assert_eq!(tr.iter().filter(|&&i| l[i] == 1).count(), 3);
    }

    #[test]
    fn split_keeps_at_least_one_per_class_in_train() {
        let l = vec![0, 0, 0, 1];
        let (tr, _) = shuffled_stratified_split(&l, 0.1, 5);
        assert!(tr.iter().any(|&i| l[i] == 1));
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        stratified_folds(&[0, 1], 3, 0);
    }
}
