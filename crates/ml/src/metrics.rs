//! Classification metrics.
//!
//! Algorithm 3 scores a SAX parameter combination by the per-class
//! F-measure from five-fold cross-validation; the experimental section
//! reports error rates. Both come from the confusion matrix here.

use std::collections::BTreeMap;

/// Confusion matrix over an explicit label set.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfusionMatrix {
    /// Ascending label set covering both actual and predicted labels.
    pub labels: Vec<usize>,
    /// `counts[a][p]` = samples of actual label index `a` predicted as
    /// label index `p`.
    pub counts: Vec<Vec<usize>>,
}

/// Builds the confusion matrix from parallel actual/predicted slices.
///
/// # Panics
/// Panics when the slices differ in length or are empty.
pub fn confusion_matrix(actual: &[usize], predicted: &[usize]) -> ConfusionMatrix {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "actual/predicted length mismatch"
    );
    assert!(!actual.is_empty(), "cannot score zero predictions");
    let mut idx: BTreeMap<usize, usize> = BTreeMap::new();
    for &l in actual.iter().chain(predicted) {
        let next = idx.len();
        idx.entry(l).or_insert(next);
    }
    // BTreeMap iteration is sorted; rebuild dense indices in label order.
    let labels: Vec<usize> = idx.keys().copied().collect();
    let pos: BTreeMap<usize, usize> = labels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let k = labels.len();
    let mut counts = vec![vec![0usize; k]; k];
    for (&a, &p) in actual.iter().zip(predicted) {
        counts[pos[&a]][pos[&p]] += 1;
    }
    ConfusionMatrix { labels, counts }
}

impl ConfusionMatrix {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        correct as f64 / total as f64
    }

    /// Precision for the label at index `i` (1.0 when nothing was
    /// predicted as that label, matching the conservative convention the
    /// F-measure search needs to avoid rewarding empty predictions).
    pub fn precision(&self, i: usize) -> f64 {
        let tp = self.counts[i][i];
        let predicted: usize = (0..self.labels.len()).map(|a| self.counts[a][i]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for the label at index `i` (0.0 when the class is absent).
    pub fn recall(&self, i: usize) -> f64 {
        let tp = self.counts[i][i];
        let actual: usize = self.counts[i].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 for the label at index `i`.
    pub fn f1(&self, i: usize) -> f64 {
        let p = self.precision(i);
        let r = self.recall(i);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Fraction of mispredicted samples.
pub fn error_rate(actual: &[usize], predicted: &[usize]) -> f64 {
    1.0 - confusion_matrix(actual, predicted).accuracy()
}

/// Per-class F1 as a `label -> score` map.
pub fn per_class_f1(actual: &[usize], predicted: &[usize]) -> BTreeMap<usize, f64> {
    let cm = confusion_matrix(actual, predicted);
    cm.labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, cm.f1(i)))
        .collect()
}

/// Unweighted mean of the per-class F1 scores.
pub fn macro_f1(actual: &[usize], predicted: &[usize]) -> f64 {
    let scores = per_class_f1(actual, predicted);
    scores.values().sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [0, 1, 2, 1, 0];
        let cm = confusion_matrix(&y, &y);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(error_rate(&y, &y), 0.0);
        assert_eq!(macro_f1(&y, &y), 1.0);
    }

    #[test]
    fn all_wrong() {
        let actual = [0, 0, 1, 1];
        let pred = [1, 1, 0, 0];
        assert_eq!(error_rate(&actual, &pred), 1.0);
        assert_eq!(macro_f1(&actual, &pred), 0.0);
    }

    #[test]
    fn known_confusion_counts() {
        let actual = [0, 0, 0, 1, 1, 2];
        let pred = [0, 0, 1, 1, 1, 0];
        let cm = confusion_matrix(&actual, &pred);
        assert_eq!(cm.labels, vec![0, 1, 2]);
        assert_eq!(cm.counts[0], vec![2, 1, 0]);
        assert_eq!(cm.counts[1], vec![0, 2, 0]);
        assert_eq!(cm.counts[2], vec![1, 0, 0]);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        // class 0: precision 2/3, recall 2/3 -> F1 2/3.
        assert!((cm.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        // class 2: never predicted -> recall 0, F1 0.
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn labels_only_in_predictions_are_included() {
        let actual = [0, 0];
        let pred = [0, 5];
        let cm = confusion_matrix(&actual, &pred);
        assert_eq!(cm.labels, vec![0, 5]);
        assert_eq!(cm.recall(1), 0.0, "label 5 has no actual samples");
    }

    #[test]
    fn per_class_map_keys_are_labels() {
        let actual = [3, 3, 7];
        let pred = [3, 7, 7];
        let f = per_class_f1(&actual, &pred);
        assert_eq!(f.keys().copied().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn binary_f1_hand_computed() {
        // TP=3 FP=1 FN=2 for class 1.
        let actual = [1, 1, 1, 1, 1, 0, 0, 0];
        let pred = [1, 1, 1, 0, 0, 1, 0, 0];
        let f = per_class_f1(&actual, &pred);
        let p = 3.0 / 4.0;
        let r = 3.0 / 5.0;
        assert!((f[&1] - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        confusion_matrix(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "zero predictions")]
    fn empty_panics() {
        confusion_matrix(&[], &[]);
    }
}
