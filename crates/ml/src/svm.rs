//! Linear SVM via dual coordinate descent.
//!
//! The classifier of the paper's §3.1: after transforming time series into
//! the representative-pattern distance space, a linear SVM separates the
//! classes (Fig. 6 shows the transformed data is typically linearly
//! separable). We train the L1-loss L2-regularized dual with the
//! coordinate-descent method of Hsieh et al. (ICML 2008) — the same family
//! of solver LIBLINEAR uses — and lift to multiclass with one-vs-rest.
//!
//! Features are standardized internally (mean 0 / sd 1, computed on the
//! training split) so the regularization constant behaves uniformly across
//! datasets; the fitted scaler is applied at prediction time.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`LinearSvm`].
#[derive(Clone, Copy, Debug)]
pub struct SvmParams {
    /// Soft-margin constant `C`.
    pub c: f64,
    /// Convergence tolerance on the projected gradient.
    pub eps: f64,
    /// Maximum outer iterations (full passes over the data).
    pub max_iter: usize,
    /// RNG seed for the coordinate permutation.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            eps: 1e-3,
            max_iter: 200,
            seed: 0x5eed,
        }
    }
}

#[derive(Clone, Debug)]
struct Scaler {
    mean: Vec<f64>,
    inv_sd: Vec<f64>,
}

impl Scaler {
    fn fit(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let n = rows.len().max(1) as f64;
        let mut mean = vec![0.0; dim];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for r in rows {
            for ((v, x), m) in var.iter_mut().zip(r).zip(&mean) {
                let d = x - m;
                *v += d * d;
            }
        }
        let inv_sd = var
            .into_iter()
            .map(|v| {
                let sd = (v / n).sqrt();
                if sd < 1e-12 {
                    0.0
                } else {
                    1.0 / sd
                }
            })
            .collect();
        Self { mean, inv_sd }
    }

    fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.inv_sd)
            .map(|((x, m), s)| (x - m) * s)
            .collect()
    }
}

/// Trained one-vs-rest linear SVM.
#[derive(Clone, Debug)]
pub struct LinearSvm {
    classes: Vec<usize>,
    /// One weight vector per class, each of length `dim + 1` (bias last).
    weights: Vec<Vec<f64>>,
    scaler: Scaler,
}

/// Plain-data snapshot of a trained [`LinearSvm`], for persistence.
#[derive(Clone, Debug, PartialEq)]
pub struct SvmExport {
    /// Class labels, ascending.
    pub classes: Vec<usize>,
    /// One weight row per class (`dim + 1` values, bias last).
    pub weights: Vec<Vec<f64>>,
    /// Feature means of the fitted standardizer.
    pub scaler_mean: Vec<f64>,
    /// Inverse standard deviations (0 marks a constant feature).
    pub scaler_inv_sd: Vec<f64>,
}

impl LinearSvm {
    /// Trains on `rows` (one feature vector per sample) and `labels`.
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths, ragged rows, or a single
    /// class (nothing to separate).
    pub fn train(rows: &[Vec<f64>], labels: &[usize], params: &SvmParams) -> Self {
        rpm_obs::metrics().ml_svm_trains.inc();
        assert!(!rows.is_empty(), "SVM training set is empty");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "SVM rows must share one dimension"
        );
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert!(classes.len() >= 2, "SVM needs at least two classes");

        let scaler = Scaler::fit(rows);
        // Standardize and append the bias feature.
        let x: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut v = scaler.apply(r);
                v.push(1.0);
                v
            })
            .collect();

        let weights = classes
            .iter()
            .map(|&cls| {
                let y: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == cls { 1.0 } else { -1.0 })
                    .collect();
                train_binary(&x, &y, params)
            })
            .collect();

        Self {
            classes,
            weights,
            scaler,
        }
    }

    /// Decision value per class, ordered like [`LinearSvm::classes`].
    pub fn decision_values(&self, row: &[f64]) -> Vec<f64> {
        let mut v = self.scaler.apply(row);
        v.push(1.0);
        self.weights
            .iter()
            .map(|w| w.iter().zip(&v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Predicted class label (argmax of the one-vs-rest decision values).
    pub fn predict(&self, row: &[f64]) -> usize {
        let d = self.decision_values(row);
        let mut best = 0;
        for i in 1..d.len() {
            if d[i] > d[best] {
                best = i;
            }
        }
        self.classes[best]
    }

    /// Predicts a batch of (borrowed) rows: `&[Vec<f64>]`, `&[&[f64]]`,
    /// or anything else that views as row slices.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r.as_ref())).collect()
    }

    /// The class labels the model knows, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Snapshots the trained model for persistence.
    pub fn export(&self) -> SvmExport {
        SvmExport {
            classes: self.classes.clone(),
            weights: self.weights.clone(),
            scaler_mean: self.scaler.mean.clone(),
            scaler_inv_sd: self.scaler.inv_sd.clone(),
        }
    }

    /// Rebuilds a model from a snapshot.
    ///
    /// # Panics
    /// Panics when the snapshot is internally inconsistent (weight rows vs
    /// classes, weight width vs scaler dimension).
    pub fn import(export: SvmExport) -> Self {
        assert_eq!(
            export.classes.len(),
            export.weights.len(),
            "one weight row per class"
        );
        assert_eq!(
            export.scaler_mean.len(),
            export.scaler_inv_sd.len(),
            "scaler vectors must agree"
        );
        for w in &export.weights {
            assert_eq!(
                w.len(),
                export.scaler_mean.len() + 1,
                "weight rows carry dim + 1 values (bias last)"
            );
        }
        Self {
            classes: export.classes,
            weights: export.weights,
            scaler: Scaler {
                mean: export.scaler_mean,
                inv_sd: export.scaler_inv_sd,
            },
        }
    }
}

/// Dual coordinate descent for binary L1-loss SVM. `x` already carries the
/// bias feature; `y` is ±1. Returns the primal weight vector.
fn train_binary(x: &[Vec<f64>], y: &[f64], params: &SvmParams) -> Vec<f64> {
    let n = x.len();
    let dim = x[0].len();
    let c = params.c;
    let q_diag: Vec<f64> = x
        .iter()
        .map(|xi| xi.iter().map(|v| v * v).sum::<f64>())
        .collect();
    let mut alpha = vec![0.0f64; n];
    let mut w = vec![0.0f64; dim];
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);

    for _ in 0..params.max_iter {
        order.shuffle(&mut rng);
        let mut max_pg: f64 = 0.0;
        for &i in &order {
            let xi = &x[i];
            let yi = y[i];
            // G = y_i * w.x_i - 1
            let g = yi * xi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() - 1.0;
            // Projected gradient respecting 0 <= alpha_i <= C.
            let pg = if alpha[i] <= 0.0 {
                g.min(0.0)
            } else if alpha[i] >= c {
                g.max(0.0)
            } else {
                g
            };
            max_pg = max_pg.max(pg.abs());
            if pg.abs() > 1e-12 && q_diag[i] > 0.0 {
                let old = alpha[i];
                alpha[i] = (alpha[i] - g / q_diag[i]).clamp(0.0, c);
                let delta = (alpha[i] - old) * yi;
                for (wj, xj) in w.iter_mut().zip(xi) {
                    *wj += delta * xj;
                }
            }
        }
        if max_pg < params.eps {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, jitter: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.7;
                vec![cx + jitter * a.sin(), cy + jitter * a.cos()]
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rows = blob(0.0, 0.0, 20, 0.3);
        rows.extend(blob(5.0, 5.0, 20, 0.3));
        let labels: Vec<usize> = (0..40).map(|i| if i < 20 { 0 } else { 1 }).collect();
        let m = LinearSvm::train(&rows, &labels, &SvmParams::default());
        for (r, &l) in rows.iter().zip(&labels) {
            assert_eq!(m.predict(r), l);
        }
        assert_eq!(m.predict(&[0.1, -0.1]), 0);
        assert_eq!(m.predict(&[4.8, 5.3]), 1);
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut rows = blob(0.0, 0.0, 15, 0.2);
        rows.extend(blob(6.0, 0.0, 15, 0.2));
        rows.extend(blob(3.0, 6.0, 15, 0.2));
        let labels: Vec<usize> = (0..45).map(|i| i / 15).collect();
        let m = LinearSvm::train(&rows, &labels, &SvmParams::default());
        assert_eq!(m.classes(), &[0, 1, 2]);
        let preds = m.predict_batch(&rows);
        let errors = preds.iter().zip(&labels).filter(|(p, l)| p != l).count();
        assert_eq!(errors, 0, "training error on separable blobs");
    }

    #[test]
    fn noncontiguous_labels_are_preserved() {
        let mut rows = blob(0.0, 0.0, 10, 0.2);
        rows.extend(blob(8.0, 8.0, 10, 0.2));
        let labels: Vec<usize> = (0..20).map(|i| if i < 10 { 3 } else { 11 }).collect();
        let m = LinearSvm::train(&rows, &labels, &SvmParams::default());
        assert_eq!(m.classes(), &[3, 11]);
        assert_eq!(m.predict(&[0.0, 0.0]), 3);
        assert_eq!(m.predict(&[8.0, 8.0]), 11);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rows = blob(0.0, 0.0, 12, 0.4);
        rows.extend(blob(3.0, 3.0, 12, 0.4));
        let labels: Vec<usize> = (0..24).map(|i| (i >= 12) as usize).collect();
        let p = SvmParams::default();
        let m1 = LinearSvm::train(&rows, &labels, &p);
        let m2 = LinearSvm::train(&rows, &labels, &p);
        assert_eq!(
            m1.decision_values(&[1.0, 2.0]),
            m2.decision_values(&[1.0, 2.0])
        );
    }

    #[test]
    fn scale_invariance_through_standardization() {
        // Same geometry at wildly different feature scales must classify
        // identically thanks to the internal scaler.
        let rows_small = vec![
            vec![0.0, 0.0],
            vec![0.001, 0.0],
            vec![1.0, 0.0],
            vec![1.001, 0.0],
        ];
        let rows_big: Vec<Vec<f64>> = rows_small.iter().map(|r| vec![r[0] * 1e6, r[1]]).collect();
        let labels = vec![0, 0, 1, 1];
        let p = SvmParams::default();
        let ms = LinearSvm::train(&rows_small, &labels, &p);
        let mb = LinearSvm::train(&rows_big, &labels, &p);
        assert_eq!(ms.predict(&[0.0005, 0.0]), 0);
        assert_eq!(mb.predict(&[500.0, 0.0]), 0);
        assert_eq!(ms.predict(&[1.0005, 0.0]), 1);
        assert_eq!(mb.predict(&[1_000_500.0, 0.0]), 1);
    }

    #[test]
    fn constant_feature_is_harmless() {
        let rows = vec![
            vec![0.0, 7.0],
            vec![0.1, 7.0],
            vec![5.0, 7.0],
            vec![5.1, 7.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let m = LinearSvm::train(&rows, &labels, &SvmParams::default());
        assert_eq!(m.predict(&[0.05, 7.0]), 0);
        assert_eq!(m.predict(&[5.05, 7.0]), 1);
    }

    #[test]
    fn decision_values_align_with_classes() {
        let rows = vec![vec![0.0], vec![0.1], vec![4.0], vec![4.1]];
        let labels = vec![0, 0, 1, 1];
        let m = LinearSvm::train(&rows, &labels, &SvmParams::default());
        let d = m.decision_values(&[4.05]);
        assert_eq!(d.len(), 2);
        assert!(d[1] > d[0], "class-1 decision value should dominate: {d:?}");
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_panics() {
        LinearSvm::train(&[vec![1.0], vec![2.0]], &[0, 0], &SvmParams::default());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        LinearSvm::train(&[], &[], &SvmParams::default());
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn ragged_rows_panic() {
        LinearSvm::train(&[vec![1.0], vec![1.0, 2.0]], &[0, 1], &SvmParams::default());
    }
}
