//! k-nearest-neighbor classification over feature vectors.
//!
//! §3.1 claims the RPM feature space "can work with any classifier"; this
//! kNN backs that ablation alongside [`crate::svm::LinearSvm`] and
//! [`crate::logistic::Logistic`]. Distance is Euclidean over the feature
//! vectors; ties in the vote break toward the nearer neighbor set.

/// Trained (lazy) kNN model.
#[derive(Clone, Debug)]
pub struct Knn {
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    k: usize,
}

impl Knn {
    /// Stores the training rows.
    ///
    /// # Panics
    /// Panics on empty/mismatched input, `k == 0`, or ragged rows.
    pub fn train(rows: &[Vec<f64>], labels: &[usize], k: usize) -> Self {
        assert!(!rows.is_empty(), "kNN needs training data");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(k >= 1, "k must be positive");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "rows must share one dimension"
        );
        Self {
            rows: rows.to_vec(),
            labels: labels.to_vec(),
            k: k.min(rows.len()),
        }
    }

    /// Predicted label by majority vote among the k nearest training rows;
    /// a split vote goes to the class whose voting members sit closer in
    /// total.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &l)| {
                let d: f64 = r
                    .iter()
                    .zip(row)
                    .map(|(a, b)| {
                        let v = a - b;
                        v * v
                    })
                    .sum();
                (d, l)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let neighbors = &dists[..self.k];
        // (count, -total_distance) per class; majority wins, proximity
        // breaks ties.
        let mut votes: std::collections::BTreeMap<usize, (usize, f64)> = Default::default();
        for &(d, l) in neighbors {
            let e = votes.entry(l).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += d;
        }
        votes
            .into_iter()
            .max_by(|a, b| {
                (a.1 .0, -a.1 .1)
                    .partial_cmp(&(b.1 .0, -b.1 .1))
                    .expect("distances are finite")
            })
            .map(|(l, _)| l)
            .expect("k >= 1")
    }

    /// Predicts a batch of (borrowed) rows.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r.as_ref())).collect()
    }

    /// The configured neighborhood size (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            labels.push(0);
            rows.push(vec![5.0 + 0.01 * i as f64, 5.0]);
            labels.push(1);
        }
        (rows, labels)
    }

    #[test]
    fn one_nn_classifies_blobs() {
        let (rows, labels) = blobs();
        let m = Knn::train(&rows, &labels, 1);
        assert_eq!(m.predict(&[0.1, 0.2]), 0);
        assert_eq!(m.predict(&[4.9, 5.1]), 1);
    }

    #[test]
    fn larger_k_smooths_outliers() {
        // One mislabeled point inside blob 0: k=1 near it errs, k=5 does
        // not.
        let (mut rows, mut labels) = blobs();
        rows.push(vec![0.05, 0.05]);
        labels.push(1); // mislabeled
        let near_outlier = [0.06, 0.06];
        let k1 = Knn::train(&rows, &labels, 1);
        assert_eq!(k1.predict(&near_outlier), 1, "1-NN trusts the outlier");
        let k5 = Knn::train(&rows, &labels, 5);
        assert_eq!(k5.predict(&near_outlier), 0, "5-NN out-votes it");
    }

    #[test]
    fn k_clamps_to_training_size() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![0, 1];
        let m = Knn::train(&rows, &labels, 99);
        assert_eq!(m.k(), 2);
        // The proximity tie-break still separates.
        assert_eq!(m.predict(&[0.1]), 0);
        assert_eq!(m.predict(&[0.9]), 1);
    }

    #[test]
    fn tie_breaks_toward_the_closer_class() {
        // k=2 with one neighbor per class: the nearer class must win.
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![0, 1];
        let m = Knn::train(&rows, &labels, 2);
        assert_eq!(m.predict(&[0.2]), 0);
        assert_eq!(m.predict(&[0.8]), 1);
    }

    #[test]
    fn batch_matches_single() {
        let (rows, labels) = blobs();
        let m = Knn::train(&rows, &labels, 3);
        let queries = vec![vec![0.2, 0.1], vec![5.2, 4.8]];
        let batch = m.predict_batch(&queries);
        assert_eq!(batch, vec![m.predict(&queries[0]), m.predict(&queries[1])]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        Knn::train(&[vec![0.0]], &[0], 0);
    }

    #[test]
    #[should_panic(expected = "needs training data")]
    fn empty_training_panics() {
        Knn::train(&[], &[], 1);
    }
}
