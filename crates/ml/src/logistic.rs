//! L2-regularized multinomial logistic regression.
//!
//! §3.1 notes the RPM feature space "can work with any classifier"; this
//! model backs that ablation (SVM vs logistic vs 1-NN on the transformed
//! features, see `rpm-bench`) and provides the differentiable loss the
//! Learning Shapelets baseline optimizes jointly with its shapelets.

/// Hyper-parameters for [`Logistic`].
#[derive(Clone, Copy, Debug)]
pub struct LogisticParams {
    /// Learning rate for full-batch gradient descent.
    pub learning_rate: f64,
    /// L2 regularization strength (applied to weights, not biases).
    pub lambda: f64,
    /// Gradient-descent iterations.
    pub max_iter: usize,
}

impl Default for LogisticParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            lambda: 1e-3,
            max_iter: 500,
        }
    }
}

/// Trained multinomial logistic model.
#[derive(Clone, Debug)]
pub struct Logistic {
    classes: Vec<usize>,
    /// `classes.len()` rows of `dim + 1` weights (bias last).
    weights: Vec<Vec<f64>>,
}

/// Numerically stable softmax in place.
fn softmax(z: &mut [f64]) {
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

impl Logistic {
    /// Trains with full-batch gradient descent.
    ///
    /// # Panics
    /// Panics on empty/mismatched/ragged input or fewer than two classes.
    pub fn train(rows: &[Vec<f64>], labels: &[usize], params: &LogisticParams) -> Self {
        assert!(!rows.is_empty(), "logistic training set is empty");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "rows must share one dimension"
        );
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert!(classes.len() >= 2, "logistic needs at least two classes");
        let k = classes.len();
        let class_index: std::collections::HashMap<usize, usize> =
            classes.iter().enumerate().map(|(i, &c)| (c, i)).collect();

        let n = rows.len() as f64;
        let mut weights = vec![vec![0.0; dim + 1]; k];
        let mut probs = vec![0.0; k];
        let mut grad = vec![vec![0.0; dim + 1]; k];
        for _ in 0..params.max_iter {
            for g in &mut grad {
                g.fill(0.0);
            }
            for (row, &label) in rows.iter().zip(labels) {
                for (c, w) in weights.iter().enumerate() {
                    probs[c] = w[..dim].iter().zip(row).map(|(a, b)| a * b).sum::<f64>() + w[dim];
                }
                softmax(&mut probs);
                let yi = class_index[&label];
                for c in 0..k {
                    let err = probs[c] - if c == yi { 1.0 } else { 0.0 };
                    for (g, x) in grad[c][..dim].iter_mut().zip(row) {
                        *g += err * x;
                    }
                    grad[c][dim] += err;
                }
            }
            for c in 0..k {
                for j in 0..dim {
                    let reg = params.lambda * weights[c][j];
                    weights[c][j] -= params.learning_rate * (grad[c][j] / n + reg);
                }
                weights[c][dim] -= params.learning_rate * grad[c][dim] / n;
            }
        }
        Self { classes, weights }
    }

    /// Class probabilities, ordered like [`Logistic::classes`].
    pub fn probabilities(&self, row: &[f64]) -> Vec<f64> {
        let dim = row.len();
        let mut z: Vec<f64> = self
            .weights
            .iter()
            .map(|w| w[..dim].iter().zip(row).map(|(a, b)| a * b).sum::<f64>() + w[dim])
            .collect();
        softmax(&mut z);
        z
    }

    /// Predicted class label.
    pub fn predict(&self, row: &[f64]) -> usize {
        let p = self.probabilities(row);
        let mut best = 0;
        for i in 1..p.len() {
            if p[i] > p[best] {
                best = i;
            }
        }
        self.classes[best]
    }

    /// The class labels the model knows, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_1d_classes() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                vec![if i < 10 {
                    i as f64 * 0.1
                } else {
                    5.0 + i as f64 * 0.1
                }]
            })
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| (i >= 10) as usize).collect();
        let m = Logistic::train(&rows, &labels, &LogisticParams::default());
        assert_eq!(m.predict(&[0.2]), 0);
        assert_eq!(m.predict(&[6.5]), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![5.0, 5.0]];
        let labels = vec![0, 1, 2];
        let m = Logistic::train(&rows, &labels, &LogisticParams::default());
        let p = m.probabilities(&[2.0, 2.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn three_class_blobs() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, (cx, cy)) in [(0.0, 0.0), (6.0, 0.0), (3.0, 6.0)].iter().enumerate() {
            for i in 0..12 {
                let a = i as f64;
                rows.push(vec![cx + 0.2 * a.sin(), cy + 0.2 * a.cos()]);
                labels.push(c);
            }
        }
        let m = Logistic::train(&rows, &labels, &LogisticParams::default());
        let err = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| m.predict(r) != l)
            .count();
        assert_eq!(err, 0);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut z = vec![1000.0, 1001.0, 999.0];
        softmax(&mut z);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(z[1] > z[0] && z[0] > z[2]);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let rows = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
        let labels = vec![0, 0, 1, 1];
        let loose = Logistic::train(
            &rows,
            &labels,
            &LogisticParams {
                lambda: 0.0,
                ..Default::default()
            },
        );
        let tight = Logistic::train(
            &rows,
            &labels,
            &LogisticParams {
                lambda: 10.0,
                ..Default::default()
            },
        );
        let norm =
            |m: &Logistic| -> f64 { m.weights.iter().flat_map(|w| &w[..1]).map(|v| v * v).sum() };
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_panics() {
        Logistic::train(&[vec![1.0]], &[0], &LogisticParams::default());
    }
}
