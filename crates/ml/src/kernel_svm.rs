//! Kernel SVM trained with (simplified) Sequential Minimal Optimization.
//!
//! The paper's classifier is "SVM \[4\]" with the transformed features; the
//! transformed space is usually linearly separable (Fig. 6), so
//! [`crate::svm::LinearSvm`] is the default. This kernel machine completes
//! the substrate for the cases where it is not — and for the ablation
//! comparing classifiers on the RPM features. One-vs-rest multiclass,
//! internal feature standardization, deterministic given the seed.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Kernel functions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Kernel {
    /// Plain dot product.
    Linear,
    /// Gaussian RBF `exp(-gamma ||x - y||²)`.
    Rbf {
        /// Bandwidth parameter.
        gamma: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Hyper-parameters for [`KernelSvm`].
#[derive(Clone, Copy, Debug)]
pub struct KernelSvmParams {
    /// Kernel function.
    pub kernel: Kernel,
    /// Soft-margin constant.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Consecutive full passes without an update before stopping.
    pub max_stable_passes: usize,
    /// Hard cap on full passes.
    pub max_passes: usize,
    /// RNG seed (partner selection).
    pub seed: u64,
}

impl Default for KernelSvmParams {
    fn default() -> Self {
        Self {
            kernel: Kernel::Rbf { gamma: 0.5 },
            c: 1.0,
            tol: 1e-3,
            max_stable_passes: 5,
            max_passes: 200,
            seed: 0x50f7,
        }
    }
}

#[derive(Clone, Debug)]
struct BinaryModel {
    alphas_y: Vec<f64>, // alpha_i * y_i for support vectors
    support: Vec<Vec<f64>>,
    bias: f64,
}

/// Trained one-vs-rest kernel SVM.
#[derive(Clone, Debug)]
pub struct KernelSvm {
    classes: Vec<usize>,
    models: Vec<BinaryModel>,
    kernel: Kernel,
    mean: Vec<f64>,
    inv_sd: Vec<f64>,
}

fn standardize_fit(rows: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let dim = rows[0].len();
    let n = rows.len() as f64;
    let mut mean = vec![0.0; dim];
    for r in rows {
        for (m, v) in mean.iter_mut().zip(r) {
            *m += v / n;
        }
    }
    let mut var = vec![0.0; dim];
    for r in rows {
        for ((s, v), m) in var.iter_mut().zip(r).zip(&mean) {
            *s += (v - m) * (v - m) / n;
        }
    }
    let inv_sd = var
        .iter()
        .map(|v| {
            let s = v.sqrt();
            if s < 1e-12 {
                0.0
            } else {
                1.0 / s
            }
        })
        .collect();
    (mean, inv_sd)
}

fn apply_scaler(row: &[f64], mean: &[f64], inv_sd: &[f64]) -> Vec<f64> {
    row.iter()
        .zip(mean.iter().zip(inv_sd))
        .map(|(v, (m, is))| (v - m) * is)
        .collect()
}

/// Simplified SMO on ±1 labels over pre-standardized rows.
fn train_binary(x: &[Vec<f64>], y: &[f64], params: &KernelSvmParams, gram: &[f64]) -> BinaryModel {
    let n = x.len();
    let c = params.c;
    let mut alpha = vec![0.0f64; n];
    let mut b = 0.0f64;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let k = |i: usize, j: usize| gram[i * n + j];
    let f = |alpha: &[f64], b: f64, i: usize| -> f64 {
        let mut s = b;
        for j in 0..n {
            if alpha[j] != 0.0 {
                s += alpha[j] * y[j] * k(j, i);
            }
        }
        s
    };

    let mut stable = 0usize;
    let mut passes = 0usize;
    while stable < params.max_stable_passes && passes < params.max_passes {
        passes += 1;
        let mut changed = 0usize;
        for i in 0..n {
            let e_i = f(&alpha, b, i) - y[i];
            let violates = (y[i] * e_i < -params.tol && alpha[i] < c)
                || (y[i] * e_i > params.tol && alpha[i] > 0.0);
            if !violates {
                continue;
            }
            // Random distinct partner.
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let e_j = f(&alpha, b, j) - y[j];
            let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if y[i] != y[j] {
                ((a_j_old - a_i_old).max(0.0), (c + a_j_old - a_i_old).min(c))
            } else {
                ((a_i_old + a_j_old - c).max(0.0), (a_i_old + a_j_old).min(c))
            };
            if lo >= hi {
                continue;
            }
            let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
            if eta >= 0.0 {
                continue;
            }
            let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
            a_j = a_j.clamp(lo, hi);
            if (a_j - a_j_old).abs() < 1e-6 {
                continue;
            }
            let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
            alpha[i] = a_i;
            alpha[j] = a_j;
            let b1 = b - e_i - y[i] * (a_i - a_i_old) * k(i, i) - y[j] * (a_j - a_j_old) * k(i, j);
            let b2 = b - e_j - y[i] * (a_i - a_i_old) * k(i, j) - y[j] * (a_j - a_j_old) * k(j, j);
            b = if (0.0..c).contains(&a_i) {
                b1
            } else if (0.0..c).contains(&a_j) {
                b2
            } else {
                (b1 + b2) / 2.0
            };
            changed += 1;
        }
        if changed == 0 {
            stable += 1;
        } else {
            stable = 0;
        }
    }

    // Keep only support vectors.
    let mut alphas_y = Vec::new();
    let mut support = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-9 {
            alphas_y.push(alpha[i] * y[i]);
            support.push(x[i].clone());
        }
    }
    BinaryModel {
        alphas_y,
        support,
        bias: b,
    }
}

impl KernelSvm {
    /// Trains one-vs-rest.
    ///
    /// # Panics
    /// Panics on empty/mismatched/ragged input or fewer than two classes.
    pub fn train(rows: &[Vec<f64>], labels: &[usize], params: &KernelSvmParams) -> Self {
        assert!(!rows.is_empty(), "kernel SVM training set is empty");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "rows must share one dimension"
        );
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert!(classes.len() >= 2, "kernel SVM needs at least two classes");

        let (mean, inv_sd) = standardize_fit(rows);
        let x: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| apply_scaler(r, &mean, &inv_sd))
            .collect();

        // Precompute the Gram matrix once; shared by all binary problems.
        let n = x.len();
        let mut gram = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = params.kernel.eval(&x[i], &x[j]);
                gram[i * n + j] = v;
                gram[j * n + i] = v;
            }
        }

        let models = classes
            .iter()
            .map(|&cls| {
                let y: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == cls { 1.0 } else { -1.0 })
                    .collect();
                train_binary(&x, &y, params, &gram)
            })
            .collect();
        Self {
            classes,
            models,
            kernel: params.kernel,
            mean,
            inv_sd,
        }
    }

    /// Decision value per class, ordered like [`KernelSvm::classes`].
    pub fn decision_values(&self, row: &[f64]) -> Vec<f64> {
        let z = apply_scaler(row, &self.mean, &self.inv_sd);
        self.models
            .iter()
            .map(|m| {
                m.bias
                    + m.alphas_y
                        .iter()
                        .zip(&m.support)
                        .map(|(ay, sv)| ay * self.kernel.eval(sv, &z))
                        .sum::<f64>()
            })
            .collect()
    }

    /// Predicted class label.
    pub fn predict(&self, row: &[f64]) -> usize {
        let d = self.decision_values(row);
        let mut best = 0;
        for i in 1..d.len() {
            if d[i] > d[best] {
                best = i;
            }
        }
        self.classes[best]
    }

    /// Predicts a batch of (borrowed) rows.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r.as_ref())).collect()
    }

    /// The class labels the model knows, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Total number of retained support vectors across the binary models.
    pub fn n_support_vectors(&self) -> usize {
        self.models.iter().map(|m| m.support.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Four jittered clusters in XOR layout: not linearly separable.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (cx, cy, l) in [
            (0.0, 0.0, 0usize),
            (4.0, 4.0, 0),
            (0.0, 4.0, 1),
            (4.0, 0.0, 1),
        ] {
            for i in 0..8 {
                let a = i as f64 * 0.8;
                rows.push(vec![cx + 0.25 * a.sin(), cy + 0.25 * a.cos()]);
                labels.push(l);
            }
        }
        (rows, labels)
    }

    #[test]
    fn rbf_solves_xor() {
        let (rows, labels) = xor_data();
        let m = KernelSvm::train(&rows, &labels, &KernelSvmParams::default());
        let errs = m
            .predict_batch(&rows)
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p != l)
            .count();
        assert_eq!(errs, 0, "RBF must fit XOR exactly");
        // Held-out points near each cluster center.
        assert_eq!(m.predict(&[0.2, 0.1]), 0);
        assert_eq!(m.predict(&[3.9, 3.8]), 0);
        assert_eq!(m.predict(&[0.1, 3.9]), 1);
        assert_eq!(m.predict(&[3.8, 0.2]), 1);
    }

    #[test]
    fn linear_kernel_on_separable_data() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                vec![if i < 10 {
                    i as f64 * 0.1
                } else {
                    5.0 + i as f64 * 0.1
                }]
            })
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| (i >= 10) as usize).collect();
        let params = KernelSvmParams {
            kernel: Kernel::Linear,
            ..Default::default()
        };
        let m = KernelSvm::train(&rows, &labels, &params);
        assert_eq!(m.predict(&[0.3]), 0);
        assert_eq!(m.predict(&[6.0]), 1);
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, (cx, cy)) in [(0.0f64, 0.0f64), (6.0, 0.0), (3.0, 6.0)]
            .iter()
            .enumerate()
        {
            for i in 0..10 {
                let a = i as f64;
                rows.push(vec![cx + 0.2 * a.sin(), cy + 0.2 * a.cos()]);
                labels.push(c);
            }
        }
        let m = KernelSvm::train(&rows, &labels, &KernelSvmParams::default());
        assert_eq!(m.classes(), &[0, 1, 2]);
        let errs = m
            .predict_batch(&rows)
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p != l)
            .count();
        assert_eq!(errs, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = xor_data();
        let p = KernelSvmParams::default();
        let m1 = KernelSvm::train(&rows, &labels, &p);
        let m2 = KernelSvm::train(&rows, &labels, &p);
        assert_eq!(
            m1.decision_values(&[1.0, 2.0]),
            m2.decision_values(&[1.0, 2.0])
        );
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let (rows, labels) = xor_data();
        let m = KernelSvm::train(&rows, &labels, &KernelSvmParams::default());
        assert!(m.n_support_vectors() > 0);
        assert!(m.n_support_vectors() <= rows.len() * m.classes().len());
    }

    #[test]
    fn kernel_eval_basics() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert!((rbf.eval(&[1.0], &[1.0]) - 1.0).abs() < 1e-12);
        assert!(rbf.eval(&[0.0], &[10.0]) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_panics() {
        KernelSvm::train(&[vec![1.0]], &[0], &KernelSvmParams::default());
    }
}
