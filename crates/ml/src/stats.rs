//! The Wilcoxon signed-rank test (§5.2's significance machinery).
//!
//! The paper compares RPM against each rival across the 40-dataset suite
//! with a two-sided Wilcoxon signed-rank test (reporting e.g. p = 0.1834
//! vs Learning Shapelets and p ≈ 0.01 vs Fast Shapelets). We use the
//! normal approximation with tie correction and a continuity correction —
//! accurate for n ≳ 10, which every comparison here satisfies.

/// Outcome of a Wilcoxon signed-rank test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (`a > b`).
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero differences actually ranked.
    pub n_used: usize,
    /// Two-sided p-value (normal approximation; 1.0 when no non-zero
    /// differences exist).
    pub p_value: f64,
    /// Standard normal deviate of the statistic.
    pub z: f64,
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    // erf through the 7.1.26 rational approximation.
    let t = x / std::f64::consts::SQRT_2;
    let sign = if t < 0.0 { -1.0 } else { 1.0 };
    let t_abs = t.abs();
    let u = 1.0 / (1.0 + 0.3275911 * t_abs);
    let poly = u
        * (0.254829592
            + u * (-0.284496736 + u * (1.421413741 + u * (-1.453152027 + u * 1.061405429))));
    let erf = sign * (1.0 - poly * (-t_abs * t_abs).exp());
    0.5 * (1.0 + erf)
}

/// Two-sided paired Wilcoxon signed-rank test of `a` vs `b`.
///
/// Zero differences are dropped (the classic Wilcoxon convention); ties
/// among |differences| receive average ranks, and the variance gets the
/// standard tie correction.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired test needs equal lengths");
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            w_plus: 0.0,
            w_minus: 0.0,
            n_used: 0,
            p_value: 1.0,
            z: 0.0,
        };
    }
    diffs.sort_by(|x, y| x.abs().total_cmp(&y.abs()));

    // Average ranks with tie groups; accumulate the tie correction term.
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }

    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }

    let n_f = n as f64;
    let mean = n_f * (n_f + 1.0) / 4.0;
    let var = n_f * (n_f + 1.0) * (2.0 * n_f + 1.0) / 24.0 - tie_term / 48.0;
    let w = w_plus.min(w_minus);
    let z = if var <= 0.0 {
        0.0
    } else {
        // Continuity correction toward the mean.
        (w - mean + 0.5) / var.sqrt()
    };
    let p = (2.0 * normal_cdf(z)).min(1.0);
    WilcoxonResult {
        w_plus,
        w_minus,
        n_used: n,
        p_value: p,
        z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.0250).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn identical_samples_give_p_one() {
        let a = [1.0, 2.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n_used, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn strongly_shifted_pairs_are_significant() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 5.0).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.w_plus, 0.0);
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn symmetric_differences_are_not_significant() {
        // Differences alternate ±1: W+ ≈ W-.
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, x)| if i % 2 == 0 { x + 1.0 } else { x - 1.0 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
        assert!((r.w_plus - r.w_minus).abs() < 1e-9);
    }

    #[test]
    fn test_is_symmetric_in_arguments() {
        let a = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 1.5, 3.0, 9.0, 0.5];
        let b = [2.0, 3.0, 2.5, 6.0, 5.5, 8.0, 1.0, 4.0, 8.5, 1.5];
        let r1 = wilcoxon_signed_rank(&a, &b);
        let r2 = wilcoxon_signed_rank(&b, &a);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert_eq!(r1.w_plus, r2.w_minus);
    }

    #[test]
    fn rank_sums_total_correctly() {
        // W+ + W- must equal n(n+1)/2 when no zero diffs exist.
        let a = [3.0, 1.0, 4.0, 1.5, 9.0];
        let b = [2.0, 2.0, 3.0, 2.5, 4.0];
        let r = wilcoxon_signed_rank(&a, &b);
        let n = r.n_used as f64;
        assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_differences_are_dropped() {
        let a = [1.0, 2.0, 3.0, 10.0];
        let b = [1.0, 2.0, 3.0, 0.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.n_used, 1);
    }

    #[test]
    fn ties_get_average_ranks() {
        // |diffs| = [1,1,2]: ranks 1.5, 1.5, 3.
        let a = [1.0, 0.0, 5.0];
        let b = [0.0, 1.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!((r.w_plus - 4.5).abs() < 1e-9, "{r:?}"); // +1 (1.5) and +2 (3)
        assert!((r.w_minus - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
