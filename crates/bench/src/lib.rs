//! # rpm-bench — the experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper's
//! evaluation (§5–§6). The `repro` binary drives it:
//!
//! ```text
//! cargo run -p rpm-bench --release --bin repro -- table1   # error rates
//! cargo run -p rpm-bench --release --bin repro -- table2   # runtimes
//! cargo run -p rpm-bench --release --bin repro -- all      # everything
//! ```
//!
//! [`evaluate_dataset`] trains and tests all six classifiers on one suite
//! dataset, timing training+classification wall clock the way Table 2
//! does; [`run_suite`] maps that across the whole suite.

pub mod harness;

pub use harness::{
    evaluate_dataset, results_to_json, run_suite, write_bench_json, ClassifierKind, DatasetResult,
    MethodOutcome, SuiteOptions,
};
