//! Suite evaluation: train/test all six classifiers on generated datasets.

use rpm_baselines::{
    Classifier, FastShapelets, FastShapeletsParams, LearningShapelets, LearningShapeletsParams,
    OneNnDtw, OneNnEuclidean, SaxVsm, SaxVsmParams,
};
use rpm_core::{ParamSearch, RpmClassifier, RpmConfig};
use rpm_data::{generate, DatasetSpec};
use rpm_ml::error_rate;
use rpm_ts::Dataset;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The six classifiers of Tables 1–2, in the paper's column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClassifierKind {
    /// 1-NN Euclidean.
    NnEd,
    /// 1-NN DTW, best warping window.
    NnDtwB,
    /// SAX-VSM.
    SaxVsm,
    /// Fast Shapelets.
    Fs,
    /// Learning Shapelets.
    Ls,
    /// Representative Pattern Mining (this paper).
    Rpm,
}

impl ClassifierKind {
    /// All six, in table order.
    pub const ALL: [ClassifierKind; 6] = [
        ClassifierKind::NnEd,
        ClassifierKind::NnDtwB,
        ClassifierKind::SaxVsm,
        ClassifierKind::Fs,
        ClassifierKind::Ls,
        ClassifierKind::Rpm,
    ];

    /// Table-header name.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::NnEd => "NN-ED",
            ClassifierKind::NnDtwB => "NN-DTWB",
            ClassifierKind::SaxVsm => "SAX-VSM",
            ClassifierKind::Fs => "FS",
            ClassifierKind::Ls => "LS",
            ClassifierKind::Rpm => "RPM",
        }
    }
}

/// One classifier's outcome on one dataset.
#[derive(Clone, Copy, Debug)]
pub struct MethodOutcome {
    /// Test error rate.
    pub error: f64,
    /// Training + classification wall time (Table 2's metric).
    pub time: Duration,
}

/// All classifiers' outcomes on one dataset.
#[derive(Clone, Debug)]
pub struct DatasetResult {
    /// Dataset name.
    pub name: String,
    /// Outcomes in [`ClassifierKind::ALL`] order.
    pub outcomes: Vec<(ClassifierKind, MethodOutcome)>,
}

impl DatasetResult {
    /// Outcome of one method.
    pub fn get(&self, kind: ClassifierKind) -> MethodOutcome {
        self.outcomes
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, o)| *o)
            .expect("all kinds evaluated")
    }
}

/// Suite-run options.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Master seed for dataset generation.
    pub seed: u64,
    /// Which classifiers to run.
    pub methods: Vec<ClassifierKind>,
    /// RPM configuration (defaults to shared DIRECT selection).
    pub rpm: RpmConfig,
    /// Learning Shapelets iterations for the quick protocol (the knob
    /// that dominates LS cost).
    pub ls_max_iter: usize,
    /// Run LS with its published hyperparameter-selection protocol
    /// (validation grid + long final training) — what Table 2 charges LS
    /// for. Disable for quick smoke runs.
    pub ls_full_protocol: bool,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self {
            seed: 2016,
            methods: ClassifierKind::ALL.to_vec(),
            rpm: RpmConfig {
                param_search: ParamSearch::Direct {
                    max_evals: 12,
                    per_class: false,
                },
                n_validation_splits: 2,
                ..RpmConfig::default()
            },
            ls_max_iter: 120,
            ls_full_protocol: true,
        }
    }
}

/// Times one method end to end: build (train) + batch classification,
/// through the shared [`Classifier`] trait object — RPM and the five
/// baselines all go through this single code path.
fn time_run(
    name: &'static str,
    build: impl FnOnce() -> Box<dyn Classifier>,
    test: &Dataset,
) -> MethodOutcome {
    let _span = rpm_obs::span!(name);
    let start = Instant::now();
    let model = build();
    let preds = model.predict_batch(&test.series);
    let time = start.elapsed();
    MethodOutcome {
        error: error_rate(&test.labels, &preds),
        time,
    }
}

/// Trains and tests the requested classifiers on one suite dataset,
/// with optional test-set corruption (used by the §6.1 rotation study).
pub fn evaluate_dataset_with(
    spec: &DatasetSpec,
    options: &SuiteOptions,
    corrupt_test: impl Fn(&Dataset) -> Dataset,
) -> DatasetResult {
    let (train, test_clean) = generate(spec, options.seed);
    let test = corrupt_test(&test_clean);
    let mut outcomes = Vec::new();
    for &kind in &options.methods {
        let outcome = match kind {
            ClassifierKind::NnEd => time_run(
                kind.name(),
                || Box::new(OneNnEuclidean::train(&train)),
                &test,
            ),
            ClassifierKind::NnDtwB => {
                time_run(kind.name(), || Box::new(OneNnDtw::train(&train)), &test)
            }
            ClassifierKind::SaxVsm => time_run(
                kind.name(),
                || {
                    Box::new(SaxVsm::train(
                        &train,
                        &SaxVsmParams::for_length(spec.length),
                    ))
                },
                &test,
            ),
            ClassifierKind::Fs => time_run(
                kind.name(),
                || {
                    Box::new(FastShapelets::train(
                        &train,
                        &FastShapeletsParams::default(),
                    ))
                },
                &test,
            ),
            ClassifierKind::Ls => time_run(
                kind.name(),
                || {
                    if options.ls_full_protocol {
                        Box::new(LearningShapelets::train_with_selection(
                            &train,
                            options.seed,
                        ))
                    } else {
                        Box::new(LearningShapelets::train(
                            &train,
                            &LearningShapeletsParams {
                                max_iter: options.ls_max_iter,
                                ..Default::default()
                            },
                        ))
                    }
                },
                &test,
            ),
            ClassifierKind::Rpm => time_run(
                kind.name(),
                || {
                    Box::new(
                        RpmClassifier::train(&train, &options.rpm)
                            .expect("RPM training failed on suite dataset"),
                    )
                },
                &test,
            ),
        };
        outcomes.push((kind, outcome));
    }
    DatasetResult {
        name: spec.name.to_string(),
        outcomes,
    }
}

/// Trains and tests on the clean test set.
pub fn evaluate_dataset(spec: &DatasetSpec, options: &SuiteOptions) -> DatasetResult {
    evaluate_dataset_with(spec, options, Clone::clone)
}

/// Runs the whole suite, logging one progress line per dataset through
/// the structured logger (visible when observability is enabled).
pub fn run_suite(specs: &[DatasetSpec], options: &SuiteOptions) -> Vec<DatasetResult> {
    specs
        .iter()
        .map(|spec| {
            rpm_obs::info!("suite", "{} ...", spec.name);
            let r = evaluate_dataset(spec, options);
            let rpm_err = r
                .outcomes
                .iter()
                .find(|(k, _)| *k == ClassifierKind::Rpm)
                .map(|(_, o)| o.error);
            rpm_obs::info!("suite", "{} done (RPM err {rpm_err:?})", spec.name);
            r
        })
        .collect()
}

/// Renders suite results as a machine-readable JSON document — the
/// stable companion to BENCH.md's hand-edited tables, meant for CI
/// trend tracking and `jq`-style post-processing. Schema:
///
/// ```json
/// {
///   "schema": 1,
///   "datasets": [
///     {"name": "CBF",
///      "methods": [{"method": "NN-ED", "error": 0.02, "seconds": 0.011}]}
///   ]
/// }
/// ```
///
/// Method entries appear in evaluation order; errors are test error
/// rates in `[0, 1]`, `seconds` is train+classify wall time (Table 2's
/// metric). Hand-rolled writer — dataset/method names come from the
/// static registry, so only `"` and `\` need escaping.
pub fn results_to_json(results: &[DatasetResult]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"schema\": 1,\n  \"datasets\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"methods\": [\n",
            esc(&r.name)
        ));
        for (j, (kind, o)) in r.outcomes.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"method\": \"{}\", \"error\": {:.6}, \"seconds\": {:.6}}}{}\n",
                esc(kind.name()),
                o.error,
                o.time.as_secs_f64(),
                if j + 1 < r.outcomes.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`results_to_json`] to the first free `BENCH_<n>.json` in
/// `dir` (starting at 1), mirroring the repo's numbered `BENCH.md`
/// convention: existing result files are never overwritten, so a CI
/// artifact step can archive every run. Returns the path written.
pub fn write_bench_json(dir: &Path, results: &[DatasetResult]) -> std::io::Result<PathBuf> {
    let json = results_to_json(results);
    for n in 1..10_000u32 {
        let path = dir.join(format!("BENCH_{n}.json"));
        if path.exists() {
            continue;
        }
        std::fs::write(&path, &json)?;
        return Ok(path);
    }
    Err(std::io::Error::other("no free BENCH_<n>.json slot"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_sax::SaxConfig;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "CBF",
            classes: 3,
            train: 12,
            test: 15,
            length: 128,
        }
    }

    fn quick_options() -> SuiteOptions {
        SuiteOptions {
            methods: vec![ClassifierKind::NnEd, ClassifierKind::Rpm],
            rpm: RpmConfig::fixed(SaxConfig::new(32, 4, 4)),
            ls_max_iter: 10,
            ls_full_protocol: false,
            ..Default::default()
        }
    }

    #[test]
    fn evaluates_requested_methods_only() {
        let r = evaluate_dataset(&tiny_spec(), &quick_options());
        assert_eq!(r.outcomes.len(), 2);
        assert_eq!(r.name, "CBF");
        for (_, o) in &r.outcomes {
            assert!((0.0..=1.0).contains(&o.error));
            assert!(o.time > Duration::ZERO);
        }
    }

    #[test]
    fn corruption_hook_is_applied() {
        // Corrupting the test set to constant series must hurt accuracy.
        let clean = evaluate_dataset(&tiny_spec(), &quick_options());
        let mangled = evaluate_dataset_with(&tiny_spec(), &quick_options(), |t| {
            let mut t2 = t.clone();
            for s in &mut t2.series {
                s.fill(0.0);
            }
            t2
        });
        let ed_clean = clean.get(ClassifierKind::NnEd).error;
        let ed_mangled = mangled.get(ClassifierKind::NnEd).error;
        assert!(ed_mangled >= ed_clean, "{ed_mangled} vs {ed_clean}");
    }

    #[test]
    fn get_panics_on_missing_method() {
        let r = evaluate_dataset(&tiny_spec(), &quick_options());
        let caught = std::panic::catch_unwind(|| r.get(ClassifierKind::Ls));
        assert!(caught.is_err());
    }

    fn fake_results() -> Vec<DatasetResult> {
        vec![
            DatasetResult {
                name: "CBF".into(),
                outcomes: vec![
                    (
                        ClassifierKind::NnEd,
                        MethodOutcome {
                            error: 0.02,
                            time: Duration::from_millis(11),
                        },
                    ),
                    (
                        ClassifierKind::Rpm,
                        MethodOutcome {
                            error: 0.0,
                            time: Duration::from_millis(250),
                        },
                    ),
                ],
            },
            DatasetResult {
                name: "Coffee".into(),
                outcomes: vec![(
                    ClassifierKind::Rpm,
                    MethodOutcome {
                        error: 0.125,
                        time: Duration::from_secs(1),
                    },
                )],
            },
        ]
    }

    #[test]
    fn json_export_lists_every_method() {
        let json = results_to_json(&fake_results());
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"name\": \"CBF\""));
        assert!(json.contains("\"name\": \"Coffee\""));
        assert!(json.contains("\"method\": \"NN-ED\""));
        assert!(json.contains("\"error\": 0.125000"));
        assert!(json.contains("\"seconds\": 1.000000"));
        // Balanced brackets — cheap well-formedness check without a parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = json.matches(open).count();
            let c = json.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn bench_json_picks_next_free_slot() {
        let dir = std::env::temp_dir().join(format!("rpm-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let results = fake_results();
        let first = write_bench_json(&dir, &results).unwrap();
        assert!(first.ends_with("BENCH_1.json"));
        let second = write_bench_json(&dir, &results).unwrap();
        assert!(second.ends_with("BENCH_2.json"));
        // Existing files are never overwritten.
        let kept = std::fs::read_to_string(&first).unwrap();
        assert_eq!(kept, results_to_json(&results));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
