//! Reproducible source of `BENCH_3.json`: the batched pattern-set
//! cascade vs the per-pattern rolling loop, with the prune-tier
//! counters that explain the speedups.
//!
//! The scenarios mirror the `match_kernel` group in
//! `benches/kernels.rs` — set scans over one series, and the
//! classification-path composite (a 32-series batch transformed into
//! the K-pattern feature space). Each timing is the minimum over
//! `--reps` runs, which is robust against background load on shared
//! machines; counters come from one counted batched pass.
//!
//! ```text
//! cargo run --release -p rpm-bench --bin cascade_stats -- --json BENCH_3.json
//! ```

use rpm_core::{prepare_patterns, transform_set_plans_engine, Engine, MatchKernel};
use rpm_ts::{BatchedMatch, MatchPlan, ScanCounters, ScanStats};
use std::fmt::Write as _;
use std::time::Instant;

fn synthetic_series(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.max(1);
    let mut acc = 0.0f64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            acc += ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            acc
        })
        .collect()
}

fn min_time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    scenario: String,
    k: usize,
    m: usize,
    n: usize,
    rolling_ms: f64,
    batched_ms: f64,
    stats: ScanStats,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.rolling_ms / self.batched_ms
    }

    fn json(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\"scenario\":\"{}\",\"k\":{},\"m\":{},\"n\":{},\
             \"rolling_ms\":{:.4},\"batched_ms\":{:.4},\"speedup\":{:.2},\
             \"windows\":{},\"pruned_first_last\":{},\"pruned_envelope\":{},\
             \"pruned_sax\":{},\"abandoned\":{},\"stats_builds\":{},\
             \"prune_rate\":{:.4}}}",
            self.scenario,
            self.k,
            self.m,
            self.n,
            self.rolling_ms,
            self.batched_ms,
            self.speedup(),
            s.windows,
            s.pruned_first_last,
            s.pruned_envelope,
            s.pruned_sax,
            s.abandoned,
            s.stats_builds,
            s.prune_rate(),
        )
    }
}

/// One K-pattern set scanned over one series (patterns are staggered
/// subsequences of that series, as mined patterns are of their class).
fn set_scan(k: usize, m: usize, n: usize, reps: usize) -> Row {
    let series = synthetic_series(n, 7);
    let patterns: Vec<Vec<f64>> = (0..k)
        .map(|i| {
            let at = (i * (n - m)) / k;
            series[at..at + m].to_vec()
        })
        .collect();
    let rolling: Vec<MatchPlan> = prepare_patterns(&patterns, MatchKernel::Rolling);
    let set = BatchedMatch::new(&prepare_patterns(&patterns, MatchKernel::Batched));
    let rolling_ms = min_time_ms(reps, || {
        for p in &rolling {
            std::hint::black_box(p.best_match(&series, true));
        }
    });
    let batched_ms = min_time_ms(reps, || {
        std::hint::black_box(set.match_all(&series, true, None));
    });
    let counters = ScanCounters::new();
    set.match_all(&series, true, Some(&counters));
    Row {
        scenario: format!("set_scan/k{k}_m{m}_n{n}"),
        k,
        m,
        n,
        rolling_ms,
        batched_ms,
        stats: counters.snapshot(),
    }
}

/// The classification-path composite: a 32-series batch transformed
/// into the K-pattern feature space, every pattern embedded in every
/// series at shuffled offsets (patterns recur in their class — that is
/// what makes them patterns).
fn transform_composite(k: usize, n: usize, reps: usize) -> Row {
    const M: usize = 64;
    let master = synthetic_series(n, 97);
    let patterns: Vec<Vec<f64>> = (0..k)
        .map(|i| {
            let at = (i * (n - M)) / k;
            master[at..at + M].to_vec()
        })
        .collect();
    let batch: Vec<Vec<f64>> = (0..32)
        .map(|i| {
            let mut s = synthetic_series(n, 200 + i as u64);
            for j in 0..k {
                let p = &patterns[(j + i) % k];
                let at = j * (n / k) + (i % 3) * 17;
                s[at..at + p.len()].copy_from_slice(p);
            }
            s
        })
        .collect();
    let rolling_plans = prepare_patterns(&patterns, MatchKernel::Rolling);
    let batched_plans = prepare_patterns(&patterns, MatchKernel::Batched);
    let engine = Engine::serial();
    let rolling_ms = min_time_ms(reps, || {
        std::hint::black_box(
            transform_set_plans_engine(&batch, &rolling_plans, false, true, &engine).unwrap(),
        );
    });
    let batched_ms = min_time_ms(reps, || {
        std::hint::black_box(
            transform_set_plans_engine(&batch, &batched_plans, false, true, &engine).unwrap(),
        );
    });
    let counters = ScanCounters::new();
    rpm_core::transform_set_plans_engine_counted(
        &batch,
        &batched_plans,
        false,
        true,
        &engine,
        Some(&counters),
    )
    .unwrap();
    Row {
        scenario: format!("transform/k{k}_n{n}_s32"),
        k,
        m: M,
        n,
        rolling_ms,
        batched_ms,
        stats: counters.snapshot(),
    }
}

fn main() {
    let mut json_path = None;
    let mut reps = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let rows = vec![
        set_scan(8, 64, 2048, reps),
        set_scan(16, 64, 8192, reps),
        set_scan(16, 128, 8192, reps),
        transform_composite(16, 2048, reps),
        transform_composite(32, 4096, reps),
    ];

    println!(
        "{:<28} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "scenario", "rolling", "batched", "speedup", "t1%", "t2%", "aband%", "exact%"
    );
    for r in &rows {
        let s = &r.stats;
        let w = s.windows.max(1) as f64;
        let exact = s.windows - s.pruned_total() - s.abandoned;
        println!(
            "{:<28} {:>8.2}ms {:>8.2}ms {:>6.2}x {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%",
            r.scenario,
            r.rolling_ms,
            r.batched_ms,
            r.speedup(),
            100.0 * s.pruned_first_last as f64 / w,
            100.0 * s.pruned_envelope as f64 / w,
            100.0 * s.abandoned as f64 / w,
            100.0 * exact as f64 / w,
        );
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(out, "  {}{}", r.json(), sep);
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
