//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1    Table 1  : classification error rates, 6 classifiers
//! repro fig7      Figure 7 : pairwise error scatter + Wilcoxon p-values
//! repro table2    Table 2  : training+classification runtimes
//! repro fig8      Figure 8 : log-runtime scatter pairs
//! repro table3    Table 3/Fig. 9: τ percentile sweep (runtime & error)
//! repro table4    Table 4/Fig.10: rotated-test-set error rates
//!                 (--dropout [FRAC]: NaN dropout + interpolation instead)
//! repro fig2      Figure 2 : best representative patterns on CBF
//! repro fig3      Figure 3 : best representative patterns on Coffee
//! repro fig4      Figure 4 : grammar-rule occurrences (variable length)
//! repro fig56     Figures 5-6: ECGFiveDays patterns + 2-D feature space
//! repro alarm     §6.2    : medical-alarm case study (ABP)
//! repro ablation  DESIGN.md ablations (NR, medoid, search, classifier)
//! repro all       everything above (suite is evaluated once)
//! ```

use rpm_baselines::{OneNnDtw, OneNnEuclidean, SaxVsm, SaxVsmParams};
use rpm_bench::{
    harness::evaluate_dataset_with, run_suite, ClassifierKind, DatasetResult, SuiteOptions,
};
use rpm_core::{transform_set, ParamSearch, RpmClassifier, RpmConfig};
use rpm_data::{
    dropout_dataset, generate, interpolate_gaps, registry::spec_by_name, rotate_dataset, suite,
};
use rpm_grammar::infer;
use rpm_ml::{error_rate, wilcoxon_signed_rank};
use rpm_sax::{discretize, SaxConfig};
use rpm_ts::{Classifier, Dataset};
use std::collections::HashMap;
use std::time::Instant;

/// Worker count for parallel RPM training: the `RPM_THREADS` environment
/// variable if set, otherwise one per available CPU (results are
/// bit-identical at any thread count).
fn threads() -> usize {
    std::env::var("RPM_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Test error of any trained method, through the shared [`Classifier`]
/// trait object — the single evaluation path for all six methods.
fn eval_method(model: &dyn Classifier, test: &Dataset) -> f64 {
    let refs: Vec<&[f64]> = test.series.iter().map(Vec::as_slice).collect();
    error_rate(&test.labels, &model.predict_batch_refs(&refs))
}

fn main() {
    rpm_obs::init_env_default(rpm_obs::ObsLevel::Summary);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let mut cache = SuiteCache::default();
    match cmd {
        "table1" => table1(&mut cache),
        "fig7" => fig7(&mut cache),
        "table2" => table2(&mut cache),
        "fig8" => fig8(&mut cache),
        "table3" | "fig9" => table3(),
        "table4" | "fig10" => table4(dropout_flag(&args)),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig56" => fig56(),
        "alarm" => alarm(),
        "ablation" => ablation(),
        "extras" => extras(),
        "all" => {
            table1(&mut cache);
            fig7(&mut cache);
            table2(&mut cache);
            fig8(&mut cache);
            table3();
            table4(dropout_flag(&args));
            fig2();
            fig3();
            fig4();
            fig56();
            alarm();
            ablation();
            extras();
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the module docs for the list");
            std::process::exit(2);
        }
    }
    // Stage tree to stderr + optional JSONL report (RPM_LOG=...,json=PATH).
    rpm_obs::finish();
}

/// The Table 1/2 suite run is shared by four views; compute it once.
#[derive(Default)]
struct SuiteCache {
    results: Option<Vec<DatasetResult>>,
}

impl SuiteCache {
    fn results(&mut self) -> &[DatasetResult] {
        if self.results.is_none() {
            let mut options = SuiteOptions::default();
            options.rpm.n_threads = threads();
            let results = run_suite(&suite(), &options);
            // Machine-readable companion to the printed tables: next free
            // BENCH_<n>.json in the working directory (never overwrites).
            match rpm_bench::write_bench_json(std::path::Path::new("."), &results) {
                Ok(path) => eprintln!("suite results written to {}", path.display()),
                Err(e) => eprintln!("could not write bench JSON: {e}"),
            }
            self.results = Some(results);
        }
        self.results.as_ref().unwrap()
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

// ---------------------------------------------------------------- Table 1

fn table1(cache: &mut SuiteCache) {
    header("Table 1: classification error rates");
    let results = cache.results();
    print!("{:<18}", "Dataset");
    for k in ClassifierKind::ALL {
        print!("{:>9}", k.name());
    }
    println!();
    let mut wins: HashMap<ClassifierKind, usize> = HashMap::new();
    for r in results {
        print!("{:<18}", r.name);
        let best = r
            .outcomes
            .iter()
            .map(|(_, o)| o.error)
            .fold(f64::INFINITY, f64::min);
        for k in ClassifierKind::ALL {
            let e = r.get(k).error;
            print!("{e:>9.3}");
            if (e - best).abs() < 1e-12 {
                *wins.entry(k).or_insert(0) += 1;
            }
        }
        println!();
    }
    print!("{:<18}", "# best (w/ ties)");
    for k in ClassifierKind::ALL {
        print!("{:>9}", wins.get(&k).copied().unwrap_or(0));
    }
    println!();
}

// ---------------------------------------------------------------- Figure 7

fn fig7(cache: &mut SuiteCache) {
    header("Figure 7: pairwise error comparison vs RPM (+ Wilcoxon)");
    let results = cache.results();
    let rpm: Vec<f64> = results
        .iter()
        .map(|r| r.get(ClassifierKind::Rpm).error)
        .collect();
    for rival in [
        ClassifierKind::NnDtwB,
        ClassifierKind::SaxVsm,
        ClassifierKind::Fs,
        ClassifierKind::Ls,
    ] {
        let other: Vec<f64> = results.iter().map(|r| r.get(rival).error).collect();
        println!(
            "\n--- {} vs RPM (x = {}, y = RPM; below diagonal = RPM wins)",
            rival.name(),
            rival.name()
        );
        for (r, (o, p)) in results.iter().zip(other.iter().zip(&rpm)) {
            println!("  {:<18} {o:.3} {p:.3}", r.name);
        }
        let w = wilcoxon_signed_rank(&rpm, &other);
        let rpm_wins = other.iter().zip(&rpm).filter(|(o, p)| p < o).count();
        let rival_wins = other.iter().zip(&rpm).filter(|(o, p)| p > o).count();
        println!(
            "  Wilcoxon p = {:.4}  (RPM wins {rpm_wins}, {} wins {rival_wins}, ties {})",
            w.p_value,
            rival.name(),
            results.len() - rpm_wins - rival_wins,
        );
    }
}

// ---------------------------------------------------------------- Table 2

fn table2(cache: &mut SuiteCache) {
    header("Table 2: running time (train + classify, seconds)");
    let results = cache.results();
    let kinds = [ClassifierKind::Ls, ClassifierKind::Fs, ClassifierKind::Rpm];
    print!("{:<18}", "Dataset");
    for k in kinds {
        print!("{:>10}", k.name());
    }
    println!("{:>12}", "LS/RPM");
    let mut wins: HashMap<ClassifierKind, usize> = HashMap::new();
    let mut speedups = Vec::new();
    for r in results {
        print!("{:<18}", r.name);
        let best = kinds
            .iter()
            .map(|&k| r.get(k).time.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        for k in kinds {
            let t = r.get(k).time.as_secs_f64();
            print!("{t:>10.3}");
            if (t - best).abs() < 1e-12 {
                *wins.entry(k).or_insert(0) += 1;
            }
        }
        let speedup = r.get(ClassifierKind::Ls).time.as_secs_f64()
            / r.get(ClassifierKind::Rpm).time.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        println!("{speedup:>11.1}x");
    }
    print!("{:<18}", "# best (w/ ties)");
    for k in kinds {
        print!("{:>10}", wins.get(&k).copied().unwrap_or(0));
    }
    println!();
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("LS vs RPM speedup: average {avg:.1}x, max {max:.1}x");
}

// ---------------------------------------------------------------- Figure 8

fn fig8(cache: &mut SuiteCache) {
    header("Figure 8: runtime scatter, log10 seconds (x = rival, y = RPM)");
    let results = cache.results();
    for rival in [ClassifierKind::Ls, ClassifierKind::Fs] {
        println!("\n--- {} vs RPM", rival.name());
        for r in results {
            let x = r.get(rival).time.as_secs_f64().max(1e-6).log10();
            let y = r
                .get(ClassifierKind::Rpm)
                .time
                .as_secs_f64()
                .max(1e-6)
                .log10();
            println!("  {:<18} {x:>7.3} {y:>7.3}", r.name);
        }
    }
}

// ------------------------------------------------------- Table 3 / Figure 9

fn table3() {
    header("Table 3 / Figure 9: similarity threshold τ percentile sweep");
    let names = ["CBF", "GunPoint", "ECGFiveDays", "ItalyPowerDemand"];
    let percentiles = [10.0, 30.0, 50.0, 70.0, 90.0];
    println!(
        "{:<18}{:>10}{:>12}{:>12}",
        "Dataset", "tau pct", "time (s)", "error"
    );
    let mut base: HashMap<&str, (f64, f64)> = HashMap::new();
    for name in names {
        let spec = spec_by_name(name).expect("suite dataset");
        let (train, test) = generate(&spec, 2016);
        for &pct in &percentiles {
            let config = RpmConfig {
                tau_percentile: pct,
                param_search: ParamSearch::Direct {
                    max_evals: 8,
                    per_class: false,
                },
                n_validation_splits: 2,
                n_threads: threads(),
                ..RpmConfig::default()
            };
            let start = Instant::now();
            let model = RpmClassifier::train(&train, &config).expect("train");
            let err = eval_method(&model, &test);
            let secs = start.elapsed().as_secs_f64();
            println!("{name:<18}{pct:>10.0}{secs:>12.3}{err:>12.3}");
            if pct == 30.0 {
                base.insert(name, (secs, err));
            }
        }
    }
    println!("(the paper reports <2% average error change across the sweep)");
}

// ------------------------------------------------------ Table 4 / Figure 10

/// `--dropout [FRACTION]`: swap Table 4's rotation corruption for NaN
/// dropout + linear-interpolation repair. Bare `--dropout` uses 0.1.
fn dropout_flag(args: &[String]) -> Option<f64> {
    let at = args.iter().position(|a| a == "--dropout")?;
    Some(
        args.get(at + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.1),
    )
}

fn table4(dropout: Option<f64>) {
    match dropout {
        Some(frac) => header(&format!(
            "Table 4 variant: error rates with {:.0}% sensor dropout (repaired by interpolation)",
            frac * 100.0
        )),
        None => header("Table 4 / Figure 10: error rates on rotated test sets"),
    }
    let names = ["Coffee", "FaceFour", "GunPoint", "SwedishLeaf", "OSULeaf"];
    let methods = [
        ClassifierKind::NnEd,
        ClassifierKind::NnDtwB,
        ClassifierKind::SaxVsm,
        ClassifierKind::Ls,
        ClassifierKind::Rpm,
    ];
    print!("{:<14}", "Dataset");
    for k in methods {
        print!("{:>9}", k.name());
    }
    println!();
    let mut wins: HashMap<ClassifierKind, usize> = HashMap::new();
    for name in names {
        let spec = spec_by_name(name).expect("suite dataset");
        let options = SuiteOptions {
            methods: methods.to_vec(),
            rpm: RpmConfig {
                rotation_invariant: true,
                param_search: ParamSearch::Direct {
                    max_evals: 8,
                    per_class: false,
                },
                n_validation_splits: 2,
                n_threads: threads(),
                ..RpmConfig::default()
            },
            ..SuiteOptions::default()
        };
        let result = evaluate_dataset_with(&spec, &options, |test| match dropout {
            // Repair before classifying: distance kernels cannot digest
            // NaN, so the serving-side contract is dropout → interpolate.
            Some(frac) => interpolate_gaps(&dropout_dataset(test, frac, 99)),
            None => rotate_dataset(test, 99),
        });
        print!("{name:<14}");
        let best = result
            .outcomes
            .iter()
            .map(|(_, o)| o.error)
            .fold(f64::INFINITY, f64::min);
        for k in methods {
            let e = result.get(k).error;
            print!("{e:>9.3}");
            if (e - best).abs() < 1e-12 {
                *wins.entry(k).or_insert(0) += 1;
            }
        }
        println!();
    }
    print!("{:<14}", "# best");
    for k in methods {
        print!("{:>9}", wins.get(&k).copied().unwrap_or(0));
    }
    println!();
}

// ---------------------------------------------------------------- Figures

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn print_patterns(model: &RpmClassifier, train: &Dataset) {
    for class in train.classes() {
        let pats = model.patterns_for_class(class);
        println!("class {class}: {} representative pattern(s)", pats.len());
        for (i, p) in pats.iter().enumerate() {
            println!(
                "  #{i} len={} freq={} coverage={} {}",
                p.values.len(),
                p.frequency,
                p.coverage,
                sparkline(&p.values)
            );
        }
    }
}

fn train_for_figure(name: &str) -> (RpmClassifier, Dataset, Dataset) {
    let spec = spec_by_name(name).expect("suite dataset");
    let (train, test) = generate(&spec, 2016);
    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 8,
            per_class: false,
        },
        n_validation_splits: 2,
        n_threads: threads(),
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config).expect("train");
    (model, train, test)
}

fn fig2() {
    header("Figure 2: best representative patterns on CBF");
    let (model, train, test) = train_for_figure("CBF");
    print_patterns(&model, &train);
    println!("CBF test error: {:.3}", eval_method(&model, &test));
    println!("training cache: {}", model.cache_stats());
}

fn fig3() {
    header("Figure 3: best representative patterns on Coffee");
    let (model, train, test) = train_for_figure("Coffee");
    print_patterns(&model, &train);
    println!("Coffee test error: {:.3}", eval_method(&model, &test));
    println!("training cache: {}", model.cache_stats());
}

fn fig4() {
    header("Figure 4: variable-length grammar-rule occurrences (SwedishLeaf class 4)");
    let spec = spec_by_name("SwedishLeaf").expect("suite dataset");
    let (train, _) = generate(&spec, 2016);
    let view = &train.by_class()[4];
    // Discretize each member, concatenate with sentinels (the rpm-core
    // pipeline), and show the most frequent rule's occurrence spans.
    let sax = SaxConfig::new(24, 4, 4);
    let mut tokens = Vec::new();
    let mut origin = Vec::new();
    let mut interner: HashMap<String, u32> = HashMap::new();
    let mut sentinel = u32::MAX;
    for (inst, series) in view.members.iter().enumerate() {
        for w in discretize(series, &sax, true) {
            let next = interner.len() as u32;
            let t = *interner.entry(w.word.letters()).or_insert(next);
            tokens.push(t);
            origin.push(Some((inst, w.offset)));
        }
        if inst + 1 < view.members.len() {
            tokens.push(sentinel);
            origin.push(None);
            sentinel -= 1;
        }
    }
    let grammar = infer(&tokens);
    // Prefer the rule that best demonstrates the variable-length property:
    // most distinct occurrence lengths, then most occurrences.
    let best_rule = grammar
        .repeated_rules()
        .max_by_key(|(_, r)| {
            let mut lens: Vec<usize> = r.occurrences.iter().map(|s| s.len()).collect();
            lens.sort_unstable();
            lens.dedup();
            (lens.len(), r.occurrences.len())
        })
        .expect("a repeated rule exists");
    println!(
        "most frequent rule: {} occurrences, {} words",
        best_rule.1.occurrences.len(),
        best_rule.1.expansion.len()
    );
    println!(
        "{:<10}{:>10}{:>10}{:>10}",
        "instance", "start", "end", "length"
    );
    for span in &best_rule.1.occurrences {
        if let (Some((inst, start)), Some((last_inst, last_off))) =
            (origin[span.start], origin[span.end - 1])
        {
            if inst == last_inst {
                let end = (last_off + sax.window).min(view.members[inst].len());
                println!("{inst:<10}{start:>10}{end:>10}{:>10}", end - start);
            }
        }
    }
    println!("(lengths vary across occurrences — the paper's Fig. 4 point)");
}

fn fig56() {
    header("Figures 5-6: ECGFiveDays patterns and the transformed feature space");
    let (model, train, test) = train_for_figure("ECGFiveDays");
    print_patterns(&model, &train);
    println!("ECGFiveDays test error: {:.3}", eval_method(&model, &test));
    println!("training cache: {}", model.cache_stats());
    // Figure 6: project the training data on the first two pattern axes.
    let k = model.patterns().len().min(2);
    println!("\ntransformed training data (first {k} feature(s)):");
    println!("{:<8}features", "label");
    for (s, l) in train.iter() {
        let f = model.transform(s);
        let coords: Vec<String> = f.iter().take(2).map(|v| format!("{v:.3}")).collect();
        println!("{l:<8}{}", coords.join(" "));
    }
}

// ---------------------------------------------------------------- §6.2

fn alarm() {
    header("Case study §6.2: medical alarm (synthetic ABP)");
    let train = rpm_data::abp::generate(20, 400, 7);
    let test = rpm_data::abp::generate(40, 400, 8);
    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 8,
            per_class: false,
        },
        n_validation_splits: 2,
        n_threads: threads(),
        ..RpmConfig::default()
    };
    let start = Instant::now();
    let model = RpmClassifier::train(&train, &config).expect("train");
    let rpm_t = start.elapsed().as_secs_f64();

    // Every method goes through the shared trait object.
    let rivals: Vec<(&str, Box<dyn Classifier>)> = vec![
        ("NN-ED", Box::new(OneNnEuclidean::train(&train))),
        ("NN-DTWB", Box::new(OneNnDtw::train(&train))),
        (
            "SAX-VSM",
            Box::new(SaxVsm::train(&train, &SaxVsmParams::for_length(400))),
        ),
    ];
    println!("{:<10}{:>10}", "method", "error");
    for (name, m) in &rivals {
        println!("{name:<10}{:>10.3}", eval_method(m.as_ref(), &test));
    }
    println!(
        "{:<10}{:>10.3}  ({rpm_t:.2}s)",
        "RPM",
        eval_method(&model, &test)
    );
    println!("training cache: {}", model.cache_stats());
    println!("\nRPM patterns on the alarm class:");
    for p in model.patterns_for_class(rpm_data::abp::ALARM) {
        println!(
            "  len={} freq={} {}",
            p.values.len(),
            p.frequency,
            sparkline(&p.values)
        );
    }

    // The harder 4-class variant: which alarm phenomenon fired?
    println!("\n--- alarm-type variant (normal / hypotension / damped / artifact)");
    let train4 = rpm_data::abp::generate_by_type(15, 400, 17);
    let test4 = rpm_data::abp::generate_by_type(25, 400, 18);
    let start4 = Instant::now();
    let model4 = RpmClassifier::train(&train4, &config).expect("train");
    let rpm4_t = start4.elapsed().as_secs_f64();
    let rivals4: Vec<(&str, Box<dyn Classifier>)> = vec![
        ("NN-ED", Box::new(OneNnEuclidean::train(&train4))),
        (
            "SAX-VSM",
            Box::new(SaxVsm::train(&train4, &SaxVsmParams::for_length(400))),
        ),
    ];
    println!("{:<10}{:>10}", "method", "error");
    for (name, m) in &rivals4 {
        println!("{name:<10}{:>10.3}", eval_method(m.as_ref(), &test4));
    }
    println!(
        "{:<10}{:>10.3}  ({rpm4_t:.2}s)",
        "RPM",
        eval_method(&model4, &test4)
    );
    println!(
        "(chance = 0.75; patterns per class: {:?})",
        (0..4)
            .map(|c| model4.patterns_for_class(c).len())
            .collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------- Ablation

fn ablation() {
    header("Ablations (DESIGN.md §5)");
    let spec = spec_by_name("CBF").expect("suite dataset");
    let (train, test) = generate(&spec, 2016);
    let base_sax = SaxConfig::new(32, 4, 4);

    let run = |label: &str, config: &RpmConfig| {
        let start = Instant::now();
        match RpmClassifier::train(&train, config) {
            Ok(model) => {
                let err = eval_method(&model, &test);
                let t = start.elapsed().as_secs_f64();
                println!(
                    "{label:<34} error {err:>6.3}  time {t:>7.3}s  patterns {}",
                    model.patterns().len()
                );
            }
            Err(e) => println!("{label:<34} failed: {e}"),
        }
    };

    let base = RpmConfig::fixed(base_sax);
    run("baseline (NR on, centroid)", &base);
    run(
        "numerosity reduction OFF",
        &RpmConfig {
            numerosity_reduction: false,
            ..base.clone()
        },
    );
    run(
        "medoid representatives",
        &RpmConfig {
            use_medoid: true,
            ..base.clone()
        },
    );
    run(
        "early abandoning OFF",
        &RpmConfig {
            early_abandon: false,
            ..base.clone()
        },
    );
    run(
        "Re-Pair grammar induction",
        &RpmConfig {
            grammar: rpm_core::GrammarAlgorithm::RePair,
            ..base.clone()
        },
    );

    // Grid vs DIRECT parameter selection.
    let grid = RpmConfig {
        param_search: ParamSearch::Grid {
            windows: vec![16, 24, 32, 48],
            paas: vec![4, 6],
            alphas: vec![3, 4, 6],
            per_class: false,
        },
        n_validation_splits: 2,
        n_threads: threads(),
        ..RpmConfig::default()
    };
    run("grid search (24 combos)", &grid);
    let direct = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 12,
            per_class: false,
        },
        n_validation_splits: 2,
        n_threads: threads(),
        ..RpmConfig::default()
    };
    run("DIRECT (<=12 distinct evals)", &direct);
    let per_class = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 6,
            per_class: true,
        },
        n_validation_splits: 2,
        n_threads: threads(),
        ..RpmConfig::default()
    };
    run("DIRECT per class (paper mode)", &per_class);

    // "Works with any classifier": SVM vs 1-NN on the transformed space.
    let model = RpmClassifier::train(&train, &base).expect("train");
    let pattern_values: Vec<Vec<f64>> = model.patterns().iter().map(|p| p.values.clone()).collect();
    let train_f = transform_set(&train.series, &pattern_values, false, true);
    let test_f = transform_set(&test.series, &pattern_values, false, true);
    let mut correct = 0usize;
    for (f, l) in test_f.iter().zip(&test.labels) {
        let mut best = (0usize, f64::INFINITY);
        for (i, t) in train_f.iter().enumerate() {
            let d = rpm_ts::sq_euclidean(f, t);
            if d < best.1 {
                best = (i, d);
            }
        }
        if train.labels[best.0] == *l {
            correct += 1;
        }
    }
    println!(
        "{:<34} error {:>6.3}",
        "1-NN on transformed features",
        1.0 - correct as f64 / test_f.len() as f64
    );

    // The full "any classifier" sweep over the same transformed features.
    use rpm_ml::{KernelSvm, KernelSvmParams};
    use rpm_ml::{Knn, Logistic, LogisticParams};
    let knn = Knn::train(&train_f, &train.labels, 3);
    println!(
        "{:<34} error {:>6.3}",
        "3-NN on transformed features",
        error_rate(&test.labels, &knn.predict_batch(&test_f))
    );
    let logistic = Logistic::train(&train_f, &train.labels, &LogisticParams::default());
    println!(
        "{:<34} error {:>6.3}",
        "logistic on transformed features",
        error_rate(&test.labels, &logistic_predict(&logistic, &test_f))
    );
    let rbf = KernelSvm::train(&train_f, &train.labels, &KernelSvmParams::default());
    println!(
        "{:<34} error {:>6.3}",
        "RBF-SVM on transformed features",
        error_rate(&test.labels, &rbf.predict_batch(&test_f))
    );
}

fn logistic_predict(model: &rpm_ml::Logistic, rows: &[Vec<f64>]) -> Vec<usize> {
    rows.iter().map(|r| model.predict(r)).collect()
}

// ---------------------------------------------------------------- Extras

/// Beyond the paper's tables: RPM vs the Shapelet Transform (§2.2's
/// closest structural relative — same transform-then-classify shape,
/// different candidate source), on a few suite datasets.
fn extras() {
    header("Extras: RPM vs Shapelet Transform (related work, §2.2)");
    use rpm_baselines::{ShapeletTransform, ShapeletTransformParams};
    println!(
        "{:<18}{:>10}{:>10}{:>12}{:>12}",
        "Dataset", "ST err", "RPM err", "ST time", "RPM time"
    );
    for name in ["CBF", "GunPoint", "ECGFiveDays", "ItalyPowerDemand"] {
        let spec = spec_by_name(name).expect("suite dataset");
        let (train, test) = generate(&spec, 2016);

        let t0 = Instant::now();
        let st = ShapeletTransform::train(&train, &ShapeletTransformParams::default());
        let st_preds = st.predict_batch(&test.series);
        let st_t = t0.elapsed().as_secs_f64();
        let st_err = error_rate(&test.labels, &st_preds);

        let t1 = Instant::now();
        let config = RpmConfig {
            param_search: ParamSearch::Direct {
                max_evals: 8,
                per_class: false,
            },
            n_validation_splits: 2,
            n_threads: threads(),
            ..RpmConfig::default()
        };
        let rpm = RpmClassifier::train(&train, &config).expect("train");
        let rpm_err = eval_method(&rpm, &test);
        let rpm_t = t1.elapsed().as_secs_f64();

        println!("{name:<18}{st_err:>10.3}{rpm_err:>10.3}{st_t:>11.2}s{rpm_t:>11.2}s");
    }
    println!("(the exhaustive ST candidate scan vs RPM's grammar-sourced candidates)");
}
