//! `serve_load` — p50/p99 latency vs offered QPS for `rpm-serve`.
//!
//! ```text
//! serve_load [--duration-secs S] [--json PATH]
//! ```
//!
//! Trains a deliberately compute-heavy CBF model in-process (length
//! 1024, rotation-invariant matching, early abandoning off) so the
//! server is bound by `predict` rather than by connection handling,
//! probes the end-to-end capacity of the micro-batching configuration
//! with a short overload burst, then drives two server configurations
//! with open-loop load at three offered-QPS levels derived from that
//! measured capacity (light ≈ 30%, heavy ≈ 80%, overload ≈ 250%):
//!
//! * **micro-batch** — `max_batch = 32`, the production configuration:
//!   a saturated worker drains the queue 32 series per wakeup and
//!   replies once per batch, so scheduler round-trips, condvar cycles,
//!   and per-call bookkeeping amortize across the batch.
//! * **per-request** — `max_batch = 1`: the same stack forced to
//!   dispatch one request per worker wakeup, i.e. what a server
//!   without micro-batching would do. Every series pays its own
//!   wakeup, reply send, and (on a contended box) preemption.
//!
//! The overload row is the backpressure demonstration: offered load
//! beyond capacity must surface as fast, bounded-latency `429` sheds —
//! not as an unbounded queue quietly converting every request into a
//! timeout. Results print as the BENCH.md table and optionally land in
//! a JSON artifact (`--json BENCH_2.json`).

use rpm_core::{RpmClassifier, RpmConfig};
use rpm_data::{generate, registry::spec_by_name};
use rpm_sax::SaxConfig;
use rpm_serve::{LoadConfig, LoadReport, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn serve_config(max_batch: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_batch,
        batch_window: Duration::from_millis(2),
        // Small enough that the sender pool (96 concurrent requests)
        // can actually fill it: backpressure never triggers if the
        // bound exceeds the in-flight ceiling.
        queue_depth: 48,
        deadline: Duration::from_secs(2),
        limits: rpm_obs::ServeLimits {
            max_connections: 128,
            ..rpm_obs::ServeLimits::default()
        },
        ..ServeConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let duration = Duration::from_secs(flag::<u64>(&args, "--duration-secs").unwrap_or(4));
    let json_path: Option<String> = flag(&args, "--json");

    // A compute-heavy serving model: long series, rotation-invariant
    // matching, no early abandoning. The point is to move the
    // bottleneck into `predict_batch`, where micro-batching operates,
    // and well below the rate the loopback HTTP path can carry.
    let mut spec = spec_by_name("CBF").expect("CBF in the registry");
    spec.length = 1024;
    spec.train = 24;
    spec.test = 16;
    let (train, test) = generate(&spec, 2016);
    let config = RpmConfig {
        rotation_invariant: true,
        early_abandon: false,
        ..RpmConfig::fixed(SaxConfig::new(64, 8, 4))
    };
    let model = Arc::new(RpmClassifier::train(&train, &config).expect("train CBF"));

    // Serial per-series floor, for the record.
    let started = Instant::now();
    let _ = model.predict_batch(&test.series);
    let per_series = started.elapsed().as_secs_f64() / test.series.len() as f64;
    eprintln!(
        "calibration: {:.3} ms/series serial predict floor",
        per_series * 1e3
    );

    // One representative request body, reused for every request.
    let rendered: Vec<String> = test.series[0].iter().map(|v| format!("{v:.6}")).collect();
    let body = format!("[{}]\n", rendered.join(","));

    // End-to-end capacity probe: overload the micro-batch server for a
    // short burst and take its sustained 200-rate as capacity. This
    // folds in connection handling, parsing, queueing, and scheduler
    // contention — everything the serial floor cannot see.
    let probe_secs = 2.0;
    let probe = {
        let mut server =
            Server::start(Arc::clone(&model), &serve_config(32)).expect("start probe server");
        let report = rpm_serve::run_load(&LoadConfig {
            addr: server.local_addr(),
            qps: (4.0 / per_series.max(1e-9)).max(200.0),
            duration: Duration::from_secs_f64(probe_secs),
            senders: 96,
            bodies: vec![body.clone()],
        });
        server.shutdown();
        report
    };
    // Sustained 200-rate under overload: completed-request rate scaled
    // by the fraction that were served rather than shed.
    let capacity_qps =
        (probe.achieved_qps * probe.ok as f64 / (probe.sent.max(1)) as f64).max(50.0);
    eprintln!(
        "capacity probe: {} ok / {} shed / {} missed → ~{capacity_qps:.0} qps sustained",
        probe.ok, probe.shed, probe.missed
    );
    let levels = [
        ("light", capacity_qps * 0.3),
        ("heavy", capacity_qps * 0.8),
        ("overload", capacity_qps * 2.5),
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (mode, max_batch) in [("micro-batch", 32usize), ("per-request", 1usize)] {
        let mut server =
            Server::start(Arc::clone(&model), &serve_config(max_batch)).expect("start server");
        let addr = server.local_addr();
        for (level, qps) in levels {
            let report: LoadReport = rpm_serve::run_load(&LoadConfig {
                addr,
                qps,
                duration,
                senders: 96,
                bodies: vec![body.clone()],
            });
            let label = format!("{mode} {level}");
            eprintln!(
                "{label}: offered {:.0} qps → {} ok / {} shed / {} deadline / {} err, \
                 p50 {:.2} ms, p99 {:.2} ms",
                report.offered_qps,
                report.ok,
                report.shed,
                report.deadline,
                report.errors,
                report.p50_ms,
                report.p99_ms
            );
            rows.push(report.markdown_row(&label));
            json.push(report.to_json(&label));
        }
        server.shutdown();
    }

    println!(
        "| run | offered qps | achieved qps | 200 | 429 | 504 | err | p50 ms | p99 ms | shed p99 ms |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for row in &rows {
        println!("{row}");
    }
    if let Some(path) = json_path {
        let artifact = format!(
            "{{\n  \"schema\": 1,\n  \"per_series_ms\": {:.4},\n  \"capacity_qps\": {:.1},\n  \"runs\": [\n  {}\n  ]\n}}\n",
            per_series * 1e3,
            capacity_qps,
            json.join(",\n  ")
        );
        std::fs::write(&path, artifact).expect("write json artifact");
        eprintln!("wrote {path}");
    }
}
