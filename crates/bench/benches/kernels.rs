//! Microbenchmarks of the numeric kernels: the closest-match search (with
//! and without early abandoning — the §5.3 optimization), SAX
//! discretization, Sequitur induction, banded DTW, and the disabled-path
//! cost of the observability probes (one relaxed atomic load each).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpm_baselines::dtw_distance_banded;
use rpm_grammar::infer;
use rpm_sax::{discretize, SaxConfig};
use rpm_ts::{best_match, best_match_naive, prepare_pattern};

fn synthetic_series(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.max(1);
    let mut acc = 0.0f64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            acc += ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            acc
        })
        .collect()
}

fn bench_best_match(c: &mut Criterion) {
    let series = synthetic_series(2048, 7);
    let pattern = series[512..576].to_vec();
    let mut g = c.benchmark_group("best_match");
    g.bench_function("early_abandon", |b| {
        b.iter(|| best_match(black_box(&pattern), black_box(&series), true))
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| best_match(black_box(&pattern), black_box(&series), false))
    });
    g.finish();
}

/// Naive per-window z-normalization vs the rolling-statistics kernel, and
/// the plan-reuse path that amortizes pattern preparation across series —
/// the acceptance gate is rolling ≥ 3× naive for patterns ≥ 64 over
/// series ≥ 1024 (see BENCH.md).
fn bench_match_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("match_kernel");
    for &(m, n) in &[(64usize, 2048usize), (64, 8192), (128, 2048), (128, 8192)] {
        let series = synthetic_series(n, 7);
        let pattern = series[n / 4..n / 4 + m].to_vec();
        let id = format!("m{m}_n{n}");
        g.bench_with_input(BenchmarkId::new("naive", &id), &pattern, |b, p| {
            b.iter(|| best_match_naive(black_box(p), black_box(&series), true))
        });
        g.bench_with_input(BenchmarkId::new("rolling", &id), &pattern, |b, p| {
            b.iter(|| best_match(black_box(p), black_box(&series), true))
        });
        let plan = prepare_pattern(&pattern);
        g.bench_with_input(BenchmarkId::new("plan_reuse", &id), &plan, |b, plan| {
            b.iter(|| plan.best_match(black_box(&series), true))
        });
    }

    // Pattern-set scans: K patterns over one series — the per-pattern
    // rolling loop (K RollingStats builds, K full window sweeps) vs one
    // batched cascade pass (stats shared, most exact loops pruned by the
    // lower-bound tiers). The acceptance gate is batched ≥ 3× per-pattern
    // on the multi-pattern transform (see BENCH.md).
    for &(k, m, n) in &[
        (8usize, 64usize, 2048usize),
        (16, 64, 8192),
        (16, 128, 8192),
    ] {
        let series = synthetic_series(n, 7);
        // Patterns are staggered subsequences of the series itself —
        // mined patterns come from the data they later scan, so every
        // pattern has a (near-)perfect window somewhere and the cascade's
        // bounds are exercised at realistic best-so-far levels.
        let patterns: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                let at = (i * (n - m)) / k;
                series[at..at + m].to_vec()
            })
            .collect();
        let rolling_plans: Vec<rpm_ts::MatchPlan> =
            patterns.iter().map(|p| prepare_pattern(p)).collect();
        let batched_plans: Vec<rpm_ts::MatchPlan> = patterns
            .iter()
            .map(|p| rpm_ts::MatchPlan::with_kernel(p, rpm_ts::MatchKernel::Batched))
            .collect();
        let set = rpm_ts::BatchedMatch::new(&batched_plans);
        let id = format!("k{k}_m{m}_n{n}");
        g.bench_with_input(
            BenchmarkId::new("set_per_pattern", &id),
            &rolling_plans,
            |b, plans| {
                b.iter(|| {
                    plans
                        .iter()
                        .map(|p| p.best_match(black_box(&series), true))
                        .collect::<Vec<_>>()
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("set_batched", &id), &set, |b, set| {
            b.iter(|| set.match_all(black_box(&series), true, None))
        });
    }

    // The classification-path composite: transform a batch of series into
    // the K-pattern feature space — what `predict_batch` pays per batch.
    // Mined patterns recur across instances (that is what makes them
    // patterns), so each batch series embeds the pattern set at
    // staggered, per-series-shuffled offsets: the cascade runs at the
    // tight best-so-far levels the real pipeline sees once a pattern
    // finds its occurrence.
    for (k, n) in [(16usize, 2048usize), (32, 4096)] {
        use rpm_core::{prepare_patterns, transform_set_plans_engine, Engine, MatchKernel};
        let master = synthetic_series(n, 97);
        let patterns: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                let at = (i * (n - 64)) / k;
                master[at..at + 64].to_vec()
            })
            .collect();
        let batch: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let mut s = synthetic_series(n, 200 + i as u64);
                for j in 0..k {
                    let p = &patterns[(j + i) % k];
                    let at = j * (n / k) + (i % 3) * 17;
                    s[at..at + p.len()].copy_from_slice(p);
                }
                s
            })
            .collect();
        let rolling_plans = prepare_patterns(&patterns, MatchKernel::Rolling);
        let batched_plans = prepare_patterns(&patterns, MatchKernel::Batched);
        let engine = Engine::serial();
        g.bench_function(format!("transform_rolling_k{k}"), |b| {
            b.iter(|| {
                transform_set_plans_engine(black_box(&batch), &rolling_plans, false, true, &engine)
                    .unwrap()
            })
        });
        g.bench_function(format!("transform_batched_k{k}"), |b| {
            b.iter(|| {
                transform_set_plans_engine(black_box(&batch), &batched_plans, false, true, &engine)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let series = synthetic_series(1024, 11);
    let cfg = SaxConfig::new(64, 8, 4);
    let mut g = c.benchmark_group("sax_discretize");
    g.bench_function("with_numerosity_reduction", |b| {
        b.iter(|| discretize(black_box(&series), &cfg, true))
    });
    g.bench_function("without_numerosity_reduction", |b| {
        b.iter(|| discretize(black_box(&series), &cfg, false))
    });
    g.finish();
}

fn bench_sequitur(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequitur");
    for &n in &[256usize, 1024, 4096] {
        let tokens: Vec<u32> = (0..n).map(|i| ((i * i) % 17) as u32).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &tokens, |b, t| {
            b.iter(|| infer(black_box(t)))
        });
    }
    g.finish();
}

fn bench_dtw(c: &mut Criterion) {
    let a = synthetic_series(256, 3);
    let b_series = synthetic_series(256, 5);
    let mut g = c.benchmark_group("dtw_banded");
    for &band in &[0usize, 8, 32, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(band), &band, |b, &band| {
            b.iter(|| dtw_distance_banded(black_box(&a), black_box(&b_series), band))
        });
    }
    g.finish();
}

/// Cost of observability probes while recording is OFF — the state every
/// production run pays. Each probe must compile down to one relaxed
/// atomic load plus a branch; the instrumented kernel is compared against
/// an identical closure with no probe.
fn bench_obs_disabled(c: &mut Criterion) {
    assert_eq!(rpm_obs::level(), rpm_obs::ObsLevel::Off);
    let mut g = c.benchmark_group("obs_disabled");
    g.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _span = rpm_obs::span!("bench");
            black_box(())
        })
    });
    g.bench_function("counter_add", |b| {
        b.iter(|| rpm_obs::metrics().engine_jobs.add(black_box(1)))
    });
    g.bench_function("histogram_observe", |b| {
        b.iter(|| rpm_obs::metrics().engine_drain.observe(black_box(42)))
    });
    // The same tight loop with and without a probe inside: the delta is
    // the per-iteration overhead an instrumented hot loop pays when off.
    let series = synthetic_series(256, 13);
    g.bench_function("sum_loop_plain", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for v in black_box(&series) {
                acc += v;
            }
            black_box(acc)
        })
    });
    g.bench_function("sum_loop_probed", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for v in black_box(&series) {
                rpm_obs::metrics().engine_jobs.add(1);
                acc += v;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Cost of fault-injection sites while no plan is armed — the state every
/// run outside chaos testing pays. `point`/`fire` must compile down to
/// one relaxed atomic load plus a branch, like the obs probes above.
fn bench_fault_disabled(c: &mut Criterion) {
    assert!(!rpm_obs::fault::active());
    let mut g = c.benchmark_group("fault_disabled");
    g.bench_function("point", |b| {
        b.iter(|| rpm_obs::fault::point(black_box("bench.site")))
    });
    g.bench_function("fire", |b| {
        b.iter(|| rpm_obs::fault::fire(black_box("bench.site")))
    });
    // The same tight loop with and without a site inside: the delta is
    // the per-iteration overhead a guarded hot loop pays when off.
    let series = synthetic_series(256, 13);
    g.bench_function("sum_loop_plain", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for v in black_box(&series) {
                acc += v;
            }
            black_box(acc)
        })
    });
    g.bench_function("sum_loop_with_site", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for v in black_box(&series) {
                rpm_obs::fault::fire("bench.site");
                acc += v;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Single-series predict latency with recording off vs on — the serving
/// acceptance gate: turning the metrics level up must not measurably
/// slow the inference path (two histogram observations + two clock
/// reads per predict, against a closest-match scan over every pattern).
/// Runs last: `bench_obs_disabled` asserts the level is still Off.
fn bench_predict_latency(c: &mut Criterion) {
    use rpm_core::{RpmClassifier, RpmConfig};
    let train = rpm_data::cbf::generate(8, 128, 21);
    let series = rpm_data::cbf::generate(1, 128, 22).series.remove(0);
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(32, 4, 4)))
        .expect("train for predict bench");
    let mut g = c.benchmark_group("predict_latency");
    g.bench_function("obs_off", |b| b.iter(|| model.predict(black_box(&series))));
    rpm_obs::ObsConfig {
        level: rpm_obs::ObsLevel::Summary,
        ..Default::default()
    }
    .install();
    g.bench_function("obs_summary", |b| {
        b.iter(|| model.predict(black_box(&series)))
    });
    rpm_obs::ObsConfig::default().install();
    g.finish();
}

/// Cost of request-scoped tracing on the serving path — the acceptance
/// gate (BENCH.md): the traced batch predict (kernel counters attached)
/// must stay within 2% of the untraced path at p99, and the per-request
/// bookkeeping (build a trace, add the serving span tree, finish, offer
/// it to the flight recorder) must be microseconds, dwarfed by any real
/// predict.
fn bench_trace_overhead(c: &mut Criterion) {
    use rpm_core::{Parallelism, RpmClassifier, RpmConfig};
    use rpm_ts::ScanCounters;
    let train = rpm_data::cbf::generate(8, 128, 21);
    let batch = rpm_data::cbf::generate(4, 128, 22).series;
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(32, 4, 4)))
        .expect("train for trace bench");
    let mut g = c.benchmark_group("trace_overhead");
    g.bench_function("predict_untraced", |b| {
        b.iter(|| {
            model
                .predict_batch_traced(black_box(&batch), Parallelism::Serial, None)
                .expect("predict")
        })
    });
    let counters = ScanCounters::new();
    g.bench_function("predict_counted", |b| {
        b.iter(|| {
            model
                .predict_batch_traced(black_box(&batch), Parallelism::Serial, Some(&counters))
                .expect("predict")
        })
    });
    g.bench_function("trace_record_cycle", |b| {
        b.iter(|| {
            let ctx = rpm_obs::TraceCtx::begin(black_box(None));
            let t0 = ctx.start_ns();
            ctx.add_span("parse", t0, 1_000);
            ctx.add_span("queue_wait", t0 + 1_000, 2_000);
            let batch_span = ctx.add_span_with(
                "batch",
                Some(ctx.root_span()),
                t0 + 3_000,
                10_000,
                vec![
                    ("batch", "1".to_string()),
                    ("series", "4".to_string()),
                    ("requests", "4".to_string()),
                ],
                Vec::new(),
            );
            ctx.add_span_with(
                "predict",
                Some(batch_span),
                t0 + 3_000,
                9_000,
                vec![
                    ("searches", "128".to_string()),
                    ("windows", "4096".to_string()),
                ],
                Vec::new(),
            );
            ctx.add_span("respond", t0 + 13_000, 500);
            rpm_obs::recorder().record(ctx.finish(rpm_obs::TraceOutcome::Ok, 200))
        })
    });
    g.finish();
}

/// Cost of online drift monitoring on the serving path — the acceptance
/// gate (BENCH.md): the observed batch predict (drift samples extracted
/// and folded into the monitor's epoch sketches) must stay within 2% of
/// the traced path at p99. The per-sample fold is a handful of relaxed
/// atomic increments into log₂ buckets; scoring the window (PSI + KS
/// per metric, what `/debug/drift` pays per request) is also measured
/// so the read side stays honest.
fn bench_drift_overhead(c: &mut Criterion) {
    use rpm_core::{Parallelism, RpmClassifier, RpmConfig};
    use rpm_obs::{DriftConfig, DriftMonitor};
    use rpm_ts::ScanCounters;
    let train = rpm_data::cbf::generate(8, 128, 21);
    let batch = rpm_data::cbf::generate(4, 128, 22).series;
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(32, 4, 4)))
        .expect("train for drift bench");
    let profile = model
        .reference_profile()
        .expect("training builds a reference profile");
    let monitor = DriftMonitor::new(profile, DriftConfig::default());
    let counters = ScanCounters::new();

    let mut g = c.benchmark_group("drift_overhead");
    g.bench_function("predict_traced", |b| {
        b.iter(|| {
            model
                .predict_batch_traced(black_box(&batch), Parallelism::Serial, Some(&counters))
                .expect("predict")
        })
    });
    g.bench_function("predict_observed", |b| {
        b.iter(|| {
            let observed = model
                .predict_batch_observed(black_box(&batch), Parallelism::Serial, Some(&counters))
                .expect("predict");
            for (label, sample) in &observed {
                monitor.observe(sample);
                black_box(label);
            }
        })
    });
    // Warm the window so report() scores real sketches, then measure the
    // on-demand scoring cost (read side: /debug/drift, /metrics gauges).
    let samples: Vec<_> = model
        .predict_batch_observed(&batch, Parallelism::Serial, None)
        .expect("predict");
    for (_, sample) in &samples {
        monitor.observe(sample);
    }
    g.bench_function("drift_report", |b| b.iter(|| monitor.report()));
    g.finish();
}

criterion_group!(
    benches,
    bench_best_match,
    bench_match_kernel,
    bench_discretize,
    bench_sequitur,
    bench_dtw,
    bench_obs_disabled,
    bench_fault_disabled,
    bench_predict_latency,
    bench_trace_overhead,
    bench_drift_overhead
);
criterion_main!(benches);
