//! Microbenchmarks of the numeric kernels: the closest-match search (with
//! and without early abandoning — the §5.3 optimization), SAX
//! discretization, Sequitur induction, and banded DTW.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpm_baselines::dtw_distance_banded;
use rpm_grammar::infer;
use rpm_sax::{discretize, SaxConfig};
use rpm_ts::best_match;

fn synthetic_series(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.max(1);
    let mut acc = 0.0f64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            acc += ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            acc
        })
        .collect()
}

fn bench_best_match(c: &mut Criterion) {
    let series = synthetic_series(2048, 7);
    let pattern = series[512..576].to_vec();
    let mut g = c.benchmark_group("best_match");
    g.bench_function("early_abandon", |b| {
        b.iter(|| best_match(black_box(&pattern), black_box(&series), true))
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| best_match(black_box(&pattern), black_box(&series), false))
    });
    g.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let series = synthetic_series(1024, 11);
    let cfg = SaxConfig::new(64, 8, 4);
    let mut g = c.benchmark_group("sax_discretize");
    g.bench_function("with_numerosity_reduction", |b| {
        b.iter(|| discretize(black_box(&series), &cfg, true))
    });
    g.bench_function("without_numerosity_reduction", |b| {
        b.iter(|| discretize(black_box(&series), &cfg, false))
    });
    g.finish();
}

fn bench_sequitur(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequitur");
    for &n in &[256usize, 1024, 4096] {
        let tokens: Vec<u32> = (0..n).map(|i| ((i * i) % 17) as u32).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &tokens, |b, t| {
            b.iter(|| infer(black_box(t)))
        });
    }
    g.finish();
}

fn bench_dtw(c: &mut Criterion) {
    let a = synthetic_series(256, 3);
    let b_series = synthetic_series(256, 5);
    let mut g = c.benchmark_group("dtw_banded");
    for &band in &[0usize, 8, 32, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(band), &band, |b, &band| {
            b.iter(|| dtw_distance_banded(black_box(&a), black_box(&b_series), band))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_best_match,
    bench_discretize,
    bench_sequitur,
    bench_dtw
);
criterion_main!(benches);
