//! Scaling benchmarks for the §5.3 complexity analysis: discretization +
//! grammar induction are linear in the training size, and RPM training
//! overall stays near-linear (the candidate pool, not the raw size, drives
//! the clustering term).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpm_core::{Parallelism, ParamSearch, RpmClassifier, RpmConfig};
use rpm_sax::SaxConfig;

fn bench_train_vs_set_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpm_train_vs_train_size");
    g.sample_size(10);
    for &n_per_class in &[4usize, 8, 16] {
        let train = rpm_data::cbf::generate(n_per_class, 128, 1);
        let config = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
        g.bench_with_input(
            BenchmarkId::from_parameter(n_per_class * 3),
            &train,
            |b, train| b.iter(|| RpmClassifier::train(black_box(train), &config).unwrap()),
        );
    }
    g.finish();
}

fn bench_train_vs_series_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpm_train_vs_length");
    g.sample_size(10);
    for &len in &[64usize, 128, 256] {
        let train = rpm_data::cbf::generate(8, len, 2);
        let config = RpmConfig::fixed(SaxConfig::new(len / 4, 4, 4));
        g.bench_with_input(BenchmarkId::from_parameter(len), &train, |b, train| {
            b.iter(|| RpmClassifier::train(black_box(train), &config).unwrap())
        });
    }
    g.finish();
}

fn bench_discretize_plus_grammar_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("discretize_plus_sequitur");
    for &len in &[512usize, 2048, 8192] {
        let series: Vec<f64> = (0..len)
            .map(|i| (i as f64 * 0.37).sin() + (i as f64 * 0.071).cos())
            .collect();
        let sax = SaxConfig::new(32, 4, 4);
        g.bench_with_input(BenchmarkId::from_parameter(len), &series, |b, s| {
            b.iter(|| {
                let words = rpm_sax::discretize(black_box(s), &sax, true);
                let mut interner = std::collections::HashMap::new();
                let mut seq = rpm_grammar::Sequitur::new();
                for w in &words {
                    let next = interner.len() as u32;
                    let t = *interner.entry(w.word.clone()).or_insert(next);
                    seq.push(t);
                }
                seq.into_grammar()
            })
        });
    }
    g.finish();
}

/// Grid-search training under the shared engine (the tentpole's headline
/// case): the same 12-combination grid, serial-without-cache (the seed's
/// behaviour), then cached at 1, 2, and 4 workers. Results are
/// bit-identical across every row; only the wall clock moves — the cache
/// removes repeated SAX/transform work shared by grid neighbours, the
/// threads overlap what remains.
fn bench_grid_search_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_search_training_threads");
    g.sample_size(10);
    let train = rpm_data::cbf::generate(8, 128, 3);
    let grid = ParamSearch::Grid {
        windows: vec![16, 24, 32, 48],
        paas: vec![4],
        alphas: vec![3, 4, 6],
        per_class: false,
    };
    for (label, n_threads, cache) in [
        ("1-nocache", 1usize, false),
        ("1", 1, true),
        ("2", 2, true),
        ("4", 4, true),
    ] {
        let config = RpmConfig {
            param_search: grid.clone(),
            n_validation_splits: 2,
            n_threads,
            cache,
            ..RpmConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| RpmClassifier::train(black_box(&train), config).unwrap())
        });
    }
    g.finish();
}

/// Thread scaling of the batch transform alone (training fixed, the
/// per-series feature columns computed by the engine).
fn bench_transform_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_transform_threads");
    g.sample_size(10);
    let train = rpm_data::cbf::generate(8, 128, 4);
    let test = rpm_data::cbf::generate(40, 128, 5);
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(32, 4, 4))).unwrap();
    for &n_threads in &[1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(n_threads),
            &test.series,
            |b, series| {
                b.iter(|| {
                    model
                        .predict_batch_with(black_box(series), Parallelism::Threads(n_threads))
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_train_vs_set_size,
    bench_train_vs_series_length,
    bench_discretize_plus_grammar_linear,
    bench_grid_search_thread_scaling,
    bench_transform_thread_scaling
);
criterion_main!(benches);
