//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! numerosity reduction, early abandoning, and the cluster-representative
//! choice. Accuracy effects are reported by `repro ablation`; the
//! criterion side quantifies the *cost* of each switch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rpm_core::{find_candidates_for_class, RpmClassifier, RpmConfig};
use rpm_sax::SaxConfig;

fn bench_numerosity_reduction(c: &mut Criterion) {
    let train = rpm_data::cbf::generate(6, 128, 2);
    let sax = SaxConfig::new(32, 4, 4);
    let view = train.by_class().into_iter().next().unwrap();
    let on = RpmConfig::fixed(sax);
    let off = RpmConfig {
        numerosity_reduction: false,
        ..on.clone()
    };

    let mut g = c.benchmark_group("numerosity_reduction");
    g.bench_function("on", |b| {
        b.iter(|| find_candidates_for_class(black_box(&view.members), 0, &sax, &on))
    });
    g.bench_function("off", |b| {
        b.iter(|| find_candidates_for_class(black_box(&view.members), 0, &sax, &off))
    });
    g.finish();
}

fn bench_early_abandon(c: &mut Criterion) {
    let train = rpm_data::cbf::generate(6, 128, 3);
    let sax = SaxConfig::new(32, 4, 4);
    let fast = RpmConfig::fixed(sax);
    let slow = RpmConfig {
        early_abandon: false,
        ..fast.clone()
    };

    let mut g = c.benchmark_group("early_abandon_training");
    g.sample_size(10);
    g.bench_function("on", |b| {
        b.iter(|| RpmClassifier::train(black_box(&train), &fast).unwrap())
    });
    g.bench_function("off", |b| {
        b.iter(|| RpmClassifier::train(black_box(&train), &slow).unwrap())
    });
    g.finish();
}

fn bench_representative_choice(c: &mut Criterion) {
    let train = rpm_data::cbf::generate(6, 128, 4);
    let sax = SaxConfig::new(32, 4, 4);
    let view = train.by_class().into_iter().next().unwrap();
    let centroid = RpmConfig::fixed(sax);
    let medoid = RpmConfig {
        use_medoid: true,
        ..centroid.clone()
    };

    let mut g = c.benchmark_group("cluster_representative");
    g.bench_function("centroid", |b| {
        b.iter(|| find_candidates_for_class(black_box(&view.members), 0, &sax, &centroid))
    });
    g.bench_function("medoid", |b| {
        b.iter(|| find_candidates_for_class(black_box(&view.members), 0, &sax, &medoid))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_numerosity_reduction,
    bench_early_abandon,
    bench_representative_choice
);
criterion_main!(benches);
