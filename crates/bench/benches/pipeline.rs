//! Pipeline-level benchmarks: RPM training stages and the rival
//! classifiers on a common small dataset, so relative costs (the substance
//! of Table 2) are visible at criterion precision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rpm_baselines::{
    Classifier, FastShapelets, FastShapeletsParams, LearningShapelets, LearningShapeletsParams,
    OneNnDtw, OneNnEuclidean, SaxVsm, SaxVsmParams,
};
use rpm_core::{find_candidates_for_class, transform_series, RpmClassifier, RpmConfig};
use rpm_sax::SaxConfig;
use rpm_ts::Dataset;

fn train_set() -> Dataset {
    rpm_data::cbf::generate(6, 128, 1)
}

fn bench_rpm_stages(c: &mut Criterion) {
    let train = train_set();
    let sax = SaxConfig::new(32, 4, 4);
    let config = RpmConfig::fixed(sax);
    let view = train.by_class().into_iter().next().unwrap();
    let model = RpmClassifier::train(&train, &config).unwrap();
    let patterns: Vec<Vec<f64>> = model.patterns().iter().map(|p| p.values.clone()).collect();
    let query = train.series[0].clone();

    let mut g = c.benchmark_group("rpm_stages");
    g.bench_function("find_candidates_one_class", |b| {
        b.iter(|| find_candidates_for_class(black_box(&view.members), 0, &sax, &config))
    });
    g.bench_function("train_full_fixed_params", |b| {
        b.iter(|| RpmClassifier::train(black_box(&train), &config).unwrap())
    });
    g.bench_function("transform_one_series", |b| {
        b.iter(|| transform_series(black_box(&query), &patterns, false, true))
    });
    g.bench_function("predict_one_series", |b| {
        b.iter(|| model.predict(black_box(&query)))
    });
    g.finish();
}

fn bench_rivals(c: &mut Criterion) {
    let train = train_set();
    let query = train.series[0].clone();
    let mut g = c.benchmark_group("rival_training");
    g.sample_size(10);
    g.bench_function("nn_ed", |b| {
        b.iter(|| OneNnEuclidean::train(black_box(&train)))
    });
    g.bench_function("nn_dtw_best_window", |b| {
        b.iter(|| OneNnDtw::train(black_box(&train)))
    });
    g.bench_function("sax_vsm", |b| {
        b.iter(|| SaxVsm::train(black_box(&train), &SaxVsmParams::for_length(128)))
    });
    g.bench_function("fast_shapelets", |b| {
        b.iter(|| FastShapelets::train(black_box(&train), &FastShapeletsParams::default()))
    });
    g.bench_function("learning_shapelets_50it", |b| {
        b.iter(|| {
            LearningShapelets::train(
                black_box(&train),
                &LearningShapeletsParams {
                    max_iter: 50,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();

    let nn = OneNnEuclidean::train(&train);
    let mut g2 = c.benchmark_group("rival_prediction");
    g2.bench_function("nn_ed_predict", |b| {
        b.iter(|| nn.predict(black_box(&query)))
    });
    g2.finish();
}

criterion_group!(benches, bench_rpm_stages, bench_rivals);
criterion_main!(benches);
