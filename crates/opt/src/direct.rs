//! The DIRECT (DIviding RECTangles) global optimizer.
//!
//! DIRECT normalizes the search domain to the unit hypercube, keeps a pool
//! of hyper-rectangles (center sample + per-dimension trisection level),
//! and on every iteration divides the *potentially optimal* rectangles —
//! those on the lower-right convex hull of the (size, f) scatter, with the
//! classic ε-improvement condition. It is deterministic and converges to a
//! global optimum of a continuous objective as iterations → ∞ (§4.2).
//!
//! With `DirectParams::n_threads > 1` the sample points of each division
//! step are evaluated as one batch on scoped worker threads. The batch is
//! precomputed to match the serial evaluation budget exactly and its
//! results are consumed in point order, so the search trajectory — every
//! division, every level update, the final result — is bit-identical to
//! the serial run. This requires the objective to be `Fn + Sync`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Knobs for the DIRECT runs.
#[derive(Clone, Copy, Debug)]
pub struct DirectParams {
    /// Hard budget of objective evaluations.
    pub max_evals: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// The Jones ε in the potential-optimality test (typical: 1e-4).
    pub eps: f64,
    /// Worker threads for batch objective evaluation (`<= 1` = serial).
    pub n_threads: usize,
    /// Wall-clock deadline for the whole run (`None` = unbounded).
    /// Checked between iterations, so the optimizer stops at a division
    /// boundary with the best point found so far — a deadline never
    /// produces a torn division. Note that a deadline makes the search
    /// trajectory depend on machine speed; leave it `None` when
    /// reproducibility across runs matters more than bounded latency.
    pub wall_clock: Option<std::time::Duration>,
}

impl Default for DirectParams {
    fn default() -> Self {
        Self {
            max_evals: 200,
            max_iters: 50,
            eps: 1e-4,
            n_threads: 1,
            wall_clock: None,
        }
    }
}

/// Result of a DIRECT run.
#[derive(Clone, Debug)]
pub struct DirectResult {
    /// Best point found, in original (un-normalized) coordinates.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

#[derive(Clone, Debug)]
struct Rect {
    center: Vec<f64>, // unit-cube coordinates
    levels: Vec<u32>, // trisection count per dimension
    f: f64,
}

impl Rect {
    /// Size measure: half the diagonal of the rectangle.
    fn size(&self) -> f64 {
        let s: f64 = self
            .levels
            .iter()
            .map(|&l| {
                let side = 3f64.powi(-(l as i32));
                side * side
            })
            .sum();
        0.5 * s.sqrt()
    }
}

/// Evaluates `f` at every point, on `n_threads` scoped workers when
/// requested. Results come back in point order regardless of scheduling;
/// a worker panic propagates once every worker has joined.
fn batch_eval<F: Fn(&[f64]) -> f64 + Sync>(
    points: &[Vec<f64>],
    n_threads: usize,
    f: &F,
) -> Vec<f64> {
    if n_threads <= 1 || points.len() < 2 {
        return points.iter().map(|p| f(p)).collect();
    }
    let n_workers = n_threads.min(points.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<f64>>> = points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let v = f(&points[i]);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(v);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().ok().flatten().expect("every slot is filled"))
        .collect()
}

/// Minimizes `f` over the box `lo[i] ..= hi[i]`.
///
/// # Panics
/// Panics when the bounds are empty, mismatched, or inverted.
pub fn direct_minimize(
    f: impl Fn(&[f64]) -> f64 + Sync,
    lo: &[f64],
    hi: &[f64],
    params: &DirectParams,
) -> DirectResult {
    assert!(!lo.is_empty(), "DIRECT needs at least one dimension");
    assert_eq!(lo.len(), hi.len(), "bound length mismatch");
    assert!(lo.iter().zip(hi).all(|(a, b)| a <= b), "inverted bounds");
    let dim = lo.len();
    let denorm = |u: &[f64]| -> Vec<f64> {
        u.iter()
            .zip(lo.iter().zip(hi))
            .map(|(v, (a, b))| a + v * (b - a))
            .collect()
    };

    let mut evals = 0usize;

    let center = vec![0.5; dim];
    evals += 1;
    let f0 = f(&denorm(&center));
    let mut rects = vec![Rect {
        center,
        levels: vec![0; dim],
        f: f0,
    }];
    let mut best_idx = 0usize;

    let deadline = params
        .wall_clock
        .and_then(|d| std::time::Instant::now().checked_add(d));
    for _ in 0..params.max_iters {
        if evals >= params.max_evals {
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            break; // deadline: return the best division completed so far
        }
        let selected = potentially_optimal(&rects, rects[best_idx].f, params.eps);
        if selected.is_empty() {
            break;
        }
        let mut new_rects: Vec<Rect> = Vec::new();
        for &ri in &selected {
            if evals >= params.max_evals {
                break;
            }
            // Longest dimensions = minimal trisection level.
            let min_level = *rects[ri].levels.iter().min().unwrap();
            let long_dims: Vec<usize> = (0..dim)
                .filter(|&d| rects[ri].levels[d] == min_level)
                .collect();
            let delta = 3f64.powi(-(min_level as i32)) / 3.0;

            // Sample c ± δ e_d for each long dimension within the
            // remaining budget — the same pairs the serial loop would
            // evaluate one by one — then score the whole batch at once.
            let n_pairs = long_dims.len().min((params.max_evals - evals) / 2);
            let mut points: Vec<Vec<f64>> = Vec::with_capacity(2 * n_pairs);
            for &d in &long_dims[..n_pairs] {
                let mut plus = rects[ri].center.clone();
                plus[d] = (plus[d] + delta).min(1.0);
                let mut minus = rects[ri].center.clone();
                minus[d] = (minus[d] - delta).max(0.0);
                points.push(plus);
                points.push(minus);
            }
            let denormed: Vec<Vec<f64>> = points.iter().map(|u| denorm(u)).collect();
            let fvals = batch_eval(&denormed, params.n_threads, &f);
            evals += points.len();
            rpm_obs::metrics().opt_direct_evals.add(points.len() as u64);

            struct DimSample {
                d: usize,
                plus: Vec<f64>,
                minus: Vec<f64>,
                f_plus: f64,
                f_minus: f64,
            }
            let mut point_iter = points.into_iter();
            let mut samples: Vec<DimSample> = Vec::with_capacity(n_pairs);
            for (k, &d) in long_dims[..n_pairs].iter().enumerate() {
                let plus = point_iter.next().unwrap();
                let minus = point_iter.next().unwrap();
                samples.push(DimSample {
                    d,
                    plus,
                    minus,
                    f_plus: fvals[2 * k],
                    f_minus: fvals[2 * k + 1],
                });
            }
            if samples.is_empty() {
                continue;
            }
            rpm_obs::metrics()
                .opt_direct_splits
                .add(samples.len() as u64);
            // Divide in ascending order of the better child value so the
            // best-looking dimension keeps the largest children.
            samples.sort_by(|a, b| a.f_plus.min(a.f_minus).total_cmp(&b.f_plus.min(b.f_minus)));
            let mut levels = rects[ri].levels.clone();
            for s in samples {
                levels[s.d] += 1;
                new_rects.push(Rect {
                    center: s.plus,
                    levels: levels.clone(),
                    f: s.f_plus,
                });
                new_rects.push(Rect {
                    center: s.minus,
                    levels: levels.clone(),
                    f: s.f_minus,
                });
            }
            rects[ri].levels = levels;
        }
        rects.extend(new_rects);
        best_idx = (0..rects.len())
            .min_by(|&a, &b| rects[a].f.total_cmp(&rects[b].f))
            .unwrap();
    }

    let best = &rects[best_idx];
    DirectResult {
        x: denorm(&best.center),
        f: best.f,
        evaluations: evals,
    }
}

/// Indices of the potentially optimal rectangles: for some K > 0 the
/// rectangle minimizes `f - K·size`, and beats `f_min` by at least
/// `eps·|f_min|`. Computed as the lower-right convex hull of the
/// (size, f) point set.
fn potentially_optimal(rects: &[Rect], f_min: f64, eps: f64) -> Vec<usize> {
    // Best rectangle per distinct size.
    let mut pts: Vec<(f64, f64, usize)> = Vec::new(); // (size, f, idx)
    for (i, r) in rects.iter().enumerate() {
        pts.push((r.size(), r.f, i));
    }
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut best_per_size: Vec<(f64, f64, usize)> = Vec::new();
    for p in pts {
        match best_per_size.last() {
            Some(last) if (last.0 - p.0).abs() < 1e-15 => {} // same size, worse f
            _ => best_per_size.push(p),
        }
    }
    // Lower convex hull over (size, f), scanning from small to large size.
    let mut hull: Vec<(f64, f64, usize)> = Vec::new();
    for p in best_per_size {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // b must lie below segment a->p; otherwise pop.
            let cross = (b.0 - a.0) * (p.1 - a.1) - (p.0 - a.0) * (b.1 - a.1);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Keep only the descending-f tail ending at the largest size, and apply
    // the ε condition relative to the incumbent.
    let mut out = Vec::new();
    for (i, &(size, f, idx)) in hull.iter().enumerate() {
        // Rectangles on the hull with a larger-size successor of lower f
        // are dominated for every K; the hull construction already removed
        // those. Apply Jones' ε test with the slope toward the next point.
        let improvement_ok = if i + 1 < hull.len() {
            let (s2, f2, _) = hull[i + 1];
            let k = (f2 - f) / (s2 - size).max(1e-15);
            // Value achievable within this rect at slope k:
            f - k * size <= f_min - eps * f_min.abs()
        } else {
            true // largest rectangle always survives
        };
        if improvement_ok || f <= f_min {
            out.push(idx);
        }
    }
    if out.is_empty() {
        // Always divide at least the incumbent's rectangle.
        if let Some((_, _, idx)) = hull.last() {
            out.push(*idx);
        }
    }
    out
}

/// Integer-rounded DIRECT (§4.2): every proposal is rounded to the nearest
/// integer vector and the objective is memoized on those integer points, so
/// the expensive cross-validation objective runs once per distinct integer
/// combination. The returned count is the *distinct* integer evaluations —
/// the `R` of the paper's complexity analysis. Concurrent batch proposals
/// rounding onto the same point may both compute (the value is identical);
/// the distinct count only advances on first insertion, so it matches the
/// serial count for any thread count.
pub fn direct_minimize_integer(
    f: impl Fn(&[i64]) -> f64 + Sync,
    lo: &[i64],
    hi: &[i64],
    params: &DirectParams,
) -> (Vec<i64>, f64, usize) {
    use std::collections::HashMap;

    let cache: Mutex<HashMap<Vec<i64>, f64>> = Mutex::new(HashMap::new());
    let distinct = AtomicUsize::new(0);
    let lo_f: Vec<f64> = lo.iter().map(|&v| v as f64).collect();
    let hi_f: Vec<f64> = hi.iter().map(|&v| v as f64).collect();
    let round = |x: &[f64]| -> Vec<i64> {
        x.iter()
            .zip(lo.iter().zip(hi))
            .map(|(&v, (&a, &b))| (v.round() as i64).clamp(a, b))
            .collect()
    };
    let result = direct_minimize(
        |x| {
            let xi = round(x);
            if let Some(v) = cache.lock().ok().and_then(|c| c.get(&xi).copied()) {
                return v;
            }
            let v = f(&xi);
            if let Ok(mut c) = cache.lock() {
                if c.insert(xi, v).is_none() {
                    distinct.fetch_add(1, Ordering::Relaxed);
                }
            }
            v
        },
        &lo_f,
        &hi_f,
        params,
    );
    let xi = round(&result.x);
    let best_f = cache
        .lock()
        .ok()
        .and_then(|c| c.get(&xi).copied())
        .unwrap_or(result.f);
    (xi, best_f, distinct.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_shifted_sphere() {
        let target = [0.3, -0.7];
        let r = direct_minimize(
            |x| x.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum(),
            &[-2.0, -2.0],
            &[2.0, 2.0],
            &DirectParams {
                max_evals: 600,
                max_iters: 60,
                ..DirectParams::default()
            },
        );
        assert!(r.f < 1e-3, "f = {}", r.f);
        assert!((r.x[0] - 0.3).abs() < 0.1, "{:?}", r.x);
        assert!((r.x[1] + 0.7).abs() < 0.1, "{:?}", r.x);
    }

    #[test]
    fn minimizes_1d_absolute_value() {
        let r = direct_minimize(
            |x| (x[0] - 1.5).abs(),
            &[0.0],
            &[10.0],
            &DirectParams::default(),
        );
        assert!(r.f < 0.05, "f = {}", r.f);
    }

    #[test]
    fn respects_evaluation_budget() {
        let count = AtomicUsize::new(0);
        let budget = 37;
        let _ = direct_minimize(
            |x| {
                count.fetch_add(1, Ordering::Relaxed);
                x[0] * x[0] + x[1] * x[1]
            },
            &[-1.0, -1.0],
            &[1.0, 1.0],
            &DirectParams {
                max_evals: budget,
                max_iters: 1000,
                ..DirectParams::default()
            },
        );
        let spent = count.load(Ordering::Relaxed);
        assert!(spent <= budget, "spent {spent} > {budget}");
    }

    #[test]
    fn deterministic() {
        let obj = |x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] + 0.4).powi(2);
        let p = DirectParams::default();
        let a = direct_minimize(obj, &[-1.0, -1.0], &[1.0, 1.0], &p);
        let b = direct_minimize(obj, &[-1.0, -1.0], &[1.0, 1.0], &p);
        assert_eq!(a.x, b.x);
        assert_eq!(a.f, b.f);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let obj = |x: &[f64]| (x[0] - 0.37).powi(2) + (x[1] + 0.81).powi(2) + (x[0] * x[1]).sin();
        let serial = direct_minimize(
            obj,
            &[-2.0, -2.0],
            &[2.0, 2.0],
            &DirectParams {
                max_evals: 500,
                max_iters: 80,
                ..DirectParams::default()
            },
        );
        for threads in [2usize, 4, 8] {
            let parallel = direct_minimize(
                obj,
                &[-2.0, -2.0],
                &[2.0, 2.0],
                &DirectParams {
                    max_evals: 500,
                    max_iters: 80,
                    eps: 1e-4,
                    n_threads: threads,
                    wall_clock: None,
                },
            );
            assert_eq!(serial.x, parallel.x, "threads = {threads}");
            assert_eq!(serial.f.to_bits(), parallel.f.to_bits());
            assert_eq!(serial.evaluations, parallel.evaluations);
        }
    }

    #[test]
    fn parallel_integer_run_matches_serial() {
        let obj = |xi: &[i64]| ((xi[0] - 11) * (xi[0] - 11) + (xi[1] - 5) * (xi[1] - 5)) as f64;
        let serial = direct_minimize_integer(
            obj,
            &[0, 0],
            &[30, 30],
            &DirectParams {
                max_evals: 300,
                max_iters: 50,
                ..DirectParams::default()
            },
        );
        let parallel = direct_minimize_integer(
            obj,
            &[0, 0],
            &[30, 30],
            &DirectParams {
                max_evals: 300,
                max_iters: 50,
                eps: 1e-4,
                n_threads: 4,
                wall_clock: None,
            },
        );
        assert_eq!(serial.0, parallel.0);
        assert_eq!(serial.1.to_bits(), parallel.1.to_bits());
        assert_eq!(serial.2, parallel.2, "distinct counts must agree");
    }

    #[test]
    fn escapes_local_minimum() {
        // Two-well function: local minimum at x=-0.5 (f=0.1), global at
        // x=0.75 (f=0). A purely local method started at the center finds
        // the wrong well; DIRECT's global division must find the right one.
        let obj = |x: &[f64]| {
            let a = (x[0] + 0.5) * (x[0] + 0.5) + 0.1;
            let b = 4.0 * (x[0] - 0.75) * (x[0] - 0.75);
            a.min(b)
        };
        let r = direct_minimize(
            obj,
            &[-1.0],
            &[1.0],
            &DirectParams {
                max_evals: 300,
                max_iters: 60,
                ..DirectParams::default()
            },
        );
        assert!((r.x[0] - 0.75).abs() < 0.05, "stuck at {:?}", r.x);
    }

    #[test]
    fn stays_inside_bounds() {
        let r = direct_minimize(
            |x| {
                assert!((-3.0..=5.0).contains(&x[0]), "x out of bounds: {}", x[0]);
                -x[0]
            },
            &[-3.0],
            &[5.0],
            &DirectParams::default(),
        );
        assert!(
            r.x[0] > 4.0,
            "should push toward the upper bound: {:?}",
            r.x
        );
    }

    #[test]
    fn integer_variant_caches_roundings() {
        let evals = AtomicUsize::new(0);
        let (x, f, distinct) = direct_minimize_integer(
            |xi| {
                evals.fetch_add(1, Ordering::Relaxed);
                ((xi[0] - 7) * (xi[0] - 7) + (xi[1] - 3) * (xi[1] - 3)) as f64
            },
            &[0, 0],
            &[20, 20],
            &DirectParams {
                max_evals: 400,
                max_iters: 60,
                ..DirectParams::default()
            },
        );
        assert_eq!(
            evals.load(Ordering::Relaxed),
            distinct,
            "objective must only see distinct points"
        );
        assert!(distinct < 400, "cache must dedupe roundings: {distinct}");
        assert_eq!(f, 0.0, "best = {x:?}");
        assert_eq!(x, vec![7, 3]);
    }

    #[test]
    fn integer_variant_single_point_domain() {
        let (x, f, distinct) =
            direct_minimize_integer(|xi| xi[0] as f64, &[4], &[4], &DirectParams::default());
        assert_eq!(x, vec![4]);
        assert_eq!(f, 4.0);
        assert_eq!(distinct, 1);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_panic() {
        direct_minimize(|_| 0.0, &[1.0], &[0.0], &DirectParams::default());
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_bounds_panic() {
        direct_minimize(|_| 0.0, &[], &[], &DirectParams::default());
    }
}
