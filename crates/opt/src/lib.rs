//! # rpm-opt — derivative-free optimization for SAX parameter selection
//!
//! §4 of the paper selects the per-class SAX parameters (window, PAA size,
//! alphabet) either by exhaustive grid search (Algorithm 3) or with the
//! **DIRECT** (DIviding RECTangles) global optimizer of Jones, Perttunen &
//! Stuckman (1993). This crate implements both:
//!
//! * [`direct_minimize`] — DIRECT over a continuous box,
//! * [`direct_minimize_integer`] — the paper's integer variant: DIRECT
//!   proposals are rounded to integer grid points and cached so repeated
//!   roundings never re-pay the (expensive, cross-validated) objective,
//! * [`grid_points`] — the exhaustive integer grid of Algorithm 3.

pub mod direct;
pub mod grid;

pub use direct::{direct_minimize, direct_minimize_integer, DirectParams, DirectResult};
pub use grid::{grid_points, IntRange};
