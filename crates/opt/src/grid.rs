//! Exhaustive integer grids for Algorithm 3's brute-force variant.

/// An inclusive stepped integer range `lo..=hi` by `step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntRange {
    /// First value.
    pub lo: i64,
    /// Last value (inclusive; the final point never exceeds it).
    pub hi: i64,
    /// Stride (> 0).
    pub step: i64,
}

impl IntRange {
    /// Creates a range.
    ///
    /// # Panics
    /// Panics when `step <= 0` or `hi < lo`.
    pub fn new(lo: i64, hi: i64, step: i64) -> Self {
        assert!(step > 0, "step must be positive");
        assert!(hi >= lo, "empty range {lo}..={hi}");
        Self { lo, hi, step }
    }

    /// Values in the range.
    pub fn values(&self) -> Vec<i64> {
        (self.lo..=self.hi).step_by(self.step as usize).collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        ((self.hi - self.lo) / self.step + 1) as usize
    }

    /// Always false (ranges are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Cartesian product of the ranges, in row-major order (last range varies
/// fastest) — the full parameter grid the brute-force search of Algorithm 3
/// walks.
pub fn grid_points(ranges: &[IntRange]) -> Vec<Vec<i64>> {
    if ranges.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = vec![Vec::new()];
    for r in ranges {
        let vals = r.values();
        let mut next = Vec::with_capacity(out.len() * vals.len());
        for prefix in &out {
            for &v in &vals {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_values_and_len() {
        let r = IntRange::new(2, 10, 3);
        assert_eq!(r.values(), vec![2, 5, 8]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn range_len_with_exact_endpoint() {
        let r = IntRange::new(0, 9, 3);
        assert_eq!(r.values(), vec![0, 3, 6, 9]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn singleton_range() {
        let r = IntRange::new(5, 5, 1);
        assert_eq!(r.values(), vec![5]);
    }

    #[test]
    fn grid_cartesian_product() {
        let g = grid_points(&[IntRange::new(0, 1, 1), IntRange::new(10, 12, 2)]);
        assert_eq!(g, vec![vec![0, 10], vec![0, 12], vec![1, 10], vec![1, 12]]);
    }

    #[test]
    fn grid_of_nothing_is_single_empty_point() {
        assert_eq!(grid_points(&[]), vec![Vec::<i64>::new()]);
    }

    #[test]
    fn grid_size_multiplies() {
        let g = grid_points(&[
            IntRange::new(0, 4, 1),
            IntRange::new(0, 2, 1),
            IntRange::new(0, 1, 1),
        ]);
        assert_eq!(g.len(), 5 * 3 * 2);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        IntRange::new(0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        IntRange::new(3, 2, 1);
    }
}
