//! Fast Shapelets (Rakthanmanon & Keogh, SDM 2013).
//!
//! The decision-tree shapelet classifier the paper benchmarks against for
//! speed. At each tree node the exhaustive shapelet scan is replaced by a
//! SAX sketch: every candidate subsequence becomes a SAX word, random
//! masking projections hash similar words into shared buckets, per-class
//! collision statistics score each word's distinguishing power, and only
//! the top-k words are mapped back to raw subsequences and evaluated
//! exactly with information gain.

use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rpm_sax::{sax_word, SaxConfig, SaxWord};
use rpm_ts::{best_match, Dataset, Label};
use std::collections::HashMap;

/// Hyper-parameters for [`FastShapelets`].
#[derive(Clone, Debug)]
pub struct FastShapeletsParams {
    /// Candidate shapelet lengths as fractions of the series length.
    pub length_fractions: Vec<f64>,
    /// SAX word length for the sketch.
    pub sax_paa: usize,
    /// SAX alphabet for the sketch.
    pub sax_alpha: usize,
    /// Number of random masking rounds.
    pub n_projections: usize,
    /// Symbols masked per round.
    pub mask_size: usize,
    /// Words promoted to exact evaluation per length.
    pub top_k: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum node size to keep splitting.
    pub min_split: usize,
    /// RNG seed for the projections.
    pub seed: u64,
}

impl Default for FastShapeletsParams {
    fn default() -> Self {
        Self {
            length_fractions: vec![0.1, 0.2, 0.35, 0.5],
            sax_paa: 8,
            sax_alpha: 4,
            n_projections: 8,
            mask_size: 3,
            top_k: 8,
            max_depth: 8,
            min_split: 4,
            seed: 0xFA57,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(Label),
    Split {
        shapelet: Vec<f64>,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Trained Fast Shapelets decision tree.
#[derive(Clone, Debug)]
pub struct FastShapelets {
    root: Node,
}

fn entropy(labels: &[Label]) -> f64 {
    let mut counts: HashMap<Label, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let n = labels.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn majority(labels: &[Label]) -> Label {
    let mut counts: HashMap<Label, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(l, c)| (c, usize::MAX - l)) // deterministic tie-break
        .map(|(l, _)| l)
        .expect("non-empty labels")
}

/// One candidate word with its source location.
struct WordCandidate {
    word: SaxWord,
    series_idx: usize,
    offset: usize,
    length: usize,
}

impl FastShapelets {
    /// Trains the shapelet tree.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn train(data: &Dataset, params: &FastShapeletsParams) -> Self {
        assert!(!data.is_empty(), "Fast Shapelets needs training data");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = build_node(data, &indices, params, 0, &mut rng);
        Self { root }
    }

    /// Depth of the learned tree (leaves have depth 1).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn build_node(
    data: &Dataset,
    indices: &[usize],
    params: &FastShapeletsParams,
    depth: usize,
    rng: &mut StdRng,
) -> Node {
    let labels: Vec<Label> = indices.iter().map(|&i| data.labels[i]).collect();
    let base_entropy = entropy(&labels);
    if base_entropy == 0.0 || depth >= params.max_depth || indices.len() < params.min_split {
        return Node::Leaf(majority(&labels));
    }

    // --- Sketch: collect candidate words per length, score by projection.
    let min_len = indices.iter().map(|&i| data.series[i].len()).min().unwrap();
    let mut best: Option<(f64, f64, Vec<f64>, f64)> = None; // (gain, gap, shapelet, threshold)

    for &frac in &params.length_fractions {
        let len = ((min_len as f64) * frac).round() as usize;
        if len < 4 || len > min_len {
            continue;
        }
        let sax = SaxConfig::new(len, params.sax_paa.min(len), params.sax_alpha);
        // Distinct words per series (presence semantics).
        let mut candidates: Vec<WordCandidate> = Vec::new();
        let mut per_series_words: Vec<Vec<usize>> = Vec::new(); // candidate idx per series
        for (si, &i) in indices.iter().enumerate() {
            let series = &data.series[i];
            let mut seen: HashMap<SaxWord, usize> = HashMap::new();
            for (off, w) in rpm_ts::sliding_windows(series, len) {
                let word = sax_word(w, &sax);
                if !seen.contains_key(&word) {
                    seen.insert(word.clone(), candidates.len());
                    candidates.push(WordCandidate {
                        word,
                        series_idx: i,
                        offset: off,
                        length: len,
                    });
                }
            }
            let _ = si;
            per_series_words.push(seen.into_values().collect());
        }
        if candidates.is_empty() {
            continue;
        }

        // Class frequencies per class label present at this node.
        let mut class_sizes: HashMap<Label, f64> = HashMap::new();
        for &l in &labels {
            *class_sizes.entry(l).or_insert(0.0) += 1.0;
        }

        // Projection rounds: bucket words by masked signature; every word
        // in a bucket credits every series owning any bucket member.
        let word_len = candidates[0].word.len();
        let mask_size = params.mask_size.min(word_len.saturating_sub(1));
        let mut scores = vec![0.0f64; candidates.len()];
        for _round in 0..params.n_projections {
            let mut positions: Vec<usize> = (0..word_len).collect();
            positions.shuffle(rng);
            let masked: Vec<usize> = positions[..mask_size].to_vec();
            // signature -> per-class set of series (counted via per-series
            // distinct candidates).
            let mut buckets: HashMap<Vec<u8>, HashMap<Label, f64>> = HashMap::new();
            for (series_pos, words) in per_series_words.iter().enumerate() {
                let label = labels[series_pos];
                let mut sigs_seen: HashMap<Vec<u8>, ()> = HashMap::new();
                for &ci in words {
                    let mut sig = candidates[ci].word.symbols().to_vec();
                    for &m in &masked {
                        sig[m] = u8::MAX;
                    }
                    sigs_seen.entry(sig).or_insert(());
                }
                for (sig, ()) in sigs_seen {
                    *buckets.entry(sig).or_default().entry(label).or_insert(0.0) += 1.0;
                }
            }
            // Score each candidate by its bucket's class contrast.
            for (ci, cand) in candidates.iter().enumerate() {
                let mut sig = cand.word.symbols().to_vec();
                for &m in &masked {
                    sig[m] = u8::MAX;
                }
                if let Some(by_class) = buckets.get(&sig) {
                    let mut hi: f64 = 0.0;
                    let mut lo: f64 = 1.0;
                    for (&l, &size) in &class_sizes {
                        let f = by_class.get(&l).copied().unwrap_or(0.0) / size;
                        hi = hi.max(f);
                        lo = lo.min(f);
                    }
                    scores[ci] += hi - lo;
                }
            }
        }

        // Promote the top-k words to exact evaluation.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        for &ci in order.iter().take(params.top_k) {
            let cand = &candidates[ci];
            let series = &data.series[cand.series_idx];
            let shapelet = series[cand.offset..cand.offset + cand.length].to_vec();
            // Exact distances to every node member.
            let dists: Vec<f64> = indices
                .iter()
                .map(|&i| {
                    best_match(&shapelet, &data.series[i], true)
                        .map_or(f64::INFINITY, |m| m.distance)
                })
                .collect();
            if let Some((gain, gap, threshold)) = best_split(&dists, &labels, base_entropy) {
                let better = match &best {
                    None => true,
                    Some((bg, bgap, _, _)) => {
                        gain > *bg + 1e-12 || (gain > *bg - 1e-12 && gap > *bgap)
                    }
                };
                if better {
                    best = Some((gain, gap, shapelet, threshold));
                }
            }
        }
    }

    let Some((gain, _gap, shapelet, threshold)) = best else {
        return Node::Leaf(majority(&labels));
    };
    if gain <= 1e-9 {
        return Node::Leaf(majority(&labels));
    }

    // Partition and recurse.
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    for &i in indices {
        let d = best_match(&shapelet, &data.series[i], true).map_or(f64::INFINITY, |m| m.distance);
        if d <= threshold {
            left_idx.push(i);
        } else {
            right_idx.push(i);
        }
    }
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf(majority(&labels));
    }
    Node::Split {
        shapelet,
        threshold,
        left: Box::new(build_node(data, &left_idx, params, depth + 1, rng)),
        right: Box::new(build_node(data, &right_idx, params, depth + 1, rng)),
    }
}

/// Finds the threshold maximizing information gain over the sorted
/// distances; returns `(gain, separation gap, threshold)`.
fn best_split(dists: &[f64], labels: &[Label], base_entropy: f64) -> Option<(f64, f64, f64)> {
    let mut order: Vec<usize> = (0..dists.len()).collect();
    order.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    let n = dists.len() as f64;
    let mut best: Option<(f64, f64, f64)> = None;
    for w in 1..order.len() {
        let lo = dists[order[w - 1]];
        let hi = dists[order[w]];
        if hi <= lo {
            continue;
        }
        let threshold = (lo + hi) / 2.0;
        let left: Vec<Label> = order[..w].iter().map(|&i| labels[i]).collect();
        let right: Vec<Label> = order[w..].iter().map(|&i| labels[i]).collect();
        let gain = base_entropy
            - (left.len() as f64 / n) * entropy(&left)
            - (right.len() as f64 / n) * entropy(&right);
        let gap = hi - lo;
        let better = match best {
            None => true,
            Some((bg, bgap, _)) => gain > bg + 1e-12 || (gain > bg - 1e-12 && gap > bgap),
        };
        if better {
            best = Some((gain, gap, threshold));
        }
    }
    best
}

impl Classifier for FastShapelets {
    fn predict(&self, series: &[f64]) -> Label {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(l) => return *l,
                Node::Split {
                    shapelet,
                    threshold,
                    left,
                    right,
                } => {
                    let d =
                        best_match(shapelet, series, true).map_or(f64::INFINITY, |m| m.distance);
                    node = if d <= *threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn planted(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("fs", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let mut s: Vec<f64> = (0..len).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let motif = len / 5;
                let at = rng.gen_range(0..len - motif);
                for i in 0..motif {
                    let t = std::f64::consts::TAU * i as f64 / motif as f64;
                    s[at + i] += 2.5 * if class == 0 { t.sin() } else { -t.sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    #[test]
    fn classifies_planted_motifs() {
        let train = planted(12, 100, 1);
        let test = planted(10, 100, 2);
        let m = FastShapelets::train(&train, &FastShapeletsParams::default());
        let preds = m.predict_batch(&test.series);
        let errs = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 5, "{errs} errors of {}", preds.len());
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new("pure", Vec::new(), Vec::new());
        for _ in 0..6 {
            d.push((0..40).map(|i| (i as f64 * 0.3).sin()).collect(), 3);
        }
        d.push((0..40).map(|i| (i as f64 * 0.9).cos()).collect(), 5);
        let m = FastShapelets::train(&d, &FastShapeletsParams::default());
        // Whatever the structure, predictions must come from {3, 5}.
        let p = m.predict(&d.series[0]);
        assert!(p == 3 || p == 5);
    }

    #[test]
    fn depth_respects_cap() {
        let train = planted(15, 80, 3);
        let params = FastShapeletsParams {
            max_depth: 2,
            ..Default::default()
        };
        let m = FastShapelets::train(&train, &params);
        assert!(m.depth() <= 3, "depth {}", m.depth());
    }

    #[test]
    fn deterministic_per_seed() {
        let train = planted(10, 80, 4);
        let test = planted(6, 80, 5);
        let p = FastShapeletsParams::default();
        let m1 = FastShapelets::train(&train, &p);
        let m2 = FastShapelets::train(&train, &p);
        assert_eq!(
            m1.predict_batch(&test.series),
            m2.predict_batch(&test.series)
        );
    }

    #[test]
    fn entropy_and_majority_helpers() {
        assert_eq!(entropy(&[1, 1, 1]), 0.0);
        assert!((entropy(&[0, 1]) - 1.0).abs() < 1e-12);
        assert_eq!(majority(&[2, 2, 7]), 2);
    }

    #[test]
    fn best_split_finds_the_clean_cut() {
        let dists = [0.1, 0.2, 0.3, 5.0, 5.1, 5.2];
        let labels = [0, 0, 0, 1, 1, 1];
        let (gain, _gap, th) = best_split(&dists, &labels, entropy(&labels)).unwrap();
        assert!((gain - 1.0).abs() < 1e-9, "gain {gain}");
        assert!(th > 0.3 && th < 5.0);
    }

    #[test]
    fn best_split_handles_constant_distances() {
        let dists = [1.0, 1.0, 1.0];
        let labels = [0, 1, 0];
        assert!(best_split(&dists, &labels, entropy(&labels)).is_none());
    }

    #[test]
    #[should_panic(expected = "needs training data")]
    fn empty_training_panics() {
        FastShapelets::train(&Dataset::default(), &FastShapeletsParams::default());
    }
}
