//! # rpm-baselines — the five comparison classifiers of §5.1
//!
//! Everything the paper compares RPM against, implemented from scratch on
//! the same substrates so the runtime comparison (Table 2) is apples to
//! apples:
//!
//! * [`nn::OneNnEuclidean`] — 1-NN with Euclidean distance (NN-ED),
//! * [`nn::OneNnDtw`] — 1-NN with DTW and the best warping window
//!   selected by leave-one-out cross-validation (NN-DTWB),
//! * [`saxvsm::SaxVsm`] — SAX bag-of-words with tf-idf class vectors and
//!   cosine-similarity classification (Senin & Malinchik, 2013),
//! * [`fast_shapelets::FastShapelets`] — the SAX random-projection
//!   shapelet decision tree (Rakthanmanon & Keogh, 2013),
//! * [`learning_shapelets::LearningShapelets`] — jointly learned shapelets
//!   + logistic model via soft-minimum distances (Grabocka et al., 2014),
//! * [`shapelet_transform::ShapeletTransform`] — best-K shapelets +
//!   distance transform + SVM (Lines et al., 2012; §2.2's closest
//!   structural relative of RPM).
//!
//! All classifiers implement [`Classifier`] so the benchmark harness can
//! drive them uniformly.

pub mod dtw;
pub mod fast_shapelets;
pub mod learning_shapelets;
pub mod nn;
pub mod saxvsm;
pub mod shapelet_transform;

/// The shared prediction interface now lives in `rpm-ts` (so `rpm-core`
/// implements it too); re-exported here for compatibility.
pub use rpm_ts::Classifier;

pub use dtw::{dtw_distance, dtw_distance_banded};
pub use fast_shapelets::{FastShapelets, FastShapeletsParams};
pub use learning_shapelets::{LearningShapelets, LearningShapeletsParams};
pub use nn::{OneNnDtw, OneNnEuclidean};
pub use saxvsm::{SaxVsm, SaxVsmParams};
pub use shapelet_transform::{Shapelet, ShapeletTransform, ShapeletTransformParams};
