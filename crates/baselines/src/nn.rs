//! Nearest-neighbor classifiers: NN-ED and NN-DTW with the best warping
//! window (§5.1's two global-distance baselines).

use crate::dtw::dtw_distance_banded;
use crate::Classifier;
use rpm_ts::{sq_euclidean_early_abandon, znorm, Dataset, Label};

/// 1-NN with Euclidean distance over z-normalized series.
#[derive(Clone, Debug)]
pub struct OneNnEuclidean {
    train: Vec<Vec<f64>>,
    labels: Vec<Label>,
}

impl OneNnEuclidean {
    /// Stores the (z-normalized) training set.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn train(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "1-NN needs training data");
        Self {
            train: data.series.iter().map(|s| znorm(s)).collect(),
            labels: data.labels.clone(),
        }
    }
}

impl Classifier for OneNnEuclidean {
    fn predict(&self, series: &[f64]) -> Label {
        let q = znorm(series);
        let mut best = (0usize, f64::INFINITY);
        for (i, t) in self.train.iter().enumerate() {
            if t.len() != q.len() {
                continue;
            }
            if let Some(d) = sq_euclidean_early_abandon(&q, t, best.1) {
                if d < best.1 {
                    best = (i, d);
                }
            }
        }
        self.labels[best.0]
    }
}

/// 1-NN with DTW constrained to the best Sakoe–Chiba band, selected by
/// leave-one-out cross-validation on the training set over a grid of
/// window fractions (the standard NN-DTWB protocol).
#[derive(Clone, Debug)]
pub struct OneNnDtw {
    train: Vec<Vec<f64>>,
    labels: Vec<Label>,
    band: usize,
}

impl OneNnDtw {
    /// Window fractions examined by LOOCV (0%..10% of the series length,
    /// the range in which UCR best-windows almost always fall).
    pub const WINDOW_FRACTIONS: [f64; 6] = [0.0, 0.01, 0.02, 0.04, 0.06, 0.10];

    /// Trains by selecting the best warping window via LOOCV.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn train(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "1-NN needs training data");
        let train: Vec<Vec<f64>> = data.series.iter().map(|s| znorm(s)).collect();
        let labels = data.labels.clone();
        let m = data.max_len();

        let mut best_band = 0usize;
        let mut best_correct = 0usize;
        for &frac in &Self::WINDOW_FRACTIONS {
            let band = ((m as f64) * frac).round() as usize;
            let mut correct = 0usize;
            for i in 0..train.len() {
                let mut nearest = (usize::MAX, f64::INFINITY);
                for j in 0..train.len() {
                    if i == j {
                        continue;
                    }
                    let d = dtw_distance_banded(&train[i], &train[j], band);
                    if d < nearest.1 {
                        nearest = (j, d);
                    }
                }
                if nearest.0 != usize::MAX && labels[nearest.0] == labels[i] {
                    correct += 1;
                }
            }
            if correct > best_correct {
                best_correct = correct;
                best_band = band;
            }
        }
        Self {
            train,
            labels,
            band: best_band,
        }
    }

    /// The selected Sakoe–Chiba half-width (samples).
    pub fn band(&self) -> usize {
        self.band
    }
}

impl Classifier for OneNnDtw {
    fn predict(&self, series: &[f64]) -> Label {
        let q = znorm(series);
        let mut best = (0usize, f64::INFINITY);
        for (i, t) in self.train.iter().enumerate() {
            let d = dtw_distance_banded(&q, t, self.band);
            if d < best.1 {
                best = (i, d);
            }
        }
        self.labels[best.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Class 0: one bump; class 1: two bumps (positions jittered).
    fn bumps_dataset(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("bumps", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let mut s = vec![0.0; len];
                let jitter = rng.gen_range(0usize..6);
                let centers: &[usize] = if class == 0 { &[20] } else { &[15, 40] };
                for &c in centers {
                    let c = c + jitter;
                    for (i, v) in s.iter_mut().enumerate() {
                        let x = (i as f64 - c as f64) / 3.0;
                        *v += (-0.5 * x * x).exp();
                    }
                }
                for v in s.iter_mut() {
                    *v += 0.05 * (rng.gen::<f64>() - 0.5);
                }
                d.push(s, class);
            }
        }
        d
    }

    #[test]
    fn euclidean_nn_classifies_clean_shapes() {
        let train = bumps_dataset(10, 64, 1);
        let test = bumps_dataset(8, 64, 2);
        let m = OneNnEuclidean::train(&train);
        let preds = m.predict_batch(&test.series);
        let errs = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 3, "{errs} errors of {}", preds.len());
    }

    #[test]
    fn dtw_nn_handles_jitter_better_than_zero_band() {
        let train = bumps_dataset(10, 64, 3);
        let m = OneNnDtw::train(&train);
        // The LOOCV may pick any band, but prediction must be sane.
        let test = bumps_dataset(8, 64, 4);
        let preds = m.predict_batch(&test.series);
        let errs = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 2, "{errs} errors");
    }

    #[test]
    fn band_is_within_the_searched_range() {
        let train = bumps_dataset(6, 64, 5);
        let m = OneNnDtw::train(&train);
        assert!(m.band() <= (64.0f64 * 0.10).round() as usize);
    }

    #[test]
    fn single_training_example_per_class_works() {
        let mut d = Dataset::new("tiny", Vec::new(), Vec::new());
        d.push((0..32).map(|i| (i as f64 * 0.3).sin()).collect(), 0);
        d.push((0..32).map(|i| (i as f64 * 0.3).cos()).collect(), 1);
        let m = OneNnEuclidean::train(&d);
        assert_eq!(m.predict(&d.series[0]), 0);
        assert_eq!(m.predict(&d.series[1]), 1);
    }

    #[test]
    #[should_panic(expected = "needs training data")]
    fn empty_training_panics() {
        OneNnEuclidean::train(&Dataset::default());
    }
}
