//! The Shapelet Transform (Lines, Davis, Hills & Bagnall, KDD 2012).
//!
//! §2.2 of the RPM paper positions this as the closest structural relative
//! of RPM among shapelet methods: find the best K shapelets once, convert
//! every series into its vector of distances to them, and hand the vector
//! to any conventional classifier. The difference RPM stresses is the
//! *candidate source* — the Shapelet Transform still scores sliding-window
//! candidates exhaustively per length, where RPM gets its candidates from
//! grammar induction for free.
//!
//! This implementation follows the published algorithm with a stride-
//! subsampled candidate pool (a standard speedup that preserves the
//! method's character), information-gain quality, self-similarity pruning,
//! and a linear SVM on the transformed features.

use crate::Classifier;
use rpm_ml::{LinearSvm, SvmParams};
use rpm_ts::{best_match, Dataset, Label};
use std::collections::HashMap;

/// Hyper-parameters for [`ShapeletTransform`].
#[derive(Clone, Debug)]
pub struct ShapeletTransformParams {
    /// Candidate lengths as fractions of the series length.
    pub length_fractions: Vec<f64>,
    /// Number of shapelets kept for the transform.
    pub k: usize,
    /// Candidate start-position stride (1 = every position; larger values
    /// subsample the pool).
    pub stride: usize,
    /// Candidates whose source intervals overlap by more than this
    /// fraction are considered self-similar and pruned.
    pub overlap_fraction: f64,
    /// SVM hyper-parameters for the classifier on the transform.
    pub svm: SvmParams,
}

impl Default for ShapeletTransformParams {
    fn default() -> Self {
        Self {
            length_fractions: vec![0.1, 0.2, 0.35],
            k: 12,
            stride: 4,
            overlap_fraction: 0.5,
            svm: SvmParams::default(),
        }
    }
}

/// One retained shapelet with its provenance and quality.
#[derive(Clone, Debug)]
pub struct Shapelet {
    /// Raw values (taken from a training series).
    pub values: Vec<f64>,
    /// Source training series index.
    pub source: usize,
    /// Source start offset.
    pub offset: usize,
    /// Information gain of its best split on the training distances.
    pub quality: f64,
}

/// Trained Shapelet Transform classifier.
#[derive(Clone, Debug)]
pub struct ShapeletTransform {
    shapelets: Vec<Shapelet>,
    svm: LinearSvm,
}

fn entropy(counts: &HashMap<Label, usize>, total: usize) -> f64 {
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Information gain of the best threshold over `dists`.
fn best_gain(dists: &[f64], labels: &[Label]) -> f64 {
    let mut order: Vec<usize> = (0..dists.len()).collect();
    order.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    let n = dists.len();
    let mut all: HashMap<Label, usize> = HashMap::new();
    for &l in labels {
        *all.entry(l).or_insert(0) += 1;
    }
    let base = entropy(&all, n);
    let mut left: HashMap<Label, usize> = HashMap::new();
    let mut right = all;
    let mut best = 0.0f64;
    for w in 1..n {
        let moved = labels[order[w - 1]];
        *left.entry(moved).or_insert(0) += 1;
        if let Some(c) = right.get_mut(&moved) {
            *c -= 1;
            if *c == 0 {
                right.remove(&moved);
            }
        }
        if dists[order[w]] <= dists[order[w - 1]] {
            continue; // no threshold separates equal distances
        }
        let gain = base
            - (w as f64 / n as f64) * entropy(&left, w)
            - ((n - w) as f64 / n as f64) * entropy(&right, n - w);
        best = best.max(gain);
    }
    best
}

impl ShapeletTransform {
    /// Finds the best-K shapelets and trains the SVM on the transform.
    ///
    /// # Panics
    /// Panics on an empty training set or fewer than two classes.
    pub fn train(data: &Dataset, params: &ShapeletTransformParams) -> Self {
        assert!(!data.is_empty(), "Shapelet Transform needs training data");
        assert!(
            data.n_classes() >= 2,
            "Shapelet Transform needs two classes"
        );
        let min_len = data.min_len();
        let stride = params.stride.max(1);

        // --- Score every (subsampled) candidate.
        let mut scored: Vec<Shapelet> = Vec::new();
        for &frac in &params.length_fractions {
            let len = ((min_len as f64) * frac).round() as usize;
            if len < 4 || len > min_len {
                continue;
            }
            for (si, series) in data.series.iter().enumerate() {
                let mut offset = 0;
                while offset + len <= series.len() {
                    let candidate = &series[offset..offset + len];
                    let dists: Vec<f64> = data
                        .series
                        .iter()
                        .map(|t| {
                            best_match(candidate, t, true).map_or(f64::INFINITY, |m| m.distance)
                        })
                        .collect();
                    let quality = best_gain(&dists, &data.labels);
                    scored.push(Shapelet {
                        values: candidate.to_vec(),
                        source: si,
                        offset,
                        quality,
                    });
                    offset += stride;
                }
            }
        }
        assert!(
            !scored.is_empty(),
            "series too short for any candidate length"
        );

        // --- Keep the top K with self-similarity pruning: drop candidates
        //     overlapping an already-kept shapelet from the same series.
        scored.sort_by(|a, b| b.quality.total_cmp(&a.quality));
        let mut kept: Vec<Shapelet> = Vec::new();
        for c in scored {
            if kept.len() >= params.k {
                break;
            }
            let self_similar = kept.iter().any(|k| {
                if k.source != c.source {
                    return false;
                }
                let a0 = k.offset;
                let a1 = k.offset + k.values.len();
                let b0 = c.offset;
                let b1 = c.offset + c.values.len();
                let inter = a1.min(b1).saturating_sub(a0.max(b0));
                let shorter = k.values.len().min(c.values.len());
                (inter as f64) > params.overlap_fraction * shorter as f64
            });
            if !self_similar {
                kept.push(c);
            }
        }

        // --- Transform + SVM.
        let rows: Vec<Vec<f64>> = data
            .series
            .iter()
            .map(|s| Self::transform_with(&kept, s))
            .collect();
        let svm = LinearSvm::train(&rows, &data.labels, &params.svm);
        Self {
            shapelets: kept,
            svm,
        }
    }

    fn transform_with(shapelets: &[Shapelet], series: &[f64]) -> Vec<f64> {
        shapelets
            .iter()
            .map(|sh| best_match(&sh.values, series, true).map_or(f64::INFINITY, |m| m.distance))
            .collect()
    }

    /// The retained shapelets, best quality first.
    pub fn shapelets(&self) -> &[Shapelet] {
        &self.shapelets
    }

    /// The K-dimensional shapelet-distance vector of one series.
    pub fn transform(&self, series: &[f64]) -> Vec<f64> {
        Self::transform_with(&self.shapelets, series)
    }
}

impl Classifier for ShapeletTransform {
    fn predict(&self, series: &[f64]) -> Label {
        self.svm.predict(&self.transform(series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn planted(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("st", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let mut s: Vec<f64> = (0..len).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let motif = len / 5;
                let at = rng.gen_range(0..len - motif);
                for i in 0..motif {
                    let t = std::f64::consts::TAU * i as f64 / motif as f64;
                    s[at + i] += 2.5 * if class == 0 { t.sin() } else { -t.sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    #[test]
    fn classifies_planted_motifs() {
        let train = planted(10, 80, 1);
        let test = planted(8, 80, 2);
        let m = ShapeletTransform::train(&train, &ShapeletTransformParams::default());
        let preds = m.predict_batch(&test.series);
        let errs = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 4, "{errs} errors of {}", preds.len());
    }

    #[test]
    fn keeps_at_most_k_shapelets() {
        let train = planted(8, 80, 2);
        let params = ShapeletTransformParams {
            k: 5,
            ..Default::default()
        };
        let m = ShapeletTransform::train(&train, &params);
        assert!(m.shapelets().len() <= 5);
        assert!(!m.shapelets().is_empty());
    }

    #[test]
    fn shapelets_are_quality_sorted() {
        let train = planted(8, 80, 3);
        let m = ShapeletTransform::train(&train, &ShapeletTransformParams::default());
        for w in m.shapelets().windows(2) {
            assert!(w[0].quality >= w[1].quality);
        }
    }

    #[test]
    fn self_similarity_pruning_blocks_overlaps() {
        let train = planted(8, 80, 4);
        let m = ShapeletTransform::train(&train, &ShapeletTransformParams::default());
        for (i, a) in m.shapelets().iter().enumerate() {
            for b in &m.shapelets()[i + 1..] {
                if a.source == b.source {
                    let a0 = a.offset;
                    let a1 = a.offset + a.values.len();
                    let b0 = b.offset;
                    let b1 = b.offset + b.values.len();
                    let inter = a1.min(b1).saturating_sub(a0.max(b0));
                    let shorter = a.values.len().min(b.values.len());
                    assert!(
                        (inter as f64) <= 0.5 * shorter as f64,
                        "overlapping shapelets kept"
                    );
                }
            }
        }
    }

    #[test]
    fn transform_dimension_matches_k() {
        let train = planted(8, 80, 5);
        let m = ShapeletTransform::train(&train, &ShapeletTransformParams::default());
        let f = m.transform(&train.series[0]);
        assert_eq!(f.len(), m.shapelets().len());
    }

    #[test]
    fn best_gain_on_clean_separation_is_full_entropy() {
        let dists = [0.1, 0.2, 5.0, 6.0];
        let labels = [0, 0, 1, 1];
        assert!((best_gain(&dists, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn best_gain_on_shuffled_labels_is_lower() {
        let dists = [0.1, 5.0, 0.2, 6.0];
        let labels = [0, 0, 1, 1];
        assert!(best_gain(&dists, &labels) < 0.5);
    }

    #[test]
    #[should_panic(expected = "needs two classes")]
    fn single_class_panics() {
        let mut d = Dataset::new("x", Vec::new(), Vec::new());
        d.push(vec![0.0; 40], 0);
        ShapeletTransform::train(&d, &ShapeletTransformParams::default());
    }
}
