//! SAX-VSM (Senin & Malinchik, ICDM 2013).
//!
//! Each class becomes one tf-idf-weighted bag of SAX words built from all
//! of its training series (sliding window + numerosity reduction); an
//! unlabeled series is classified by cosine similarity between its term-
//! frequency vector and the class weight vectors. The paper positions
//! SAX-VSM as the closest relative of RPM: its "patterns" all share the
//! sliding-window length and nothing prunes them (§2.2), which is exactly
//! what RPM improves on.

use crate::Classifier;
use rpm_sax::{BagOfWords, SaxConfig, SaxWord};
use rpm_ts::{Dataset, Label};
use std::collections::{BTreeMap, HashMap};

/// Hyper-parameters for [`SaxVsm`].
#[derive(Clone, Debug)]
pub struct SaxVsmParams {
    /// Candidate SAX configurations; the constructor keeps the one with
    /// the best leave-split-out training accuracy (SAX-VSM's own parameter
    /// selection is DIRECT over the same space; a small candidate set
    /// keeps the baseline cheap without changing its character).
    pub configs: Vec<SaxConfig>,
    /// Fraction of the training data used for fitting during config
    /// selection.
    pub train_fraction: f64,
    /// RNG seed for the selection split.
    pub seed: u64,
}

impl SaxVsmParams {
    /// A sensible candidate set for series of length `m`.
    pub fn for_length(m: usize) -> Self {
        let mut configs = Vec::new();
        for frac in [4usize, 6, 8] {
            let w = (m / frac).max(4);
            for paa in [4usize, 6] {
                for alpha in [3usize, 4] {
                    configs.push(SaxConfig::new(w, paa.min(w), alpha));
                }
            }
        }
        Self {
            configs,
            train_fraction: 0.7,
            seed: 0x5a5a,
        }
    }
}

/// Trained SAX-VSM model.
#[derive(Clone, Debug)]
pub struct SaxVsm {
    sax: SaxConfig,
    /// Class -> (word -> tf-idf weight).
    weights: BTreeMap<Label, HashMap<SaxWord, f64>>,
    /// Class -> L2 norm of the weight vector.
    norms: BTreeMap<Label, f64>,
}

fn class_bags(data: &Dataset, sax: &SaxConfig) -> BTreeMap<Label, BagOfWords> {
    let mut bags: BTreeMap<Label, BagOfWords> = BTreeMap::new();
    for (series, label) in data.iter() {
        let bag = BagOfWords::from_series(series, sax);
        bags.entry(label).or_default().merge(&bag);
    }
    bags
}

fn fit_weights(data: &Dataset, sax: &SaxConfig) -> SaxVsm {
    let bags = class_bags(data, sax);
    let n_classes = bags.len() as f64;
    // Document frequency of each word across class bags.
    let mut df: HashMap<SaxWord, usize> = HashMap::new();
    for bag in bags.values() {
        for (w, _) in bag.iter() {
            *df.entry(w.clone()).or_insert(0) += 1;
        }
    }
    let mut weights: BTreeMap<Label, HashMap<SaxWord, f64>> = BTreeMap::new();
    let mut norms: BTreeMap<Label, f64> = BTreeMap::new();
    for (&label, bag) in &bags {
        let mut wv: HashMap<SaxWord, f64> = HashMap::new();
        for (word, count) in bag.iter() {
            let d = df[word] as f64;
            if d >= n_classes {
                continue; // appears in every class: idf = 0
            }
            let tf = 1.0 + (count as f64).ln();
            let idf = (n_classes / d).log10();
            let w = tf * idf;
            if w > 0.0 {
                wv.insert(word.clone(), w);
            }
        }
        let norm = wv.values().map(|v| v * v).sum::<f64>().sqrt();
        weights.insert(label, wv);
        norms.insert(label, norm);
    }
    SaxVsm {
        sax: *sax,
        weights,
        norms,
    }
}

impl SaxVsm {
    /// Trains with config selection over `params.configs`.
    ///
    /// # Panics
    /// Panics on an empty training set or an empty config list.
    pub fn train(data: &Dataset, params: &SaxVsmParams) -> Self {
        assert!(!data.is_empty(), "SAX-VSM needs training data");
        assert!(!params.configs.is_empty(), "no candidate configs");
        if params.configs.len() == 1 {
            return fit_weights(data, &params.configs[0]);
        }
        let (tr_idx, va_idx) =
            rpm_ml::shuffled_stratified_split(&data.labels, params.train_fraction, params.seed);
        let sub = data.subset(&tr_idx);
        let val = data.subset(&va_idx);
        let mut best: Option<(usize, SaxConfig)> = None;
        for cfg in &params.configs {
            if cfg.window > sub.min_len() {
                continue;
            }
            let model = fit_weights(&sub, cfg);
            let correct = val.iter().filter(|(s, l)| model.predict(s) == *l).count();
            if best.is_none_or(|(c, _)| correct > c) {
                best = Some((correct, *cfg));
            }
        }
        let chosen = best.map(|(_, c)| c).unwrap_or(params.configs[0]);
        fit_weights(data, &chosen)
    }

    /// Trains with the *original* SAX-VSM protocol: DIRECT optimization of
    /// (window, PAA, alphabet) against validation accuracy (Senin &
    /// Malinchik use exactly this optimizer), then a final fit on the full
    /// training set. Costlier than the candidate-list constructor but
    /// closer to the published method.
    pub fn train_with_direct(data: &Dataset, max_evals: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "SAX-VSM needs training data");
        let (tr_idx, va_idx) = rpm_ml::shuffled_stratified_split(&data.labels, 0.7, seed);
        let sub = data.subset(&tr_idx);
        let val = data.subset(&va_idx);
        let min_len = sub.min_len().max(8) as i64;
        let lo = [(min_len / 8).clamp(4, min_len / 2), 3, 3];
        let hi = [(min_len / 2).max(lo[0]), 8, 8];
        let (point, _err, _n) = rpm_opt::direct_minimize_integer(
            |p| {
                let window = p[0].max(2) as usize;
                if window > sub.min_len() {
                    return 1.0;
                }
                let cfg = SaxConfig::new(
                    window,
                    (p[1].max(2) as usize).min(window),
                    p[2].clamp(2, 12) as usize,
                );
                let model = fit_weights(&sub, &cfg);
                let correct = val.iter().filter(|(s, l)| model.predict(s) == *l).count();
                1.0 - correct as f64 / val.len().max(1) as f64
            },
            &lo,
            &hi,
            &rpm_opt::DirectParams {
                max_evals: max_evals * 2,
                max_iters: 40,
                ..rpm_opt::DirectParams::default()
            },
        );
        let window = (point[0].max(2) as usize).min(data.min_len());
        let cfg = SaxConfig::new(
            window,
            (point[1].max(2) as usize).min(window),
            point[2].clamp(2, 12) as usize,
        );
        fit_weights(data, &cfg)
    }

    /// The selected SAX configuration.
    pub fn sax_config(&self) -> &SaxConfig {
        &self.sax
    }

    /// Cosine similarity of a series's term-frequency vector against each
    /// class, ordered by label.
    pub fn similarities(&self, series: &[f64]) -> BTreeMap<Label, f64> {
        let bag = BagOfWords::from_series(series, &self.sax);
        // Term-frequency vector of the query.
        let mut q: HashMap<&SaxWord, f64> = HashMap::new();
        for (w, c) in bag.iter() {
            q.insert(w, 1.0 + (c as f64).ln());
        }
        let q_norm = q.values().map(|v| v * v).sum::<f64>().sqrt();
        let mut sims = BTreeMap::new();
        for (&label, wv) in &self.weights {
            let mut dot = 0.0;
            for (word, tfq) in &q {
                if let Some(w) = wv.get(*word) {
                    dot += tfq * w;
                }
            }
            let denom = q_norm * self.norms[&label];
            sims.insert(label, if denom > 0.0 { dot / denom } else { 0.0 });
        }
        sims
    }
}

impl Classifier for SaxVsm {
    fn predict(&self, series: &[f64]) -> Label {
        let sims = self.similarities(series);
        sims.into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l)
            .expect("model has classes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn sine_vs_square(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("sv", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let s: Vec<f64> = (0..len)
                    .map(|i| {
                        let x = (i as f64 * 0.4 + phase).sin();
                        let v = if class == 0 { x } else { x.signum() };
                        v + 0.1 * (rng.gen::<f64>() - 0.5)
                    })
                    .collect();
                d.push(s, class);
            }
        }
        d
    }

    #[test]
    fn separates_waveform_families() {
        let train = sine_vs_square(15, 96, 1);
        let test = sine_vs_square(10, 96, 2);
        let m = SaxVsm::train(&train, &SaxVsmParams::for_length(96));
        let preds = m.predict_batch(&test.series);
        let errs = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 4, "{errs} errors of {}", preds.len());
    }

    #[test]
    fn similarities_cover_all_classes() {
        let train = sine_vs_square(8, 96, 3);
        let m = SaxVsm::train(&train, &SaxVsmParams::for_length(96));
        let sims = m.similarities(&train.series[0]);
        assert_eq!(sims.len(), 2);
        for v in sims.values() {
            assert!((-1.0..=1.0).contains(v));
        }
    }

    #[test]
    fn words_present_in_all_classes_get_zero_weight() {
        // Both classes identical => every word shared => all weights zero.
        let mut d = Dataset::new("same", Vec::new(), Vec::new());
        let s: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        for class in 0..2usize {
            for _ in 0..3 {
                d.push(s.clone(), class);
            }
        }
        let m = SaxVsm::train(
            &d,
            &SaxVsmParams {
                configs: vec![SaxConfig::new(16, 4, 4)],
                train_fraction: 0.7,
                seed: 0,
            },
        );
        for wv in m.weights.values() {
            assert!(wv.is_empty(), "shared words must vanish");
        }
    }

    #[test]
    fn single_config_skips_selection() {
        let train = sine_vs_square(6, 64, 4);
        let params = SaxVsmParams {
            configs: vec![SaxConfig::new(16, 4, 3)],
            train_fraction: 0.7,
            seed: 1,
        };
        let m = SaxVsm::train(&train, &params);
        assert_eq!(m.sax_config().window, 16);
    }

    #[test]
    fn direct_protocol_trains_and_classifies() {
        let train = sine_vs_square(12, 96, 6);
        let test = sine_vs_square(8, 96, 7);
        let m = SaxVsm::train_with_direct(&train, 6, 1);
        let errs = m
            .predict_batch(&test.series)
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 4, "{errs} errors of {}", test.len());
        assert!(m.sax_config().window <= 96);
    }

    #[test]
    #[should_panic(expected = "needs training data")]
    fn empty_training_panics() {
        SaxVsm::train(&Dataset::default(), &SaxVsmParams::for_length(64));
    }
}
