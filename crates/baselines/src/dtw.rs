//! Dynamic Time Warping with a Sakoe–Chiba band.

/// Unconstrained DTW distance (full band).
pub fn dtw_distance(a: &[f64], b: &[f64]) -> f64 {
    dtw_distance_banded(a, b, a.len().max(b.len()))
}

/// DTW distance constrained to a Sakoe–Chiba band of half-width `band`
/// (in samples). `band == 0` degenerates to Euclidean alignment along the
/// diagonal; a band at least `|a.len() - b.len()|` is required for a
/// finite distance on unequal lengths, and the function widens the band to
/// that minimum automatically.
///
/// Runs in O(n·band) time and O(n) space (two rolling rows).
pub fn dtw_distance_banded(a: &[f64], b: &[f64], band: usize) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let n = a.len();
    let m = b.len();
    let band = band.max(n.abs_diff(m));
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        if lo > hi {
            return inf;
        }
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&a, &a), 0.0);
        assert_eq!(dtw_distance_banded(&a, &a, 1), 0.0);
    }

    #[test]
    fn shifted_series_warp_to_near_zero() {
        // The same bump shifted by 2: Euclidean is large, DTW small.
        let a: Vec<f64> = (0..32)
            .map(|i| (-((i as f64 - 10.0) / 2.0).powi(2) / 2.0).exp())
            .collect();
        let b: Vec<f64> = (0..32)
            .map(|i| (-((i as f64 - 12.0) / 2.0).powi(2) / 2.0).exp())
            .collect();
        let eu = rpm_ts::euclidean(&a, &b);
        let dt = dtw_distance(&a, &b);
        assert!(dt < eu * 0.5, "dtw {dt} vs euclidean {eu}");
    }

    #[test]
    fn zero_band_equals_euclidean_on_equal_lengths() {
        let a = [0.0, 1.0, 4.0, 2.0];
        let b = [1.0, 1.5, 3.0, 0.0];
        let d0 = dtw_distance_banded(&a, &b, 0);
        assert!((d0 - rpm_ts::euclidean(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn wider_band_never_increases_distance() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7 + 1.0).sin()).collect();
        let mut last = f64::INFINITY;
        for band in [0usize, 1, 2, 5, 10, 20] {
            let d = dtw_distance_banded(&a, &b, band);
            assert!(d <= last + 1e-12, "band {band}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn unequal_lengths_are_supported() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 1.0, 1.0, 2.0, 3.0];
        let d = dtw_distance(&a, &b);
        assert!(d.is_finite());
        assert!(d < 1e-9, "b is a warped copy of a: {d}");
        // Tiny band still auto-widens to |n-m|.
        assert!(dtw_distance_banded(&a, &b, 0).is_finite());
    }

    #[test]
    fn symmetry() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.0];
        assert!((dtw_distance(&a, &b) - dtw_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn dtw_lower_bounds_euclidean() {
        let a = [0.5, 2.0, -1.0, 0.0, 3.0];
        let b = [1.0, 1.0, 0.0, -2.0, 2.0];
        assert!(dtw_distance(&a, &b) <= rpm_ts::euclidean(&a, &b) + 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw_distance(&[], &[]), 0.0);
        assert_eq!(dtw_distance(&[], &[1.0]), f64::INFINITY);
    }
}
