//! Learning Shapelets (Grabocka, Schilling, Wistuba & Schmidt-Thieme,
//! KDD 2014).
//!
//! The accuracy-leading baseline of the paper's Table 1: K shapelets and a
//! per-class logistic model are optimized *jointly* by gradient descent.
//! A series is represented by its soft-minimum distances to the shapelets
//! (soft so the argmin segment is differentiable); the classification loss
//! back-propagates into the shapelet values themselves.
//!
//! The paper's Table 2 shows this method paying for its accuracy with two
//! to three orders of magnitude more training time than RPM — reproducing
//! that gap is the point of carrying the full gradient loop here.

use crate::Classifier;
use rpm_cluster::kmeans;
use rpm_ts::{znorm, Dataset, Label};

/// Hyper-parameters for [`LearningShapelets`].
#[derive(Clone, Debug)]
pub struct LearningShapeletsParams {
    /// Shapelets per class per scale.
    pub k_per_class: usize,
    /// Base shapelet length as a fraction of the series length.
    pub length_fraction: f64,
    /// Number of length scales (scale `s` has length `s + 1` times the
    /// base length).
    pub n_scales: usize,
    /// Soft-minimum sharpness (the paper's α; strongly negative).
    pub alpha: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// L2 regularization on the classifier weights.
    pub lambda: f64,
    /// Gradient-descent iterations.
    pub max_iter: usize,
    /// RNG seed (k-means init).
    pub seed: u64,
}

impl Default for LearningShapeletsParams {
    fn default() -> Self {
        Self {
            k_per_class: 2,
            length_fraction: 0.15,
            n_scales: 2,
            alpha: -30.0,
            learning_rate: 0.05,
            lambda: 1e-3,
            max_iter: 200,
            seed: 0x1ea2,
        }
    }
}

/// Trained Learning Shapelets model.
#[derive(Clone, Debug)]
pub struct LearningShapelets {
    shapelets: Vec<Vec<f64>>,
    classes: Vec<Label>,
    /// `classes.len()` rows of `shapelets.len() + 1` weights (bias last).
    weights: Vec<Vec<f64>>,
    alpha: f64,
    /// Feature scaler fitted on the initial shapelet features.
    mu: Vec<f64>,
    inv_sd: Vec<f64>,
}

/// Mean squared distance between a shapelet and the segment of `series`
/// starting at `j`.
fn segment_dist(shapelet: &[f64], series: &[f64], j: usize) -> f64 {
    let l = shapelet.len();
    let mut acc = 0.0;
    for (s, x) in shapelet.iter().zip(&series[j..j + l]) {
        let d = s - x;
        acc += d * d;
    }
    acc / l as f64
}

/// Soft-minimum feature and the per-segment weights needed for its
/// gradient. Returns `(m, weights)` where `weights[j]` is
/// `∂M/∂D_j` (before the chain rule into the shapelet values).
fn soft_min(dists: &[f64], alpha: f64) -> (f64, Vec<f64>) {
    let d_min = dists.iter().copied().fold(f64::INFINITY, f64::min);
    let exps: Vec<f64> = dists.iter().map(|&d| (alpha * (d - d_min)).exp()).collect();
    let psi: f64 = exps.iter().sum();
    let m: f64 = dists.iter().zip(&exps).map(|(&d, &e)| d * e).sum::<f64>() / psi;
    let weights = dists
        .iter()
        .zip(&exps)
        .map(|(&d, &e)| e * (1.0 + alpha * (d - m)) / psi)
        .collect();
    (m, weights)
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl LearningShapelets {
    /// Trains shapelets and classifier jointly.
    ///
    /// # Panics
    /// Panics on an empty training set or fewer than two classes.
    pub fn train(data: &Dataset, params: &LearningShapeletsParams) -> Self {
        assert!(!data.is_empty(), "Learning Shapelets needs training data");
        let classes = data.classes();
        assert!(classes.len() >= 2, "Learning Shapelets needs two classes");
        let series: Vec<Vec<f64>> = data.series.iter().map(|s| znorm(s)).collect();
        let min_len = series.iter().map(Vec::len).min().unwrap();

        // --- Initialize shapelets: k-means centroids of all segments per
        //     scale.
        let k_total_per_scale = params.k_per_class * classes.len();
        let mut shapelets: Vec<Vec<f64>> = Vec::new();
        for scale in 0..params.n_scales.max(1) {
            let l =
                (((scale + 1) as f64) * params.length_fraction * min_len as f64).round() as usize;
            let l = l.clamp(4, min_len);
            let mut segments: Vec<Vec<f64>> = Vec::new();
            for s in &series {
                let step = (l / 2).max(1);
                let mut j = 0;
                while j + l <= s.len() {
                    segments.push(s[j..j + l].to_vec());
                    j += step;
                }
            }
            if segments.is_empty() {
                continue;
            }
            let km = kmeans(&segments, k_total_per_scale, 30, params.seed + scale as u64);
            shapelets.extend(km.centroids);
        }
        assert!(
            !shapelets.is_empty(),
            "series too short for any shapelet scale"
        );

        let k = shapelets.len();
        let n = series.len();
        let mut weights = vec![vec![0.0; k + 1]; classes.len()];

        // --- Feature standardization: soft-min distances vary in scale
        //     with shapelet length; fit a scaler on the initial features
        //     so the logistic weights are well-conditioned (without it the
        //     joint optimization crawls — the shapelet gradients are
        //     proportional to the classifier weights).
        let initial_feats: Vec<Vec<f64>> = series
            .iter()
            .map(|s| {
                shapelets
                    .iter()
                    .map(|sh| {
                        let dists: Vec<f64> = (0..=s.len() - sh.len())
                            .map(|j| segment_dist(sh, s, j))
                            .collect();
                        soft_min(&dists, params.alpha).0
                    })
                    .collect()
            })
            .collect();
        let mut mu = vec![0.0; k];
        let mut sd = vec![0.0; k];
        for f in &initial_feats {
            for (m, v) in mu.iter_mut().zip(f) {
                *m += v / n as f64;
            }
        }
        for f in &initial_feats {
            for ((s, v), m) in sd.iter_mut().zip(f).zip(&mu) {
                *s += (v - m) * (v - m) / n as f64;
            }
        }
        let inv_sd: Vec<f64> = sd
            .iter()
            .map(|v| {
                let s = v.sqrt();
                if s < 1e-9 {
                    0.0
                } else {
                    1.0 / s
                }
            })
            .collect();

        // --- Warm start: fit the (convex) logistic weights on the fixed
        //     initial shapelets so phase two's shapelet gradients see a
        //     meaningful classifier.
        for _ in 0..params.max_iter {
            let mut grad_w = vec![vec![0.0; k + 1]; classes.len()];
            for (i, f) in initial_feats.iter().enumerate() {
                let z_feats: Vec<f64> = f
                    .iter()
                    .zip(mu.iter().zip(&inv_sd))
                    .map(|(v, (m, is))| (v - m) * is)
                    .collect();
                for (c, &cls) in classes.iter().enumerate() {
                    let y = if data.labels[i] == cls { 1.0 } else { 0.0 };
                    let z: f64 = weights[c][..k]
                        .iter()
                        .zip(&z_feats)
                        .map(|(w, f)| w * f)
                        .sum::<f64>()
                        + weights[c][k];
                    let err = sigmoid(z) - y;
                    for kk in 0..k {
                        grad_w[c][kk] += err * z_feats[kk];
                    }
                    grad_w[c][k] += err;
                }
            }
            let n_f = n as f64;
            for c in 0..classes.len() {
                for kk in 0..k {
                    weights[c][kk] -= 0.5 * (grad_w[c][kk] / n_f + params.lambda * weights[c][kk]);
                }
                weights[c][k] -= 0.5 * grad_w[c][k] / n_f;
            }
        }

        // --- Joint gradient descent (full batch).
        for _ in 0..params.max_iter {
            // Forward: features + softmin weights per (series, shapelet).
            let mut feats = vec![vec![0.0; k]; n];
            let mut sm_weights: Vec<Vec<Vec<f64>>> = Vec::with_capacity(n);
            for (i, s) in series.iter().enumerate() {
                let mut per_shapelet = Vec::with_capacity(k);
                for (kk, sh) in shapelets.iter().enumerate() {
                    let j_max = s.len() - sh.len();
                    let dists: Vec<f64> = (0..=j_max).map(|j| segment_dist(sh, s, j)).collect();
                    let (m, w) = soft_min(&dists, params.alpha);
                    feats[i][kk] = m;
                    per_shapelet.push(w);
                }
                sm_weights.push(per_shapelet);
            }

            // Gradients (features standardized with the fixed scaler;
            // the chain rule contributes a 1/sd factor to the shapelet
            // gradients).
            let mut grad_w = vec![vec![0.0; k + 1]; classes.len()];
            let mut grad_s: Vec<Vec<f64>> =
                shapelets.iter().map(|sh| vec![0.0; sh.len()]).collect();
            for (i, s) in series.iter().enumerate() {
                let z_feats: Vec<f64> = feats[i]
                    .iter()
                    .zip(mu.iter().zip(&inv_sd))
                    .map(|(v, (m, is))| (v - m) * is)
                    .collect();
                for (c, &cls) in classes.iter().enumerate() {
                    let y = if data.labels[i] == cls { 1.0 } else { 0.0 };
                    let z: f64 = weights[c][..k]
                        .iter()
                        .zip(&z_feats)
                        .map(|(w, f)| w * f)
                        .sum::<f64>()
                        + weights[c][k];
                    let err = sigmoid(z) - y;
                    for kk in 0..k {
                        grad_w[c][kk] += err * z_feats[kk];
                    }
                    grad_w[c][k] += err;
                    // Chain into the shapelets.
                    for (kk, sh) in shapelets.iter().enumerate() {
                        let wck = weights[c][kk] * inv_sd[kk];
                        if wck == 0.0 {
                            continue;
                        }
                        let l = sh.len();
                        let sm = &sm_weights[i][kk];
                        for (j, &smw) in sm.iter().enumerate() {
                            if smw.abs() < 1e-12 {
                                continue;
                            }
                            let coeff = err * wck * smw * 2.0 / l as f64;
                            for (p, g) in grad_s[kk].iter_mut().enumerate() {
                                *g += coeff * (sh[p] - s[j + p]);
                            }
                        }
                    }
                }
            }

            let n_f = n as f64;
            for c in 0..classes.len() {
                for kk in 0..k {
                    weights[c][kk] -= params.learning_rate
                        * (grad_w[c][kk] / n_f + params.lambda * weights[c][kk]);
                }
                weights[c][k] -= params.learning_rate * grad_w[c][k] / n_f;
            }
            for (sh, g) in shapelets.iter_mut().zip(&grad_s) {
                for (v, gv) in sh.iter_mut().zip(g) {
                    *v -= params.learning_rate * gv / n_f;
                }
            }
        }

        Self {
            shapelets,
            classes,
            weights,
            alpha: params.alpha,
            mu,
            inv_sd,
        }
    }

    /// The published protocol: hyperparameter selection by validation
    /// split over a small grid of (shapelet count, length fraction,
    /// regularization) candidates, then a long final run on the full
    /// training set. This is what the paper's Table 2 timings charge LS
    /// for — Grabocka et al. cross-validate those hyper-parameters and run
    /// thousands of gradient iterations, which is exactly why LS is two to
    /// three orders of magnitude slower than RPM there.
    pub fn train_with_selection(data: &Dataset, seed: u64) -> Self {
        let grid = [(2usize, 0.125, 1e-3), (3, 0.2, 1e-3), (2, 0.3, 1e-2)];
        let (tr_idx, va_idx) = rpm_ml::shuffled_stratified_split(&data.labels, 0.7, seed);
        let sub = data.subset(&tr_idx);
        let val = data.subset(&va_idx);
        let mut best: Option<(usize, (usize, f64, f64))> = None;
        for &(k, lf, lambda) in &grid {
            let params = LearningShapeletsParams {
                k_per_class: k,
                length_fraction: lf,
                lambda,
                max_iter: 150,
                seed,
                ..Default::default()
            };
            if sub.n_classes() < 2 {
                break;
            }
            let model = Self::train(&sub, &params);
            let correct = val.iter().filter(|(s, l)| model.predict(s) == *l).count();
            if best.is_none_or(|(c, _)| correct > c) {
                best = Some((correct, (k, lf, lambda)));
            }
        }
        let (k, lf, lambda) = best.map(|(_, g)| g).unwrap_or(grid[0]);
        Self::train(
            data,
            &LearningShapeletsParams {
                k_per_class: k,
                length_fraction: lf,
                lambda,
                max_iter: 500,
                seed,
                ..Default::default()
            },
        )
    }

    /// The learned shapelets.
    pub fn shapelets(&self) -> &[Vec<f64>] {
        &self.shapelets
    }

    /// Soft-minimum feature vector of one series.
    pub fn features(&self, series: &[f64]) -> Vec<f64> {
        let s = znorm(series);
        self.shapelets
            .iter()
            .map(|sh| {
                if sh.len() > s.len() {
                    // Degenerate: compare against the whole series.
                    return segment_dist(&sh[..s.len()], &s, 0);
                }
                let dists: Vec<f64> = (0..=s.len() - sh.len())
                    .map(|j| segment_dist(sh, &s, j))
                    .collect();
                soft_min(&dists, self.alpha).0
            })
            .collect()
    }
}

impl Classifier for LearningShapelets {
    fn predict(&self, series: &[f64]) -> Label {
        let f = self.features(series);
        let zf: Vec<f64> = f
            .iter()
            .zip(self.mu.iter().zip(&self.inv_sd))
            .map(|(v, (m, is))| (v - m) * is)
            .collect();
        let k = self.shapelets.len();
        let mut best = (0usize, f64::NEG_INFINITY);
        for (c, w) in self.weights.iter().enumerate() {
            let z: f64 = w[..k].iter().zip(&zf).map(|(a, b)| a * b).sum::<f64>() + w[k];
            if z > best.1 {
                best = (c, z);
            }
        }
        self.classes[best.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn planted(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("ls", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let mut s: Vec<f64> = (0..len).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let motif = len / 5;
                let at = rng.gen_range(0..len - motif);
                for i in 0..motif {
                    let t = std::f64::consts::TAU * i as f64 / motif as f64;
                    s[at + i] += 2.5 * if class == 0 { t.sin() } else { -t.sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    fn quick_params() -> LearningShapeletsParams {
        LearningShapeletsParams {
            max_iter: 80,
            ..Default::default()
        }
    }

    #[test]
    fn classifies_planted_motifs() {
        let train = planted(10, 80, 1);
        let test = planted(8, 80, 2);
        let m = LearningShapelets::train(&train, &quick_params());
        let preds = m.predict_batch(&test.series);
        let errs = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(errs <= 4, "{errs} errors of {}", preds.len());
    }

    #[test]
    fn soft_min_approaches_hard_min() {
        let dists = [3.0, 1.0, 2.0];
        let (m, w) = soft_min(&dists, -60.0);
        assert!((m - 1.0).abs() < 1e-3, "softmin {m}");
        // Gradient mass concentrates on the argmin.
        assert!(w[1] > 0.9, "{w:?}");
    }

    #[test]
    fn soft_min_is_stable_for_large_distances() {
        let dists = [1e6, 2e6, 3e6];
        let (m, w) = soft_min(&dists, -30.0);
        assert!(m.is_finite());
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_have_expected_dimension() {
        let train = planted(8, 80, 3);
        let m = LearningShapelets::train(&train, &quick_params());
        let f = m.features(&train.series[0]);
        assert_eq!(f.len(), m.shapelets().len());
        assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn shapelet_count_matches_configuration() {
        let train = planted(8, 80, 4);
        let p = LearningShapeletsParams {
            k_per_class: 3,
            n_scales: 2,
            ..quick_params()
        };
        let m = LearningShapelets::train(&train, &p);
        // 3 per class × 2 classes × 2 scales.
        assert_eq!(m.shapelets().len(), 12);
    }

    #[test]
    fn deterministic() {
        let train = planted(6, 80, 5);
        let test = planted(4, 80, 6);
        let m1 = LearningShapelets::train(&train, &quick_params());
        let m2 = LearningShapelets::train(&train, &quick_params());
        assert_eq!(
            m1.predict_batch(&test.series),
            m2.predict_batch(&test.series)
        );
    }

    #[test]
    #[should_panic(expected = "needs two classes")]
    fn one_class_panics() {
        let mut d = Dataset::new("x", Vec::new(), Vec::new());
        d.push(vec![0.0; 40], 0);
        LearningShapelets::train(&d, &quick_params());
    }
}
