//! UCR archive file format I/O.
//!
//! UCR files are plain text: one series per row, the class label first,
//! then the observations, separated by commas (classic archive) or
//! whitespace (2018 archive). Labels may be arbitrary integers (including
//! negatives); we normalize them to dense `0..n_classes` on load, keeping
//! the mapping available through the returned [`LabelMap`].

use rpm_ts::Dataset;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Mapping from raw archive labels to the dense labels in the [`Dataset`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LabelMap {
    /// `raw[i]` is the archive label assigned dense label `i`.
    pub raw: Vec<i64>,
}

impl LabelMap {
    /// The dense label for a raw archive label, if seen.
    pub fn dense(&self, raw: i64) -> Option<usize> {
        self.raw.iter().position(|&r| r == raw)
    }
}

/// Per-stream account of what the lenient reader kept and what it
/// quarantined (and why). Counts are rows, not observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Rows accepted into the dataset.
    pub kept: usize,
    /// Rows whose label field did not parse as a number.
    pub bad_label: usize,
    /// Rows with an unparseable observation.
    pub bad_value: usize,
    /// Rows holding NaN or ±Inf observations.
    pub non_finite: usize,
    /// Rows whose length disagrees with the first accepted row's.
    pub ragged: usize,
    /// Rows with a label but no observations.
    pub empty: usize,
}

impl Quarantine {
    /// Rows refused, across all reasons.
    pub fn dropped(&self) -> usize {
        self.bad_label + self.bad_value + self.non_finite + self.ragged + self.empty
    }

    /// True when every row was accepted.
    pub fn is_clean(&self) -> bool {
        self.dropped() == 0
    }

    /// One-line human summary (`kept 198, dropped 2 (non-finite 1, ragged 1)`).
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("kept {} rows, dropped 0", self.kept);
        }
        let mut reasons = Vec::new();
        for (n, what) in [
            (self.bad_label, "bad-label"),
            (self.bad_value, "bad-value"),
            (self.non_finite, "non-finite"),
            (self.ragged, "ragged"),
            (self.empty, "empty"),
        ] {
            if n > 0 {
                reasons.push(format!("{what} {n}"));
            }
        }
        format!(
            "kept {} rows, dropped {} ({})",
            self.kept,
            self.dropped(),
            reasons.join(", ")
        )
    }
}

/// One parsed row, or the reason it was refused.
enum Row {
    Ok(i64, Vec<f64>),
    BadLabel,
    BadValue,
    NonFinite,
    Empty,
}

fn parse_row(trimmed: &str) -> Row {
    let mut fields = trimmed
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|f| !f.is_empty());
    let Some(label_field) = fields.next() else {
        return Row::BadLabel;
    };
    let Ok(raw_label) = label_field.parse::<f64>() else {
        return Row::BadLabel;
    };
    let mut values = Vec::new();
    for f in fields {
        match f.parse::<f64>() {
            Ok(v) if v.is_finite() => values.push(v),
            Ok(_) => return Row::NonFinite,
            Err(_) => return Row::BadValue,
        }
    }
    if values.is_empty() {
        return Row::Empty;
    }
    Row::Ok(raw_label as i64, values)
}

/// Dense re-labeling in sorted raw order. `partition_point` finds each
/// raw label's rank without a fallible lookup — every element of
/// `raw_labels` is in `uniq` by construction.
fn dense_labels(raw_labels: &[i64]) -> (Vec<usize>, LabelMap) {
    let mut uniq = raw_labels.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let labels = raw_labels
        .iter()
        .map(|r| uniq.partition_point(|u| u < r))
        .collect();
    (labels, LabelMap { raw: uniq })
}

/// Parses a UCR-format stream. Empty lines are skipped; fields may be
/// separated by commas or whitespace. Strict: the first malformed row
/// fails the whole stream (see [`read_ucr_lenient`] for the
/// quarantine-and-continue reader).
pub fn read_ucr(reader: impl Read, name: &str) -> std::io::Result<(Dataset, LabelMap)> {
    rpm_obs::fault::point("data.load")?;
    let mut series = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    let buf = BufReader::new(reader);
    for (line_no, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_row(trimmed) {
            Row::Ok(raw_label, values) => {
                raw_labels.push(raw_label);
                series.push(values);
            }
            Row::BadLabel => return Err(bad(line_no, "unparseable label")),
            Row::BadValue => return Err(bad(line_no, "unparseable value")),
            Row::NonFinite => return Err(bad(line_no, "non-finite observation")),
            Row::Empty => return Err(bad(line_no, "row has no observations")),
        }
    }
    let (labels, map) = dense_labels(&raw_labels);
    Ok((Dataset::new(name, series, labels), map))
}

/// Parses a UCR-format stream, skipping malformed rows instead of failing:
/// rows with unparseable labels or values, NaN/Inf observations, ragged
/// lengths (vs the first accepted row), or no observations are counted in
/// the returned [`Quarantine`] and dropped. Quarantined rows feed the
/// `data.quarantined` metric. Only I/O (or an injected `data.load` fault)
/// errors the call.
pub fn read_ucr_lenient(
    reader: impl Read,
    name: &str,
) -> std::io::Result<(Dataset, LabelMap, Quarantine)> {
    rpm_obs::fault::point("data.load")?;
    let mut series: Vec<Vec<f64>> = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    let mut q = Quarantine::default();
    let mut expected_len: Option<usize> = None;
    let buf = BufReader::new(reader);
    for line in buf.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_row(trimmed) {
            Row::Ok(raw_label, values) => {
                if *expected_len.get_or_insert(values.len()) != values.len() {
                    q.ragged += 1;
                    continue;
                }
                q.kept += 1;
                raw_labels.push(raw_label);
                series.push(values);
            }
            Row::BadLabel => q.bad_label += 1,
            Row::BadValue => q.bad_value += 1,
            Row::NonFinite => q.non_finite += 1,
            Row::Empty => q.empty += 1,
        }
    }
    if q.dropped() > 0 {
        rpm_obs::metrics().data_quarantined.add(q.dropped() as u64);
    }
    let (labels, map) = dense_labels(&raw_labels);
    Ok((Dataset::new(name, series, labels), map, q))
}

/// Reads a UCR file from disk.
pub fn read_ucr_file(path: impl AsRef<Path>) -> std::io::Result<(Dataset, LabelMap)> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let file = std::fs::File::open(path)?;
    read_ucr(file, &name)
}

/// Reads a UCR file from disk with the lenient (quarantining) reader.
pub fn read_ucr_file_lenient(
    path: impl AsRef<Path>,
) -> std::io::Result<(Dataset, LabelMap, Quarantine)> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let file = std::fs::File::open(path)?;
    read_ucr_lenient(file, &name)
}

/// Writes `dataset` in comma-separated UCR format. Dense labels are
/// written as-is.
pub fn write_ucr(dataset: &Dataset, mut writer: impl Write) -> std::io::Result<()> {
    let mut line = String::new();
    for (s, l) in dataset.iter() {
        line.clear();
        let _ = write!(line, "{l}");
        for v in s {
            let _ = write!(line, ",{v}");
        }
        line.push('\n');
        writer.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn bad(line_no: usize, what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("UCR parse error on line {}: {what}", line_no + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated() {
        let text = "1,0.5,1.5,2.5\n2,3.0,4.0,5.0\n";
        let (d, map) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(d.series[0], vec![0.5, 1.5, 2.5]);
        assert_eq!(map.raw, vec![1, 2]);
        assert_eq!(map.dense(2), Some(1));
        assert_eq!(map.dense(9), None);
    }

    #[test]
    fn parses_whitespace_separated() {
        let text = " -1  0.5 1.5\n 1  2.0 3.0\n";
        let (d, map) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(map.raw, vec![-1, 1]);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "\n1,1.0\n\n2,2.0\n\n";
        let (d, _) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn labels_written_then_reread_roundtrip() {
        let d = Dataset::new(
            "rt",
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 0],
        );
        let mut buf = Vec::new();
        write_ucr(&d, &mut buf).unwrap();
        let (d2, _) = read_ucr(buf.as_slice(), "rt").unwrap();
        assert_eq!(d.series, d2.series);
        assert_eq!(d.labels, d2.labels);
    }

    #[test]
    fn float_labels_truncate_like_the_archive() {
        let text = "1.0,0.5\n2.0,0.7\n";
        let (d, map) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(map.raw, vec![1, 2]);
    }

    #[test]
    fn rejects_empty_rows() {
        let err = read_ucr("3\n".as_bytes(), "t").unwrap_err();
        assert!(err.to_string().contains("no observations"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_ucr("abc,1.0\n".as_bytes(), "t").is_err());
        assert!(read_ucr("1,abc\n".as_bytes(), "t").is_err());
    }

    #[test]
    fn strict_rejects_non_finite_observations() {
        assert!(read_ucr("1,NaN,2.0\n".as_bytes(), "t").is_err());
        assert!(read_ucr("1,inf,2.0\n".as_bytes(), "t").is_err());
    }

    #[test]
    fn lenient_quarantines_instead_of_failing() {
        let text = "1,0.5,1.5\n\
                    2,NaN,1.0\n\
                    abc,1.0,2.0\n\
                    1,oops,2.0\n\
                    2,3.0,4.0\n\
                    2,1.0,2.0,3.0\n\
                    3\n";
        let (d, map, q) = read_ucr_lenient(text.as_bytes(), "t").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(map.raw, vec![1, 2]);
        assert_eq!(
            q,
            Quarantine {
                kept: 2,
                bad_label: 1,
                bad_value: 1,
                non_finite: 1,
                ragged: 1,
                empty: 1,
            }
        );
        assert_eq!(q.dropped(), 5);
        assert!(!q.is_clean());
        let summary = q.summary();
        assert!(summary.contains("kept 2"), "{summary}");
        assert!(summary.contains("non-finite 1"), "{summary}");
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let text = "1,0.5,1.5,2.5\n2,3.0,4.0,5.0\n";
        let (strict, smap) = read_ucr(text.as_bytes(), "t").unwrap();
        let (lenient, lmap, q) = read_ucr_lenient(text.as_bytes(), "t").unwrap();
        assert_eq!(strict.series, lenient.series);
        assert_eq!(strict.labels, lenient.labels);
        assert_eq!(smap, lmap);
        assert!(q.is_clean());
        assert_eq!(q.kept, 2);
        assert_eq!(q.summary(), "kept 2 rows, dropped 0");
    }

    #[test]
    fn lenient_on_all_bad_input_yields_empty_dataset() {
        let (d, map, q) = read_ucr_lenient("x,1\ny,2\n".as_bytes(), "t").unwrap();
        assert!(d.is_empty());
        assert!(map.raw.is_empty());
        assert_eq!(q.bad_label, 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rpm_ucr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Sample_TRAIN");
        let d = Dataset::new("Sample_TRAIN", vec![vec![1.5, -2.0]], vec![0]);
        let f = std::fs::File::create(&path).unwrap();
        write_ucr(&d, f).unwrap();
        let (d2, _) = read_ucr_file(&path).unwrap();
        assert_eq!(d2.name, "Sample_TRAIN");
        assert_eq!(d2.series, d.series);
        std::fs::remove_file(path).ok();
    }
}
