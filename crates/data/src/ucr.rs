//! UCR archive file format I/O.
//!
//! UCR files are plain text: one series per row, the class label first,
//! then the observations, separated by commas (classic archive) or
//! whitespace (2018 archive). Labels may be arbitrary integers (including
//! negatives); we normalize them to dense `0..n_classes` on load, keeping
//! the mapping available through the returned [`LabelMap`].

use rpm_ts::Dataset;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Mapping from raw archive labels to the dense labels in the [`Dataset`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LabelMap {
    /// `raw[i]` is the archive label assigned dense label `i`.
    pub raw: Vec<i64>,
}

impl LabelMap {
    /// The dense label for a raw archive label, if seen.
    pub fn dense(&self, raw: i64) -> Option<usize> {
        self.raw.iter().position(|&r| r == raw)
    }
}

/// Parses a UCR-format stream. Empty lines are skipped; fields may be
/// separated by commas or whitespace.
pub fn read_ucr(reader: impl Read, name: &str) -> std::io::Result<(Dataset, LabelMap)> {
    let mut series = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    let buf = BufReader::new(reader);
    for (line_no, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty());
        let label_field = fields.next().ok_or_else(|| bad(line_no, "missing label"))?;
        let raw_label: i64 = label_field
            .parse::<f64>()
            .map_err(|_| bad(line_no, "unparseable label"))? as i64;
        let values: Vec<f64> = fields
            .map(|f| f.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad(line_no, "unparseable value"))?;
        if values.is_empty() {
            return Err(bad(line_no, "row has no observations"));
        }
        raw_labels.push(raw_label);
        series.push(values);
    }
    // Dense re-labeling in sorted raw order.
    let mut uniq = raw_labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let labels: Vec<usize> = raw_labels
        .iter()
        .map(|r| uniq.binary_search(r).unwrap())
        .collect();
    Ok((Dataset::new(name, series, labels), LabelMap { raw: uniq }))
}

/// Reads a UCR file from disk.
pub fn read_ucr_file(path: impl AsRef<Path>) -> std::io::Result<(Dataset, LabelMap)> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let file = std::fs::File::open(path)?;
    read_ucr(file, &name)
}

/// Writes `dataset` in comma-separated UCR format. Dense labels are
/// written as-is.
pub fn write_ucr(dataset: &Dataset, mut writer: impl Write) -> std::io::Result<()> {
    let mut line = String::new();
    for (s, l) in dataset.iter() {
        line.clear();
        let _ = write!(line, "{l}");
        for v in s {
            let _ = write!(line, ",{v}");
        }
        line.push('\n');
        writer.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn bad(line_no: usize, what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("UCR parse error on line {}: {what}", line_no + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated() {
        let text = "1,0.5,1.5,2.5\n2,3.0,4.0,5.0\n";
        let (d, map) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(d.series[0], vec![0.5, 1.5, 2.5]);
        assert_eq!(map.raw, vec![1, 2]);
        assert_eq!(map.dense(2), Some(1));
        assert_eq!(map.dense(9), None);
    }

    #[test]
    fn parses_whitespace_separated() {
        let text = " -1  0.5 1.5\n 1  2.0 3.0\n";
        let (d, map) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(map.raw, vec![-1, 1]);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "\n1,1.0\n\n2,2.0\n\n";
        let (d, _) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn labels_written_then_reread_roundtrip() {
        let d = Dataset::new(
            "rt",
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 0],
        );
        let mut buf = Vec::new();
        write_ucr(&d, &mut buf).unwrap();
        let (d2, _) = read_ucr(buf.as_slice(), "rt").unwrap();
        assert_eq!(d.series, d2.series);
        assert_eq!(d.labels, d2.labels);
    }

    #[test]
    fn float_labels_truncate_like_the_archive() {
        let text = "1.0,0.5\n2.0,0.7\n";
        let (d, map) = read_ucr(text.as_bytes(), "t").unwrap();
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(map.raw, vec![1, 2]);
    }

    #[test]
    fn rejects_empty_rows() {
        let err = read_ucr("3\n".as_bytes(), "t").unwrap_err();
        assert!(err.to_string().contains("no observations"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_ucr("abc,1.0\n".as_bytes(), "t").is_err());
        assert!(read_ucr("1,abc\n".as_bytes(), "t").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rpm_ucr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Sample_TRAIN");
        let d = Dataset::new("Sample_TRAIN", vec![vec![1.5, -2.0]], vec![0]);
        let f = std::fs::File::create(&path).unwrap();
        write_ucr(&d, f).unwrap();
        let (d2, _) = read_ucr_file(&path).unwrap();
        assert_eq!(d2.name, "Sample_TRAIN");
        assert_eq!(d2.series, d.series);
        std::fs::remove_file(path).ok();
    }
}
