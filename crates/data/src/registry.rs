//! The named evaluation suite.
//!
//! One entry per dataset family used in the paper's tables, with class
//! counts and train/test sizes mirroring Table 1 (test sets scaled down
//! where the archive's are huge — the relative comparisons are unaffected,
//! only the variance of the estimates changes).

use crate::{cbf, control, ecg, misc, motion, sensor, shapes, spectra};
use rpm_ts::Dataset;

/// Descriptor of one suite dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Suite name (matches the paper's dataset naming).
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Training set size (total across classes).
    pub train: usize,
    /// Test set size (total across classes).
    pub test: usize,
    /// Series length.
    pub length: usize,
}

/// The full evaluation suite (18 families spanning the paper's categories:
/// synthetic, spectro, ECG, motion, shape, sensor).
pub fn suite() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "CBF",
            classes: 3,
            train: 30,
            test: 150,
            length: 128,
        },
        DatasetSpec {
            name: "Coffee",
            classes: 2,
            train: 28,
            test: 28,
            length: 286,
        },
        DatasetSpec {
            name: "GunPoint",
            classes: 2,
            train: 50,
            test: 150,
            length: 150,
        },
        DatasetSpec {
            name: "ECGFiveDays",
            classes: 2,
            train: 23,
            test: 200,
            length: 136,
        },
        DatasetSpec {
            name: "ItalyPowerDemand",
            classes: 2,
            train: 67,
            test: 200,
            length: 24,
        },
        DatasetSpec {
            name: "SyntheticControl",
            classes: 6,
            train: 120,
            test: 120,
            length: 60,
        },
        DatasetSpec {
            name: "TwoPatterns",
            classes: 4,
            train: 120,
            test: 200,
            length: 128,
        },
        DatasetSpec {
            name: "Trace",
            classes: 4,
            train: 100,
            test: 100,
            length: 200,
        },
        DatasetSpec {
            name: "SwedishLeaf",
            classes: 5,
            train: 100,
            test: 125,
            length: 128,
        },
        DatasetSpec {
            name: "OSULeaf",
            classes: 6,
            train: 120,
            test: 120,
            length: 256,
        },
        DatasetSpec {
            name: "FaceFour",
            classes: 4,
            train: 24,
            test: 88,
            length: 256,
        },
        DatasetSpec {
            name: "Wafer",
            classes: 2,
            train: 100,
            test: 200,
            length: 152,
        },
        DatasetSpec {
            name: "OliveOil",
            classes: 4,
            train: 30,
            test: 30,
            length: 285,
        },
        DatasetSpec {
            name: "Beef",
            classes: 5,
            train: 30,
            test: 30,
            length: 235,
        },
        DatasetSpec {
            name: "MoteStrain",
            classes: 2,
            train: 20,
            test: 200,
            length: 84,
        },
        DatasetSpec {
            name: "Lightning2",
            classes: 2,
            train: 60,
            test: 61,
            length: 256,
        },
        DatasetSpec {
            name: "SonyAIBORobotSurface",
            classes: 2,
            train: 20,
            test: 200,
            length: 70,
        },
        DatasetSpec {
            name: "Symbols",
            classes: 6,
            train: 25,
            test: 180,
            length: 256,
        },
    ]
}

fn split_counts(total: usize, classes: usize) -> usize {
    // Per-class count; generators are balanced, so round up and trim later.
    total.div_ceil(classes)
}

fn generate_total(name: &str, total: usize, classes: usize, length: usize, seed: u64) -> Dataset {
    let per_class = split_counts(total, classes);
    let full = match name {
        "CBF" => cbf::generate(per_class, length, seed),
        "Coffee" => spectra::coffee(per_class, length, seed),
        "GunPoint" => motion::generate(per_class, length, seed),
        "ECGFiveDays" => ecg::generate(per_class, length, seed),
        "ItalyPowerDemand" => misc::italy_power(per_class, length, seed),
        "SyntheticControl" => control::synthetic_control(per_class, length, seed),
        "TwoPatterns" => control::two_patterns(per_class, length, seed),
        "Trace" => control::trace(per_class, length, seed),
        "SwedishLeaf" => shapes::leaf("SwedishLeaf", 5, per_class, length, seed),
        "OSULeaf" => shapes::leaf("OSULeaf", 6, per_class, length, seed),
        "FaceFour" => shapes::face_four(per_class, length, seed),
        "Wafer" => misc::wafer(per_class, per_class, length, seed),
        "OliveOil" => spectra::olive_oil(per_class, length, seed),
        "Beef" => spectra::beef(per_class, length, seed),
        "MoteStrain" => sensor::mote_strain(per_class, length, seed),
        "Lightning2" => sensor::lightning2(per_class, length, seed),
        "SonyAIBORobotSurface" => sensor::sony_aibo(per_class, length, seed),
        "Symbols" => shapes::symbols(6, per_class, length, seed),
        other => panic!("unknown suite dataset {other:?}"),
    };
    // Trim to exactly `total`, round-robin across classes so every class
    // stays represented.
    let views = full.by_class();
    let mut order = Vec::new();
    let max_per = views.iter().map(|v| v.indices.len()).max().unwrap_or(0);
    'outer: for i in 0..max_per {
        for v in &views {
            if let Some(&idx) = v.indices.get(i) {
                order.push(idx);
                if order.len() == total {
                    break 'outer;
                }
            }
        }
    }
    full.subset(&order)
}

/// Generates the `(train, test)` pair for a suite dataset. Train and test
/// come from disjoint RNG streams of the same generative process, like the
/// archive's fixed splits.
///
/// # Panics
/// Panics on an unknown dataset name.
pub fn generate(spec: &DatasetSpec, seed: u64) -> (Dataset, Dataset) {
    let train = generate_total(
        spec.name,
        spec.train,
        spec.classes,
        spec.length,
        seed ^ 0xA11CE,
    );
    let test = generate_total(
        spec.name,
        spec.test,
        spec.classes,
        spec.length,
        seed ^ 0xB0B5_1ED5,
    );
    (train, test)
}

/// Looks up a suite spec by name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    suite().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_entry_generates_with_declared_shape() {
        for spec in suite() {
            let (train, test) = generate(&spec, 7);
            assert_eq!(train.len(), spec.train, "{}", spec.name);
            assert_eq!(test.len(), spec.test, "{}", spec.name);
            assert_eq!(train.n_classes(), spec.classes, "{}", spec.name);
            assert_eq!(test.n_classes(), spec.classes, "{}", spec.name);
            assert!(
                train.series.iter().all(|s| s.len() == spec.length),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn train_and_test_differ() {
        let spec = spec_by_name("CBF").unwrap();
        let (train, test) = generate(&spec, 7);
        assert_ne!(train.series[0], test.series[0]);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = spec_by_name("GunPoint").unwrap();
        assert_eq!(generate(&spec, 3), generate(&spec, 3));
    }

    #[test]
    fn class_balance_is_tight() {
        for spec in suite() {
            let (train, _) = generate(&spec, 1);
            let views = train.by_class();
            let max = views.iter().map(|v| v.indices.len()).max().unwrap();
            let min = views.iter().map(|v| v.indices.len()).min().unwrap();
            assert!(max - min <= 1, "{}: {min}..{max}", spec.name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(spec_by_name("NoSuchDataset").is_none());
    }
}
