//! Radial shape profiles — leaf and face families.
//!
//! Several UCR datasets (SwedishLeaf, OSULeaf, FaceFour, …) are *shape-
//! converted*: an image contour is radially scanned and the center-to-
//! boundary distance becomes a time series. These are the datasets the
//! rotation case study (§6.1) corrupts, because rotating the series is
//! exactly starting the radial scan elsewhere on the contour.
//!
//! We generate parametric contours `r(θ) = 1 + Σ a_k cos(kθ + φ) + bumps`
//! where the harmonic content (lobe count, serration) is the class
//! signature.

use crate::synth::{add_noise, rand_f64};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// One radial profile: `lobes` major lobes with `lobe_amp` amplitude plus
/// `serration` high-frequency teeth; per-instance random phase makes every
/// scan start at a different contour point (the datasets' natural
/// within-class variation).
pub fn radial_instance(
    lobes: usize,
    lobe_amp: f64,
    serration: f64,
    length: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let phase = rand_f64(rng, 0.0, std::f64::consts::TAU);
    let lobe_jitter = rand_f64(rng, 0.9, 1.1);
    let mut s: Vec<f64> = (0..length)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / length as f64;
            let mut r = 1.0 + lobe_amp * lobe_jitter * (lobes as f64 * theta + phase).cos();
            if serration > 0.0 {
                r += serration * ((lobes * 6) as f64 * theta + 2.0 * phase).cos();
            }
            r
        })
        .collect();
    add_noise(&mut s, 0.10, rng);
    s
}

/// Leaf-family dataset: `n_classes` classes with 2..=(n_classes+1) lobes,
/// alternating serration — SwedishLeaf-like at 5 classes, OSULeaf-like at 6.
pub fn leaf(name: &str, n_classes: usize, n_per_class: usize, length: usize, seed: u64) -> Dataset {
    assert!(n_classes >= 2, "need at least two leaf classes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(name, Vec::new(), Vec::new());
    for class in 0..n_classes {
        let lobes = class + 2;
        let serr = if class % 2 == 0 { 0.0 } else { 0.08 };
        for _ in 0..n_per_class {
            d.push(radial_instance(lobes, 0.3, serr, length, &mut rng), class);
        }
    }
    d
}

/// FaceFour-like dataset: four classes of head-profile scans sharing a
/// 2-lobe base contour and distinguished by a localized protrusion
/// ("nose") whose position and width relative to the contour differ per
/// class. Unlike [`radial_instance`]'s free phase, faces are scanned from
/// a consistent anchor (the chin), so only small phase jitter applies —
/// the class signature is a *local* morphological feature, which is what
/// makes the real FaceFour a subsequence-method-friendly dataset.
pub fn face_four(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("FaceFour", Vec::new(), Vec::new());
    for class in 0..4 {
        for _ in 0..n_per_class {
            let phase = rand_f64(&mut rng, -0.15, 0.15);
            let lobe_jitter = rand_f64(&mut rng, 0.9, 1.1);
            let mut s: Vec<f64> = (0..length)
                .map(|i| {
                    let theta = std::f64::consts::TAU * i as f64 / length as f64;
                    1.0 + 0.2 * lobe_jitter * (2.0 * theta + phase).cos()
                })
                .collect();
            // Class-specific protrusion: position quarter and width differ.
            let center =
                (0.15 + 0.2 * class as f64 + rand_f64(&mut rng, -0.02, 0.02)) * length as f64;
            let width = (0.02 + 0.012 * class as f64) * length as f64;
            crate::synth::add_gaussian_peak(&mut s, center, width, 0.6);
            add_noise(&mut s, 0.03, &mut rng);
            d.push(s, class);
        }
    }
    d
}

/// Symbols-like: hand-drawn symbol trajectories. Each class owns a smooth
/// random template (a low-frequency Fourier curve drawn from a
/// class-seeded RNG); instances are locally time-warped, amplitude-jittered
/// noisy copies — the within-class warping is what makes the archive's
/// Symbols favor elastic and subsequence methods over NN-ED.
pub fn symbols(n_classes: usize, n_per_class: usize, length: usize, seed: u64) -> Dataset {
    assert!(n_classes >= 2, "need at least two symbol classes");
    let mut d = Dataset::new("Symbols", Vec::new(), Vec::new());
    let mut rng = StdRng::seed_from_u64(seed);
    for class in 0..n_classes {
        // The template is the class's *identity* and must be identical
        // across train/test splits (which use different seeds), so it is
        // derived from the class index alone; only the per-instance
        // warping/jitter below consumes the split seed.
        let mut template_rng = StdRng::seed_from_u64(0x5b5b + class as u64 * 7919);
        let coeffs: Vec<(f64, f64)> = (1..=4)
            .map(|_| {
                (
                    rand_f64(&mut template_rng, -1.0, 1.0),
                    rand_f64(&mut template_rng, 0.0, std::f64::consts::TAU),
                )
            })
            .collect();
        let template = |x: f64| -> f64 {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &(a, p))| a * (std::f64::consts::TAU * (k + 1) as f64 * x + p).sin())
                .sum()
        };
        for _ in 0..n_per_class {
            // Smooth local time warping: x -> x + w sin(2πx + φ).
            let warp_amp = rand_f64(&mut rng, 0.0, 0.04);
            let warp_phase = rand_f64(&mut rng, 0.0, std::f64::consts::TAU);
            let amp = rand_f64(&mut rng, 0.85, 1.15);
            let mut s: Vec<f64> = (0..length)
                .map(|i| {
                    let x = i as f64 / length as f64;
                    let xw = (x + warp_amp * (std::f64::consts::TAU * x + warp_phase).sin())
                        .clamp(0.0, 1.0);
                    amp * template(xw)
                })
                .collect();
            add_noise(&mut s, 0.05, &mut rng);
            d.push(s, class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lobe_count_sets_dominant_frequency() {
        let mut rng = StdRng::seed_from_u64(31);
        for lobes in 2..6 {
            let raw = radial_instance(lobes, 0.4, 0.0, 256, &mut rng);
            // Smooth out the sensor noise before counting mean crossings:
            // a k-lobe profile crosses its mean 2k times per revolution.
            let s: Vec<f64> = (0..raw.len())
                .map(|i| {
                    let lo = i.saturating_sub(4);
                    let hi = (i + 5).min(raw.len());
                    raw[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
                })
                .collect();
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let crossings = s
                .windows(2)
                .filter(|w| (w[0] - mean).signum() != (w[1] - mean).signum())
                .count();
            assert!(
                crossings.abs_diff(2 * lobes) <= 3,
                "lobes={lobes}: {crossings} crossings"
            );
        }
    }

    #[test]
    fn leaf_dataset_shape() {
        let d = leaf("SwedishLeaf", 5, 10, 128, 1);
        assert_eq!(d.len(), 50);
        assert_eq!(d.n_classes(), 5);
        assert!(d.series.iter().all(|s| s.len() == 128));
    }

    #[test]
    fn face_four_protrusions_differ_by_class() {
        // Deterministic per class: the protrusion sits in a different
        // quadrant, visible through the class-mean argmax.
        let d = face_four(30, 256, 2);
        let mut maxima = Vec::new();
        for view in d.by_class() {
            let mut mean: Vec<f64> = vec![0.0; 256];
            for m in &view.members {
                // Remove each instance's random phase by aligning to its own
                // peak; just use the raw mean of peak positions instead.
                let argmax = m
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap();
                mean[argmax] += 1.0;
            }
            let mode = mean
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _): (usize, &f64)| i)
                .unwrap();
            maxima.push(mode);
        }
        // The four modes must be distinct and roughly ordered.
        let mut sorted = maxima.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            sorted.len() >= 3,
            "protrusion positions overlap: {maxima:?}"
        );
    }

    #[test]
    fn determinism() {
        assert_eq!(leaf("L", 3, 4, 64, 9), leaf("L", 3, 4, 64, 9));
        assert_eq!(face_four(4, 128, 9), face_four(4, 128, 9));
        assert_eq!(symbols(4, 5, 128, 9), symbols(4, 5, 128, 9));
    }

    #[test]
    fn symbols_templates_differ_across_classes() {
        let d = symbols(6, 8, 128, 3);
        assert_eq!(d.n_classes(), 6);
        // Per-class mean curves must be mutually distinct: compare the
        // first two class means pointwise.
        let views = d.by_class();
        let mean = |v: &rpm_ts::Dataset, idxs: &[usize]| -> Vec<f64> {
            let mut m = vec![0.0; 128];
            for &i in idxs {
                for (a, b) in m.iter_mut().zip(&v.series[i]) {
                    *a += b / idxs.len() as f64;
                }
            }
            m
        };
        let m0 = mean(&d, &views[0].indices);
        let m1 = mean(&d, &views[1].indices);
        let dist: f64 = m0.iter().zip(&m1).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 10.0, "class templates too similar: {dist}");
    }

    #[test]
    fn symbols_instances_vary_within_class() {
        let d = symbols(2, 4, 128, 5);
        let v = &d.by_class()[0];
        assert_ne!(d.series[v.indices[0]], d.series[v.indices[1]]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_class_leaf_panics() {
        leaf("L", 1, 4, 64, 0);
    }
}
