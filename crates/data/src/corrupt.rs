//! Test-set corruptions.
//!
//! * Rotation (§6.1): "To shift or rotate a time series, we randomly
//!   choose a cut point in the time series, and swap the sections before
//!   and after the cut point."
//! * Sensor dropout (robustness harness): observations are knocked out to
//!   NaN at a configurable rate, modeling lossy telemetry; the serving
//!   side repairs the holes with [`interpolate_gaps`] before classifying.
//!
//! Training data stays untouched; only the test set is corrupted.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rpm_ts::{rotate, Dataset};

/// Returns a copy of `dataset` with every series rotated at an independent
/// uniformly random cut point. Labels are preserved.
pub fn rotate_dataset(dataset: &Dataset, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let series = dataset
        .series
        .iter()
        .map(|s| {
            if s.len() < 2 {
                s.clone()
            } else {
                let cut = rng.gen_range(1..s.len());
                rotate(s, cut)
            }
        })
        .collect();
    Dataset::new(
        format!("{}-rotated", dataset.name),
        series,
        dataset.labels.clone(),
    )
}

/// Returns a copy of `dataset` with each observation independently
/// replaced by NaN with probability `fraction` (clamped to `[0, 1]`).
/// Labels are preserved; the draw order is row-major, so the result is a
/// pure function of `(dataset, fraction, seed)`.
pub fn dropout_dataset(dataset: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let series = dataset
        .series
        .iter()
        .map(|s| {
            s.iter()
                .map(|&v| {
                    if rng.gen::<f64>() < fraction {
                        f64::NAN
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Dataset::new(
        format!("{}-dropout", dataset.name),
        series,
        dataset.labels.clone(),
    )
}

/// Repairs non-finite holes by linear interpolation between the nearest
/// finite neighbors; leading/trailing gaps copy the nearest finite value.
/// A series with no finite observation at all becomes zeros (the caller
/// should normally have quarantined it). Finite values pass through
/// bit-identically.
pub fn interpolate_gaps(dataset: &Dataset) -> Dataset {
    let series = dataset.series.iter().map(|s| repair_series(s)).collect();
    Dataset::new(dataset.name.clone(), series, dataset.labels.clone())
}

fn repair_series(s: &[f64]) -> Vec<f64> {
    if s.iter().all(|v| v.is_finite()) {
        return s.to_vec();
    }
    if !s.iter().any(|v| v.is_finite()) {
        return vec![0.0; s.len()];
    }
    let mut out = s.to_vec();
    let mut i = 0;
    while i < out.len() {
        if out[i].is_finite() {
            i += 1;
            continue;
        }
        // Gap [i, j): previous finite at i-1 (if any), next finite at j.
        let mut j = i;
        while j < out.len() && !out[j].is_finite() {
            j += 1;
        }
        let left = (i > 0).then(|| out[i - 1]);
        let right = (j < out.len()).then(|| out[j]);
        match (left, right) {
            (Some(l), Some(r)) => {
                let span = (j - i + 1) as f64;
                for (k, slot) in out[i..j].iter_mut().enumerate() {
                    let t = (k + 1) as f64 / span;
                    *slot = l + (r - l) * t;
                }
            }
            (Some(l), None) => out[i..j].fill(l),
            (None, Some(r)) => out[i..j].fill(r),
            (None, None) => unreachable!("a finite value exists"),
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                (0..32).map(|i| i as f64).collect(),
                (0..32).map(|i| (32 - i) as f64).collect(),
            ],
            vec![0, 1],
        )
    }

    #[test]
    fn labels_and_lengths_survive() {
        let d = toy();
        let r = rotate_dataset(&d, 1);
        assert_eq!(r.labels, d.labels);
        assert_eq!(r.series[0].len(), 32);
        assert!(r.name.contains("rotated"));
    }

    #[test]
    fn values_are_permuted_not_changed() {
        let d = toy();
        let r = rotate_dataset(&d, 2);
        for (orig, rot) in d.series.iter().zip(&r.series) {
            let mut a = orig.clone();
            let mut b = rot.clone();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rotation_actually_moves_something() {
        let d = toy();
        let r = rotate_dataset(&d, 3);
        assert_ne!(
            r.series[0], d.series[0],
            "cut in 1..len guarantees movement"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = toy();
        assert_eq!(rotate_dataset(&d, 4).series, rotate_dataset(&d, 4).series);
    }

    #[test]
    fn short_series_pass_through() {
        let d = Dataset::new("s", vec![vec![1.0]], vec![0]);
        let r = rotate_dataset(&d, 5);
        assert_eq!(r.series[0], vec![1.0]);
    }

    #[test]
    fn dropout_knocks_out_roughly_the_requested_fraction() {
        let d = Dataset::new("s", vec![(0..1000).map(|i| i as f64).collect()], vec![0]);
        let c = dropout_dataset(&d, 0.2, 7);
        let nans = c.series[0].iter().filter(|v| v.is_nan()).count();
        assert!((120..280).contains(&nans), "nans = {nans}");
        assert_eq!(c.labels, d.labels);
        assert!(c.name.contains("dropout"));
        // Surviving values are untouched.
        for (a, b) in d.series[0].iter().zip(&c.series[0]) {
            if b.is_finite() {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn dropout_is_deterministic_and_clamped() {
        let d = toy();
        assert_eq!(
            dropout_dataset(&d, 0.3, 4).series[0]
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            dropout_dataset(&d, 0.3, 4).series[0]
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert!(dropout_dataset(&d, 0.0, 4).series[0]
            .iter()
            .all(|v| v.is_finite()));
        assert!(dropout_dataset(&d, 2.0, 4).series[0]
            .iter()
            .all(|v| v.is_nan()));
    }

    #[test]
    fn interpolation_fills_interior_gaps_linearly() {
        let d = Dataset::new("s", vec![vec![0.0, f64::NAN, f64::NAN, 3.0, 4.0]], vec![0]);
        let r = interpolate_gaps(&d);
        assert_eq!(r.series[0], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolation_extends_edges_and_handles_hopeless_rows() {
        let d = Dataset::new(
            "s",
            vec![
                vec![f64::NAN, f64::NAN, 2.0, f64::NAN],
                vec![f64::NAN, f64::INFINITY],
                vec![1.0, 2.0],
            ],
            vec![0, 0, 0],
        );
        let r = interpolate_gaps(&d);
        assert_eq!(r.series[0], vec![2.0, 2.0, 2.0, 2.0]);
        assert_eq!(r.series[1], vec![0.0, 0.0]);
        assert_eq!(r.series[2], vec![1.0, 2.0]); // clean rows untouched
    }

    #[test]
    fn interpolation_repairs_dropout_to_classifiable_values() {
        let d = Dataset::new(
            "s",
            vec![(0..128).map(|i| (i as f64 * 0.1).sin()).collect()],
            vec![0],
        );
        let r = interpolate_gaps(&dropout_dataset(&d, 0.1, 9));
        assert!(r.series[0].iter().all(|v| v.is_finite()));
        // The repair should stay close to the original smooth signal.
        let max_err = d.series[0]
            .iter()
            .zip(&r.series[0])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.5, "max_err = {max_err}");
    }
}
