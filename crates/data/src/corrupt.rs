//! The rotation corruption of §6.1.
//!
//! "To shift or rotate a time series, we randomly choose a cut point in
//! the time series, and swap the sections before and after the cut point."
//! Training data stays untouched; only the test set is corrupted.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rpm_ts::{rotate, Dataset};

/// Returns a copy of `dataset` with every series rotated at an independent
/// uniformly random cut point. Labels are preserved.
pub fn rotate_dataset(dataset: &Dataset, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let series = dataset
        .series
        .iter()
        .map(|s| {
            if s.len() < 2 {
                s.clone()
            } else {
                let cut = rng.gen_range(1..s.len());
                rotate(s, cut)
            }
        })
        .collect();
    Dataset::new(
        format!("{}-rotated", dataset.name),
        series,
        dataset.labels.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                (0..32).map(|i| i as f64).collect(),
                (0..32).map(|i| (32 - i) as f64).collect(),
            ],
            vec![0, 1],
        )
    }

    #[test]
    fn labels_and_lengths_survive() {
        let d = toy();
        let r = rotate_dataset(&d, 1);
        assert_eq!(r.labels, d.labels);
        assert_eq!(r.series[0].len(), 32);
        assert!(r.name.contains("rotated"));
    }

    #[test]
    fn values_are_permuted_not_changed() {
        let d = toy();
        let r = rotate_dataset(&d, 2);
        for (orig, rot) in d.series.iter().zip(&r.series) {
            let mut a = orig.clone();
            let mut b = rot.clone();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rotation_actually_moves_something() {
        let d = toy();
        let r = rotate_dataset(&d, 3);
        assert_ne!(
            r.series[0], d.series[0],
            "cut in 1..len guarantees movement"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = toy();
        assert_eq!(rotate_dataset(&d, 4).series, rotate_dataset(&d, 4).series);
    }

    #[test]
    fn short_series_pass_through() {
        let d = Dataset::new("s", vec![vec![1.0]], vec![0]);
        let r = rotate_dataset(&d, 5);
        assert_eq!(r.series[0], vec![1.0]);
    }
}
