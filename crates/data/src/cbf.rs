//! Cylinder-Bell-Funnel (Saito, 1994) — the classic synthetic 3-class
//! benchmark the paper visualizes in Fig. 2.
//!
//! All classes share the template `(6 + η)·χ[a,b](t) + ε(t)` where
//! `η ~ N(0,1)`, `ε` is unit Gaussian noise, `a ~ U{16..32}` and
//! `b − a ~ U{32..96}`:
//!
//! * **Cylinder** — the characteristic function itself (plateau),
//! * **Bell** — multiplied by the rising ramp `(t−a)/(b−a)`,
//! * **Funnel** — multiplied by the falling ramp `(b−t)/(b−a)`.

use crate::synth::{rand_int, randn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// CBF class indices.
pub const CYLINDER: usize = 0;
/// Bell class index.
pub const BELL: usize = 1;
/// Funnel class index.
pub const FUNNEL: usize = 2;

/// Generates one CBF instance of the given class.
pub fn cbf_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 3, "CBF has classes 0..3");
    let a = rand_int(rng, length / 8, length / 4); // 16..32 at length 128
    let span = rand_int(rng, length / 4, (3 * length) / 4).max(2); // 32..96
    let b = (a + span).min(length - 1);
    let eta = randn(rng);
    let amp = 6.0 + eta;
    (0..length)
        .map(|t| {
            let noise = randn(rng);
            if t < a || t > b {
                noise
            } else {
                let shape = match class {
                    CYLINDER => 1.0,
                    BELL => (t - a) as f64 / (b - a) as f64,
                    _ => (b - t) as f64 / (b - a) as f64,
                };
                amp * shape + noise
            }
        })
        .collect()
}

/// Generates a balanced CBF dataset (`n_per_class` instances per class).
pub fn generate(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("CBF", Vec::new(), Vec::new());
    for class in 0..3 {
        for _ in 0..n_per_class {
            d.push(cbf_instance(class, length, &mut rng), class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_distinguishable_in_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let len = 128;
        // Average many instances per class: cylinder is flat-topped, bell
        // rises toward the right of its support, funnel falls.
        let mut means = vec![vec![0.0; len]; 3];
        #[allow(clippy::needless_range_loop)]
        for class in 0..3 {
            for _ in 0..n {
                let s = cbf_instance(class, len, &mut rng);
                for (m, v) in means[class].iter_mut().zip(&s) {
                    *m += v / n as f64;
                }
            }
        }
        // The mean bell has its mass late in the event window, the funnel
        // early, the cylinder in between; compare centers of mass.
        let com = |m: &[f64]| {
            let total: f64 = m.iter().map(|v| v.max(0.0)).sum();
            m.iter()
                .enumerate()
                .map(|(i, v)| i as f64 * v.max(0.0))
                .sum::<f64>()
                / total
        };
        let (c_cyl, c_bell, c_fun) = (
            com(&means[CYLINDER]),
            com(&means[BELL]),
            com(&means[FUNNEL]),
        );
        assert!(
            c_bell > c_cyl + 3.0,
            "bell mass is late: {c_bell} vs {c_cyl}"
        );
        assert!(
            c_fun < c_cyl - 3.0,
            "funnel mass is early: {c_fun} vs {c_cyl}"
        );
    }

    #[test]
    fn dataset_shape() {
        let d = generate(10, 128, 42);
        assert_eq!(d.len(), 30);
        assert_eq!(d.n_classes(), 3);
        assert!(d.series.iter().all(|s| s.len() == 128));
        assert_eq!(d.class_size(0), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(5, 64, 7);
        let b = generate(5, 64, 7);
        assert_eq!(a, b);
        let c = generate(5, 64, 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "classes 0..3")]
    fn invalid_class_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        cbf_instance(3, 128, &mut rng);
    }
}
