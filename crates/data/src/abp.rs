//! Arterial blood pressure (ABP) waveform simulator — the stand-in for the
//! MIMIC II medical-alarm case study (§6.2).
//!
//! Each instance is a window of consecutive ABP beats. One beat is modeled
//! as a fast systolic upstroke, an exponential decay interrupted by the
//! dicrotic notch, and a diastolic runoff. The *normal* class draws beats
//! around 120/80 mmHg with mild physiological variability; the *alarm*
//! class is a mixture of the three phenomena that trip ICU alarms:
//!
//! * hypotension — declining baseline pressure,
//! * damping — collapsed pulse pressure (catheter artifact),
//! * artifact — transient high-amplitude noise bursts.

use crate::synth::{add_noise, rand_f64, randn};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// Normal class label.
pub const NORMAL: usize = 0;
/// Alarm class label.
pub const ALARM: usize = 1;

/// Alarm-type labels for the 4-class variant ([`generate_by_type`]):
/// hypotension drift.
pub const ALARM_HYPOTENSION: usize = 1;
/// Damped trace (collapsed pulse pressure).
pub const ALARM_DAMPED: usize = 2;
/// Artifact burst.
pub const ALARM_ARTIFACT: usize = 3;

/// Renders one beat into `out[start..start+period]`, returning the next
/// start index. `sys`/`dia` are the systolic/diastolic pressures.
fn render_beat(out: &mut [f64], start: usize, period: usize, sys: f64, dia: f64) -> usize {
    let end = (start + period).min(out.len());
    let pulse = sys - dia;
    let upstroke = (period as f64 * 0.15) as usize;
    let notch_at = (period as f64 * 0.4) as usize;
    for (phase, slot) in out[start..end].iter_mut().enumerate() {
        let v = if phase < upstroke {
            // Rapid systolic rise.
            let t = phase as f64 / upstroke as f64;
            dia + pulse * (0.5 - 0.5 * (std::f64::consts::PI * t).cos()) * 1.0
        } else {
            // Decay with a dicrotic notch bump.
            let t = (phase - upstroke) as f64 / (period - upstroke) as f64;
            let decay = dia + pulse * (1.0 - t).powf(1.5);
            let notch = if phase.abs_diff(notch_at) < period / 12 {
                let d = (phase as f64 - notch_at as f64) / (period as f64 / 24.0);
                pulse * 0.12 * (-0.5 * d * d).exp()
            } else {
                0.0
            };
            decay + notch
        };
        *slot = v;
    }
    end
}

/// Generates one ABP window of the given class (0 = normal, 1 = alarm
/// with a uniformly random alarm phenomenon).
pub fn abp_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "ABP has classes 0..2 (normal / alarm)");
    let mode = rng.gen_range(0..3usize);
    abp_instance_with_mode(class, mode, length, rng)
}

/// Generates one ABP window with an explicit alarm phenomenon
/// (`mode` 0 = hypotension, 1 = damped, 2 = artifact; ignored for the
/// normal class). Backs the 4-class alarm-type case study.
pub fn abp_instance_with_mode(
    class: usize,
    mode: usize,
    length: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    assert!(class < 2, "ABP has classes 0..2 (normal / alarm)");
    assert!(mode < 3, "alarm modes are 0..3");
    let mut s = vec![80.0; length];
    let period = length / 8; // ~8 beats per window
    let alarm_mode = mode;
    let mut start = 0usize;
    let mut beat_idx = 0usize;
    while start < length {
        let jitter = 1.0 + 0.05 * randn(rng);
        let (mut sys, mut dia) = (120.0 * jitter, 80.0 / jitter.max(0.5));
        if class == ALARM {
            match alarm_mode {
                0 => {
                    // Hypotension: pressures slide down across the window.
                    let slide = 1.0 - 0.06 * beat_idx as f64;
                    sys *= slide;
                    dia *= slide;
                }
                1 => {
                    // Damped trace: pulse pressure collapses.
                    let mid = (sys + dia) / 2.0;
                    sys = mid + 6.0;
                    dia = mid - 6.0;
                }
                _ => {} // artifact injected after rendering
            }
        }
        let p = (period as f64 * rand_f64(rng, 0.9, 1.1)) as usize;
        start = render_beat(&mut s, start, p.max(4), sys, dia);
        beat_idx += 1;
    }
    if class == ALARM && alarm_mode == 2 {
        // Artifact burst: a short segment of violent noise.
        let at = rng.gen_range(length / 4..length / 2);
        let dur = length / 6;
        for v in s.iter_mut().skip(at).take(dur) {
            *v += 40.0 * randn(rng);
        }
    }
    add_noise(&mut s, 1.0, rng);
    s
}

/// Balanced normal/alarm ABP dataset.
pub fn generate(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("MedicalAlarm", Vec::new(), Vec::new());
    for class in [NORMAL, ALARM] {
        for _ in 0..n_per_class {
            d.push(abp_instance(class, length, &mut rng), class);
        }
    }
    d
}

/// The 4-class alarm-*type* variant: normal / hypotension / damped /
/// artifact. Distinguishing which phenomenon fired (not merely that one
/// did) is the harder task the §6.2 discussion motivates — the three
/// alarm phenomena share "abnormal" statistics but differ in their local
/// morphology, which is exactly the signal representative patterns carry.
pub fn generate_by_type(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("MedicalAlarmType", Vec::new(), Vec::new());
    for _ in 0..n_per_class {
        d.push(abp_instance_with_mode(NORMAL, 0, length, &mut rng), NORMAL);
    }
    for (label, mode) in [
        (ALARM_HYPOTENSION, 0usize),
        (ALARM_DAMPED, 1),
        (ALARM_ARTIFACT, 2),
    ] {
        for _ in 0..n_per_class {
            d.push(abp_instance_with_mode(1, mode, length, &mut rng), label);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_beats_span_physiological_range() {
        let mut rng = StdRng::seed_from_u64(61);
        let s = abp_instance(NORMAL, 400, &mut rng);
        let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((100.0..150.0).contains(&max), "systolic {max}");
        assert!((60.0..95.0).contains(&min), "diastolic {min}");
    }

    #[test]
    fn normal_is_periodic() {
        let mut rng = StdRng::seed_from_u64(62);
        let s = abp_instance(NORMAL, 400, &mut rng);
        // ~8 beats -> at least 6 prominent systolic peaks above 105 mmHg
        // separated by >20 samples.
        let mut peaks = 0;
        let mut last = 0usize;
        for i in 1..s.len() - 1 {
            if s[i] > 105.0 && s[i] >= s[i - 1] && s[i] >= s[i + 1] && i - last > 20 {
                peaks += 1;
                last = i;
            }
        }
        assert!(peaks >= 6, "found {peaks} beats");
    }

    #[test]
    fn alarm_class_deviates_from_normal_statistics() {
        let mut rng = StdRng::seed_from_u64(63);
        let n = 40;
        // Either the mean drops (hypotension), the range collapses
        // (damping) or the local variance explodes (artifact); a combined
        // anomaly score separates the classes in expectation.
        let score = |s: &[f64]| {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = s.iter().copied().fold(f64::INFINITY, f64::min);
            let mean_dev = (mean - 95.0).abs();
            let range_dev = ((max - min) - 45.0).abs();
            mean_dev + range_dev
        };
        let mut normal = 0.0;
        let mut alarm = 0.0;
        for _ in 0..n {
            normal += score(&abp_instance(NORMAL, 400, &mut rng)) / n as f64;
            alarm += score(&abp_instance(ALARM, 400, &mut rng)) / n as f64;
        }
        assert!(alarm > normal + 5.0, "alarm {alarm} vs normal {normal}");
    }

    #[test]
    fn dataset_shape_and_determinism() {
        let d = generate(15, 400, 8);
        assert_eq!(d.len(), 30);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d, generate(15, 400, 8));
    }

    #[test]
    fn typed_dataset_has_four_balanced_classes() {
        let d = generate_by_type(10, 400, 9);
        assert_eq!(d.len(), 40);
        assert_eq!(d.n_classes(), 4);
        for c in 0..4 {
            assert_eq!(d.class_size(c), 10);
        }
        assert_eq!(d, generate_by_type(10, 400, 9));
    }

    #[test]
    fn damped_windows_have_collapsed_range() {
        let mut rng = StdRng::seed_from_u64(64);
        let n = 30;
        let range = |s: &[f64]| {
            s.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - s.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let mut normal = 0.0;
        let mut damped = 0.0;
        for _ in 0..n {
            normal += range(&abp_instance_with_mode(NORMAL, 0, 400, &mut rng)) / n as f64;
            damped += range(&abp_instance_with_mode(1, 1, 400, &mut rng)) / n as f64;
        }
        assert!(damped < normal * 0.7, "damped {damped} vs normal {normal}");
    }

    #[test]
    fn artifact_windows_have_local_variance_bursts() {
        let mut rng = StdRng::seed_from_u64(65);
        // Maximum short-window standard deviation: artifacts explode it.
        let burst = |s: &[f64]| {
            s.windows(20)
                .map(rpm_ts::std_dev)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let n = 20;
        let mut normal = 0.0;
        let mut artifact = 0.0;
        for _ in 0..n {
            normal += burst(&abp_instance_with_mode(NORMAL, 0, 400, &mut rng)) / n as f64;
            artifact += burst(&abp_instance_with_mode(1, 2, 400, &mut rng)) / n as f64;
        }
        assert!(
            artifact > normal * 1.5,
            "artifact {artifact} vs normal {normal}"
        );
    }
}
