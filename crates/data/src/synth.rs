//! Shared generator primitives.

use rand::Rng;

/// Standard normal draw via Box–Muller (avoids a `rand_distr` dependency).
pub fn randn(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Adds i.i.d. Gaussian noise of standard deviation `sd` in place.
pub fn add_noise(series: &mut [f64], sd: f64, rng: &mut impl Rng) {
    for v in series.iter_mut() {
        *v += sd * randn(rng);
    }
}

/// Unnormalized Gaussian bump `amp * exp(-(t-center)^2 / (2 width^2))`
/// added onto `series` (indices are positions).
pub fn add_gaussian_peak(series: &mut [f64], center: f64, width: f64, amp: f64) {
    for (i, v) in series.iter_mut().enumerate() {
        let d = (i as f64 - center) / width;
        *v += amp * (-0.5 * d * d).exp();
    }
}

/// Uniform integer in `lo..=hi`.
pub fn rand_int(rng: &mut impl Rng, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..=hi)
}

/// Uniform float in `lo..hi`.
pub fn rand_f64(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn add_noise_changes_values_by_sd_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = vec![0.0; 10_000];
        add_noise(&mut s, 0.5, &mut rng);
        let var = s.iter().map(|x| x * x).sum::<f64>() / s.len() as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn gaussian_peak_maximum_at_center() {
        let mut s = vec![0.0; 50];
        add_gaussian_peak(&mut s, 20.0, 3.0, 2.0);
        let (argmax, max) = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .unwrap();
        assert_eq!(argmax, 20);
        assert!((max - 2.0).abs() < 1e-9);
        assert!(s[0].abs() < 1e-6, "tails should decay");
    }

    #[test]
    fn peaks_superimpose() {
        let mut s = vec![0.0; 30];
        add_gaussian_peak(&mut s, 10.0, 2.0, 1.0);
        add_gaussian_peak(&mut s, 10.0, 2.0, 1.0);
        assert!((s[10] - 2.0).abs() < 1e-9);
    }
}
