//! GunPoint-like motion-capture profiles.
//!
//! The UCR GunPoint data tracks a hand's centroid while an actor either
//! draws a gun from a holster (class *Gun*) or merely points (class
//! *Point*). Both classes share the raise–hold–lower arc; the Gun class
//! adds a characteristic dip before the raise and an overshoot after
//! lowering (reaching into / returning to the holster) — local features,
//! which is why subsequence methods do well on it (Fig. 10).

use crate::synth::{add_gaussian_peak, add_noise, rand_f64};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// Smoothstep between 0 and 1 over `[a, b]`.
fn smoothstep(x: f64, a: f64, b: f64) -> f64 {
    let t = ((x - a) / (b - a)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Generates one GunPoint-like instance (class 0 = Gun, 1 = Point).
pub fn gunpoint_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "GunPoint family has classes 0..2");
    let l = length as f64;
    let raise_at = rand_f64(rng, 0.18, 0.24);
    let lower_at = rand_f64(rng, 0.68, 0.76);
    let plateau = rand_f64(rng, 0.95, 1.05);
    let mut s: Vec<f64> = (0..length)
        .map(|i| {
            let x = i as f64 / l;
            plateau
                * (smoothstep(x, raise_at, raise_at + 0.1)
                    - smoothstep(x, lower_at, lower_at + 0.1))
        })
        .collect();
    if class == 0 {
        // Holster dip before the raise and overshoot after lowering.
        add_gaussian_peak(&mut s, (raise_at - 0.06) * l, 0.018 * l, -0.35);
        add_gaussian_peak(&mut s, (lower_at + 0.14) * l, 0.02 * l, 0.3);
    }
    add_noise(&mut s, 0.02, rng);
    s
}

/// Balanced GunPoint-like dataset.
pub fn generate(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("GunPoint", Vec::new(), Vec::new());
    for class in 0..2 {
        for _ in 0..n_per_class {
            d.push(gunpoint_instance(class, length, &mut rng), class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_classes_share_the_plateau() {
        let mut rng = StdRng::seed_from_u64(21);
        for class in 0..2 {
            let s = gunpoint_instance(class, 150, &mut rng);
            let mid = s[60..90].iter().sum::<f64>() / 30.0;
            assert!((mid - 1.0).abs() < 0.2, "class {class} plateau {mid}");
            let start = s[..10].iter().sum::<f64>() / 10.0;
            assert!(start.abs() < 0.3, "class {class} baseline {start}");
        }
    }

    #[test]
    fn gun_class_has_the_holster_dip() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 60;
        let mut min0 = 0.0;
        let mut min1 = 0.0;
        for _ in 0..n {
            let g = gunpoint_instance(0, 150, &mut rng);
            let p = gunpoint_instance(1, 150, &mut rng);
            min0 += g[..35].iter().copied().fold(f64::INFINITY, f64::min) / n as f64;
            min1 += p[..35].iter().copied().fold(f64::INFINITY, f64::min) / n as f64;
        }
        assert!(min0 < min1 - 0.1, "gun dips: {min0} vs {min1}");
    }

    #[test]
    fn dataset_shape_and_determinism() {
        let d = generate(25, 150, 4);
        assert_eq!(d.len(), 50);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d, generate(25, 150, 4));
    }
}
