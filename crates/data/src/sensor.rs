//! Sensor-trace families: MoteStrain-like, Lightning2-like and
//! SonyAIBORobotSurface-like.

use crate::synth::{add_gaussian_peak, add_noise, rand_f64, rand_int, randn};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// MoteStrain-like: wireless sensor mote readings. Class 0 ("humidity")
/// drifts slowly with a shallow daily bow; class 1 ("temperature") carries
/// a sharper mid-trace ramp with overshoot. Short, very noisy series —
/// the archive's MoteStrain is one of the noisiest UCR datasets.
pub fn mote_strain_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "mote-strain family has classes 0..2");
    let l = length as f64;
    let mut s: Vec<f64> = (0..length)
        .map(|i| {
            let x = i as f64 / l;
            if class == 0 {
                // Shallow bow (sensor warming).
                -1.2 * (x - 0.5) * (x - 0.5) * 4.0
            } else {
                // Ramp with saturation.
                (6.0 * (x - 0.45)).tanh()
            }
        })
        .collect();
    if class == 1 {
        // Overshoot blip at the ramp knee.
        add_gaussian_peak(&mut s, 0.45 * l + rand_f64(rng, -3.0, 3.0), 0.02 * l, 0.8);
    }
    add_noise(&mut s, 0.35, rng);
    s
}

/// MoteStrain-like dataset.
pub fn mote_strain(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    balanced(
        "MoteStrain",
        2,
        n_per_class,
        length,
        seed,
        mote_strain_instance,
    )
}

/// Lightning2-like: RF power profiles of lightning events. Class 0
/// ("cloud-to-ground") has one dominant impulsive burst with a long decay
/// tail; class 1 ("intra-cloud") shows a train of smaller bursts.
pub fn lightning2_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "lightning family has classes 0..2");
    let l = length as f64;
    let mut s = vec![0.0; length];
    if class == 0 {
        let at = rand_f64(rng, 0.2, 0.4) * l;
        // Impulsive rise, exponential tail.
        for (i, v) in s.iter_mut().enumerate() {
            let d = i as f64 - at;
            if d >= 0.0 {
                *v += 5.0 * (-d / (0.1 * l)).exp();
            }
        }
    } else {
        let bursts = rand_int(rng, 4, 7);
        for _ in 0..bursts {
            let at = rand_f64(rng, 0.15, 0.85) * l;
            let amp = rand_f64(rng, 1.0, 2.5);
            add_gaussian_peak(&mut s, at, 0.01 * l + 1.0, amp);
        }
    }
    add_noise(&mut s, 0.25, rng);
    s
}

/// Lightning2-like dataset.
pub fn lightning2(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    balanced(
        "Lightning2",
        2,
        n_per_class,
        length,
        seed,
        lightning2_instance,
    )
}

/// SonyAIBORobotSurface-like: accelerometer traces of a walking robot.
/// Both classes are gait oscillations; walking on carpet (class 0) damps
/// the amplitude and slows the cadence relative to cement (class 1).
pub fn sony_aibo_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "sony-aibo family has classes 0..2");
    let (amp, cadence) = if class == 0 {
        (0.7, rand_f64(rng, 5.5, 6.5))
    } else {
        (1.3, rand_f64(rng, 8.0, 9.5))
    };
    let phase = rand_f64(rng, 0.0, std::f64::consts::TAU);
    let mut s: Vec<f64> = (0..length)
        .map(|i| {
            let t = i as f64 / length as f64;
            let gait = (std::f64::consts::TAU * cadence * t + phase).sin();
            // Foot-strike harmonics make cement walking spikier.
            let strike = if class == 1 {
                0.4 * (2.0 * std::f64::consts::TAU * cadence * t + phase)
                    .sin()
                    .powi(3)
            } else {
                0.0
            };
            amp * gait + strike
        })
        .collect();
    // Occasional stumble.
    if rng.gen::<f64>() < 0.2 {
        let at = rand_int(rng, length / 4, 3 * length / 4);
        add_gaussian_peak(&mut s, at as f64, 2.0, 1.5 * randn(rng));
    }
    add_noise(&mut s, 0.15, rng);
    s
}

/// SonyAIBORobotSurface-like dataset.
pub fn sony_aibo(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    balanced(
        "SonyAIBORobotSurface",
        2,
        n_per_class,
        length,
        seed,
        sony_aibo_instance,
    )
}

fn balanced(
    name: &str,
    classes: usize,
    n_per_class: usize,
    length: usize,
    seed: u64,
    gen_fn: fn(usize, usize, &mut StdRng) -> Vec<f64>,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(name, Vec::new(), Vec::new());
    for class in 0..classes {
        for _ in 0..n_per_class {
            d.push(gen_fn(class, length, &mut rng), class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mote_classes_differ_in_tail_level() {
        let mut rng = StdRng::seed_from_u64(71);
        let n = 60;
        let tail = |s: &[f64]| s[70..84].iter().sum::<f64>() / 14.0;
        let mut hum = 0.0;
        let mut temp = 0.0;
        for _ in 0..n {
            hum += tail(&mote_strain_instance(0, 84, &mut rng)) / n as f64;
            temp += tail(&mote_strain_instance(1, 84, &mut rng)) / n as f64;
        }
        assert!(temp > hum + 0.5, "temp tail {temp} vs humidity {hum}");
    }

    #[test]
    fn lightning_cg_has_single_dominant_burst() {
        let mut rng = StdRng::seed_from_u64(72);
        // Count samples above half the max: the CG tail keeps energy high
        // for a while after one burst; IC spreads energy across bursts.
        let s = lightning2_instance(0, 256, &mut rng);
        let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 3.0, "impulse present: {max}");
    }

    #[test]
    fn sony_cement_has_higher_energy() {
        let mut rng = StdRng::seed_from_u64(73);
        let n = 40;
        let energy = |s: &[f64]| s.iter().map(|v| v * v).sum::<f64>() / s.len() as f64;
        let mut carpet = 0.0;
        let mut cement = 0.0;
        for _ in 0..n {
            carpet += energy(&sony_aibo_instance(0, 70, &mut rng)) / n as f64;
            cement += energy(&sony_aibo_instance(1, 70, &mut rng)) / n as f64;
        }
        assert!(cement > carpet * 1.5, "cement {cement} vs carpet {carpet}");
    }

    #[test]
    fn datasets_have_declared_shape_and_are_deterministic() {
        for (d, classes) in [
            (mote_strain(10, 84, 1), 2usize),
            (lightning2(10, 256, 1), 2),
            (sony_aibo(10, 70, 1), 2),
        ] {
            assert_eq!(d.n_classes(), classes);
            assert_eq!(d.len(), 10 * classes);
        }
        assert_eq!(mote_strain(5, 84, 9), mote_strain(5, 84, 9));
        assert_eq!(lightning2(5, 128, 9), lightning2(5, 128, 9));
        assert_eq!(sony_aibo(5, 70, 9), sony_aibo(5, 70, 9));
    }
}
